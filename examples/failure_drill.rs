//! Failure drill: crash a participant mid-protocol on the deterministic
//! simulator and watch each protocol recover — the §3.2/§3.3 failure
//! machinery in action, with full message transcripts. Part two hands the
//! wheel to the nemesis: a seeded composed fault schedule (crashes with
//! torn WAL tails, directed partitions, loss bursts) against a batch of
//! transfers.
//!
//! ```text
//! cargo run --example failure_drill
//! ```

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::{generate_faults, FailurePlan, NemesisConfig};
use amc::types::{GlobalTxnId, ObjectId, Operation, SimDuration, SimTime, SiteId, Value};
use std::collections::BTreeMap;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn main() {
    println!("failure drill: site 2 crashes 1.2 ms into the protocol, restarts 40 ms later");
    println!("{:=<76}", "");

    for protocol in ProtocolKind::ALL {
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        cfg.failures = FailurePlan::none().outage(
            SiteId::new(2),
            SimTime(1_200),
            SimDuration::from_millis(40),
        );
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
        }
        let managers = fed.managers();

        let program = BTreeMap::from([
            (
                SiteId::new(1),
                vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: -30,
                }],
            ),
            (
                SiteId::new(2),
                vec![Operation::Increment {
                    obj: obj(2, 0),
                    delta: 30,
                }],
            ),
        ]);
        let report = fed.run(vec![(SimDuration::ZERO, program)]);

        let gtx = GlobalTxnId::new(1);
        println!();
        println!("--- {} ---", protocol.label());
        println!(
            "verdict: {:?}   resolved after {:.1} ms (virtual)   {} retransmissions",
            report.outcomes.get(&gtx),
            report
                .resolution
                .get(&gtx)
                .map_or(f64::NAN, |d| d.micros() as f64 / 1e3),
            report.retransmissions,
        );
        let dumps = SimFederation::dumps(&managers);
        let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
        let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
        println!(
            "final balances: site1={v1} site2={v2} (atomic: {})",
            (v1, v2) == (70, 130) || (v1, v2) == (100, 100)
        );
        println!("transcript:");
        for line in report.trace.render().lines() {
            println!("  {line}");
        }
        assert!(
            (v1, v2) == (70, 130) || (v1, v2) == (100, 100),
            "{protocol}: atomicity violated"
        );
    }

    println!();
    println!("{:=<76}", "");
    println!("all three protocols resolved the crash atomically; note how");
    println!("commit-before either finished before the crash or aborted and");
    println!("undid the surviving site with an inverse transaction (§3.3).");

    nemesis_drill(7);
}

/// Part two: let the nemesis compose the faults. Same seed, same schedule,
/// same run — change the seed to explore other weather.
fn nemesis_drill(seed: u64) {
    println!();
    println!("nemesis drill: seeded composed fault schedule (seed {seed})");
    println!("{:=<76}", "");

    // Compress the fault window onto the workload (5 transfers over
    // ~100 ms) so the schedule lands mid-protocol instead of after it.
    let cfg = NemesisConfig {
        fault_horizon: SimTime(200_000),
        min_hold: SimDuration::from_millis(5),
        max_hold: SimDuration::from_millis(30),
        ..NemesisConfig::default()
    };
    let plan = generate_faults(&cfg, seed);
    println!("schedule ({} events):", plan.len());
    for ev in plan.events() {
        println!("  t={:>9} {} {:?}", ev.at.0, ev.site, ev.kind);
    }

    for protocol in ProtocolKind::ALL {
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        cfg.seed = seed;
        cfg.faults = plan.clone();
        cfg.retransmit_every = SimDuration::from_millis(5);
        cfg.horizon = SimDuration::from_millis(30_000);
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> =
                (0..10).map(|i| (obj(s, i), Value::counter(100))).collect();
            fed.load_site(SiteId::new(s), &data);
        }
        let managers = fed.managers();
        let programs = (0..10u64)
            .map(|i| {
                (
                    SimDuration::from_millis(i * 20),
                    BTreeMap::from([
                        (
                            SiteId::new(1),
                            vec![Operation::Increment {
                                obj: obj(1, i),
                                delta: -10,
                            }],
                        ),
                        (
                            SiteId::new(2),
                            vec![Operation::Increment {
                                obj: obj(2, i),
                                delta: 10,
                            }],
                        ),
                    ]),
                )
            })
            .collect();
        let report = fed.run(programs);
        let dumps = SimFederation::dumps(&managers);
        let total: i64 = (1..=2u32)
            .flat_map(|s| (0..10).map(move |i| (s, i)))
            .map(|(s, i)| dumps[&SiteId::new(s)][&obj(s, i)].counter)
            .sum();
        let committed = report
            .outcomes
            .values()
            .filter(|v| **v == amc::types::GlobalVerdict::Commit)
            .count();
        println!();
        println!("--- {} ---", protocol.label());
        println!(
            "outcomes: {committed} committed, {} aborted, {} unresolved",
            report.outcomes.len() - committed,
            report.unresolved.len(),
        );
        let net = report.net;
        println!(
            "network: {} sent, {} dropped ({} by partitions), {} duplicated, {} retransmissions",
            net.sent, net.dropped, net.partitioned_drops, net.duplicated, report.retransmissions,
        );
        println!(
            "conservation: total balance {total} (expected 2000) — {}",
            if total == 2000 { "ok" } else { "VIOLATED" }
        );
        assert_eq!(total, 2000, "{protocol}: conservation violated");
        assert!(report.unresolved.is_empty(), "{protocol}: unresolved");
    }

    println!();
    println!("{:=<76}", "");
    println!("whatever the schedule threw at the protocols, atomicity and");
    println!("conservation held. rerun with another seed by editing");
    println!("nemesis_drill(7) — every schedule is reproducible from its seed.");
}
