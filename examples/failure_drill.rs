//! Failure drill: crash a participant mid-protocol on the deterministic
//! simulator and watch each protocol recover — the §3.2/§3.3 failure
//! machinery in action, with full message transcripts.
//!
//! ```text
//! cargo run --example failure_drill
//! ```

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::FailurePlan;
use amc::types::{GlobalTxnId, ObjectId, Operation, SimDuration, SimTime, SiteId, Value};
use std::collections::BTreeMap;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn main() {
    println!("failure drill: site 2 crashes 1.2 ms into the protocol, restarts 40 ms later");
    println!("{:=<76}", "");

    for protocol in ProtocolKind::ALL {
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        cfg.failures = FailurePlan::none().outage(
            SiteId::new(2),
            SimTime(1_200),
            SimDuration::from_millis(40),
        );
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
        }
        let managers = fed.managers();

        let program = BTreeMap::from([
            (
                SiteId::new(1),
                vec![Operation::Increment { obj: obj(1, 0), delta: -30 }],
            ),
            (
                SiteId::new(2),
                vec![Operation::Increment { obj: obj(2, 0), delta: 30 }],
            ),
        ]);
        let report = fed.run(vec![(SimDuration::ZERO, program)]);

        let gtx = GlobalTxnId::new(1);
        println!();
        println!("--- {} ---", protocol.label());
        println!(
            "verdict: {:?}   resolved after {:.1} ms (virtual)   {} retransmissions",
            report.outcomes.get(&gtx),
            report
                .resolution
                .get(&gtx)
                .map_or(f64::NAN, |d| d.micros() as f64 / 1e3),
            report.retransmissions,
        );
        let dumps = SimFederation::dumps(&managers);
        let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
        let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
        println!("final balances: site1={v1} site2={v2} (atomic: {})",
            (v1, v2) == (70, 130) || (v1, v2) == (100, 100));
        println!("transcript:");
        for line in report.trace.render().lines() {
            println!("  {line}");
        }
        assert!(
            (v1, v2) == (70, 130) || (v1, v2) == (100, 100),
            "{protocol}: atomicity violated"
        );
    }

    println!();
    println!("{:=<76}", "");
    println!("all three protocols resolved the crash atomically; note how");
    println!("commit-before either finished before the crash or aborted and");
    println!("undid the surviving site with an inverse transaction (§3.3).");
}
