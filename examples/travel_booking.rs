//! Travel booking: a trip spans an airline, a hotel chain and a car-rental
//! company — three different database systems. Bookings use **escrow
//! reserves** (the VODAK-style semantic operation): concurrent bookings on
//! the same flight interleave at L1, overselling is impossible, and a trip
//! that fails at one company is undone at the others by restocking inverse
//! transactions (§3.3).
//!
//! ```text
//! cargo run --example travel_booking
//! ```

use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;

const AIRLINE: SiteId = SiteId::new(1);
const HOTEL: SiteId = SiteId::new(2);
const CARS: SiteId = SiteId::new(3);

fn inventory(site: SiteId, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site.raw()) * (1 << 32) + idx)
}

/// A trip books one unit at each company; `hotel_exists` models a booking
/// for a hotel that is not in the hotel chain's database — the business
/// rule failure that must abort the whole trip.
fn trip(flight: u64, hotel: u64, car: u64, hotel_exists: bool) -> BTreeMap<SiteId, Vec<Operation>> {
    let hotel_obj = if hotel_exists {
        inventory(HOTEL, hotel)
    } else {
        inventory(HOTEL, 999_999) // not in the catalogue
    };
    BTreeMap::from([
        (
            AIRLINE,
            vec![Operation::Reserve {
                obj: inventory(AIRLINE, flight),
                amount: 1,
            }],
        ),
        (
            HOTEL,
            vec![Operation::Reserve {
                obj: hotel_obj,
                amount: 1,
            }],
        ),
        (
            CARS,
            vec![Operation::Reserve {
                obj: inventory(CARS, car),
                amount: 1,
            }],
        ),
    ])
}

fn main() {
    let federation = Federation::new(FederationConfig::uniform(3, ProtocolKind::CommitBefore));
    for site in [AIRLINE, HOTEL, CARS] {
        let stock: Vec<(ObjectId, Value)> = (0..10)
            .map(|i| (inventory(site, i), Value::counter(50)))
            .collect();
        federation.load_site(site, &stock).expect("load");
    }

    println!("travel agency over airline/hotel/car databases (commit-before + MLT)");
    println!("{:-<68}", "");

    let mut booked = 0;
    let mut rejected = 0;
    for customer in 0..20u64 {
        // Every 4th customer asks for a hotel that does not exist.
        let hotel_exists = customer % 4 != 3;
        let program = trip(customer % 10, customer % 10, customer % 10, hotel_exists);
        let report = federation.run_transaction(&program).expect("run");
        match report.outcome {
            TxnOutcome::Committed => booked += 1,
            TxnOutcome::Aborted => rejected += 1,
            TxnOutcome::L1Rejected(_) => unreachable!("no contention here"),
        }
        println!(
            "customer {customer:>2}: {:<9} ({} messages)",
            match report.outcome {
                TxnOutcome::Committed => "booked",
                _ => "rejected",
            },
            report.messages,
        );
    }

    println!("{:-<68}", "");
    println!("booked {booked}, rejected {rejected}");

    // The invariant the §3.3 undo machinery guarantees: every rejected trip
    // left airline and car inventory exactly as it found it — the committed
    // airline/car legs were undone by inverse transactions.
    let dumps = federation.dumps().expect("dumps");
    let remaining: i64 = (0..10)
        .map(|i| dumps[&AIRLINE][&inventory(AIRLINE, i)].counter)
        .sum();
    assert_eq!(remaining, 500 - booked, "airline seats match bookings");
    let cars: i64 = (0..10)
        .map(|i| dumps[&CARS][&inventory(CARS, i)].counter)
        .sum();
    assert_eq!(cars, 500 - booked, "cars match bookings");
    println!("inventory audit passed: rejected trips left no trace");
}
