//! Quickstart: build a three-site federation, run one global transaction
//! under the paper's commit-before protocol, and inspect the message flow.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;

fn main() {
    // Three "existing" database systems behind sealed begin/commit/abort
    // interfaces, coordinated by a central system (Fig. 1 of the paper).
    let federation = Federation::new(FederationConfig::uniform(3, ProtocolKind::CommitBefore));

    // Each site owns a slice of the object space. Load an account per site.
    let account = |site: u32| ObjectId::new(u64::from(site) * (1 << 32));
    for s in 1..=3u32 {
        federation
            .load_site(SiteId::new(s), &[(account(s), Value::counter(1_000))])
            .expect("load");
    }

    // A global transaction: move 250 from site 1's account to site 3's,
    // and audit site 2's balance along the way.
    let program: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Increment {
                obj: account(1),
                delta: -250,
            }],
        ),
        (SiteId::new(2), vec![Operation::Read { obj: account(2) }]),
        (
            SiteId::new(3),
            vec![Operation::Increment {
                obj: account(3),
                delta: 250,
            }],
        ),
    ]);

    let report = federation.run_transaction(&program).expect("protocol run");
    assert_eq!(report.outcome, TxnOutcome::Committed);

    println!("outcome      : {:?}", report.outcome);
    println!("messages     : {}", report.messages);
    println!("latency      : {:?}", report.latency);
    println!();
    println!("message flow (note: no decision round on the commit path —");
    println!("locals committed before the global decision, §3.3):");
    print!("{}", federation.trace().render());
    println!();

    let dumps = federation.dumps().expect("dump");
    for s in 1..=3u32 {
        let balance = dumps[&SiteId::new(s)][&account(s)];
        println!("site {s} account balance: {balance}");
    }
    assert_eq!(dumps[&SiteId::new(1)][&account(1)], Value::counter(750));
    assert_eq!(dumps[&SiteId::new(3)][&account(3)], Value::counter(1_250));
}
