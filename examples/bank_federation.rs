//! Bank federation: the paper's sweet spot — commuting transfers across
//! heterogeneous institutions, run concurrently under all three protocols
//! to show the concurrency gap and verify money conservation.
//!
//! One of the banks runs an *optimistic* engine, so classical 2PC cannot be
//! deployed at all (§3.1): the example runs 2PC on a homogeneous federation
//! for comparison and the portable protocols on the heterogeneous one.
//!
//! ```text
//! cargo run --release --example bank_federation
//! ```

use amc::core::{Federation, FederationConfig, ProtocolKind};
use amc::sim::SimRng;
use amc::types::{Operation, SiteId};
use amc::workload::{object, Scenario};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Balanced transfers: -amount at one bank, +amount at another, so the
/// federation-wide total is invariant. A small fraction of transfers name a
/// non-existent beneficiary account — the intended-abort path.
fn transfer_programs(
    sites: u32,
    accounts: u64,
    n: usize,
    seed: u64,
) -> Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| {
            let from = SiteId::new(1 + rng.below(u64::from(sites)) as u32);
            let to = loop {
                let t = SiteId::new(1 + rng.below(u64::from(sites)) as u32);
                if t != from {
                    break t;
                }
            };
            let amount = 1 + rng.below(50) as i64;
            let bad_beneficiary = rng.chance(0.02);
            let to_account = if bad_beneficiary {
                object(to, accounts + 1_000) // not a real account
            } else {
                object(to, rng.zipf(accounts, 0.6))
            };
            let program = BTreeMap::from([
                (
                    from,
                    vec![Operation::Increment {
                        obj: object(from, rng.zipf(accounts, 0.6)),
                        delta: -amount,
                    }],
                ),
                (
                    to,
                    vec![Operation::Increment {
                        obj: to_account,
                        delta: amount,
                    }],
                ),
            ]);
            (program, bad_beneficiary)
        })
        .collect()
}

fn total_balance(fed: &Federation) -> i64 {
    fed.dumps()
        .expect("dumps")
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !amc::net::marker::is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

fn main() {
    let scenario = Scenario::Bank;
    let spec = scenario.spec();
    let transfers = 300;
    let threads = 6;

    println!(
        "bank federation: {} sites, {} transfers, {} worker threads",
        spec.sites, transfers, threads
    );
    println!("{:-<72}", "");

    for protocol in ProtocolKind::ALL {
        // 2PC demands modified (preparable) engines everywhere; the
        // portable protocols run on the heterogeneous mix with an OCC bank.
        let mut cfg = if protocol == ProtocolKind::TwoPhaseCommit {
            FederationConfig::uniform(spec.sites, protocol)
        } else {
            FederationConfig::heterogeneous(spec.sites, protocol)
        };
        cfg.message_delay = Duration::from_micros(300); // 1991-scale RTT
        let fed = Federation::new(cfg);
        for s in 1..=spec.sites {
            let site = SiteId::new(s);
            fed.load_site(site, &spec.initial_data(site)).expect("load");
        }
        let fed = Arc::new(fed);

        let initial_total = total_balance(&fed);
        let programs = transfer_programs(spec.sites, spec.objects_per_site, transfers, 2024);
        let metrics = fed.run_concurrent(programs, threads);
        let engines: String = (1..=spec.sites)
            .map(|s| {
                fed.manager(SiteId::new(s))
                    .unwrap()
                    .handle()
                    .engine()
                    .kind()
            })
            .collect::<Vec<_>>()
            .join("/");

        println!(
            "{:<14} engines {:<12} {:>7.0} txn/s  {:>4} commits  {:>3} intended aborts  L0 hold {:>6.2} ms",
            protocol.label(),
            engines,
            metrics.throughput().unwrap_or(0.0),
            metrics.committed,
            metrics.aborted_intended,
            metrics.mean_l0_hold_ms().unwrap_or(0.0),
        );

        // Transfers are pure increments: the total must be conserved even
        // across aborted-and-undone transactions.
        assert_eq!(
            total_balance(&fed),
            initial_total,
            "{protocol}: money leaked"
        );
    }

    println!("{:-<72}", "");
    println!("money conserved under every protocol; commit-before shows the");
    println!("shortest L0 lock tenure and the highest throughput (§4.3).");
}
