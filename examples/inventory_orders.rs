//! Inventory / order processing across four warehouse databases, using the
//! escrow-heavy workload: orders *reserve* stock (self-commuting at L1,
//! bound-checked at L0), restocks *increment* it, and a fraction of orders
//! fail their own checks and are rolled back federation-wide.
//!
//! Prints a per-protocol comparison plus the audit that makes escrow worth
//! having: stock can never go negative, no matter how hot the contention.
//!
//! ```text
//! cargo run --release --example inventory_orders
//! ```

use amc::core::{Federation, FederationConfig, ProtocolKind};
use amc::mlt::ConflictPolicy;
use amc::net::marker::is_marker;
use amc::types::{Operation, SiteId};
use amc::workload::{object, Scenario, WorkloadGen};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let spec = Scenario::Inventory.spec();
    let orders = 250;
    let threads = 6;

    println!(
        "inventory federation: {} warehouses, {} orders ({}% reserves, {}% restocks), {} threads",
        spec.sites,
        orders,
        (spec.mix.reserve * 100.0) as u32,
        (spec.mix.increment * 100.0) as u32,
        threads
    );
    println!("{:-<78}", "");

    for protocol in ProtocolKind::ALL {
        let mut cfg = FederationConfig::uniform(spec.sites, protocol);
        cfg.policy = ConflictPolicy::Semantic;
        cfg.message_delay = Duration::from_micros(300);
        cfg.tpl.lock_timeout = Duration::from_millis(100);
        cfg.l1_timeout = Duration::from_millis(500);
        let fed = Federation::new(cfg);
        for s in 1..=spec.sites {
            let site = SiteId::new(s);
            fed.load_site(site, &spec.initial_data(site)).expect("load");
        }
        let fed = Arc::new(fed);

        let mut gen = WorkloadGen::new(spec.clone(), 77);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = gen
            .programs(orders)
            .into_iter()
            .map(|p| (p.per_site, p.intends_abort))
            .collect();
        let metrics = fed.run_concurrent(programs, threads);

        // The audit: no stock counter anywhere may be negative.
        let min_stock = fed
            .dumps()
            .expect("dumps")
            .values()
            .flat_map(|d| d.iter())
            .filter(|(o, _)| !is_marker(**o))
            .map(|(_, v)| v.counter)
            .min()
            .unwrap_or(0);
        assert!(
            min_stock >= 0,
            "{protocol}: oversold! min stock {min_stock}"
        );

        println!(
            "{:<14} {:>7.0} orders/s  {:>4} filled  {:>3} rejected  undo-restocks {:>3}  min stock {:>3}",
            protocol.label(),
            metrics.throughput().unwrap_or(0.0),
            metrics.committed,
            metrics.aborted_intended,
            metrics.undo_runs,
            min_stock,
        );
    }

    println!("{:-<78}", "");
    println!("no warehouse ever oversold; rejected orders were restocked by");
    println!("inverse transactions (commit-before) or never committed at all.");

    // Show one object's lineage for colour.
    let _ = object(SiteId::new(1), 0);
}
