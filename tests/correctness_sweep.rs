//! E6 as an integration test: randomized concurrent workloads audited by
//! the full oracle stack (serializability, atomicity, state equivalence),
//! across all three protocols and both conflict definitions.

use amc::types::ProtocolKind;
use amc_bench::experiments::e6_correctness;

#[test]
fn oracle_audit_passes_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        for seed in [11, 42] {
            let row = e6_correctness::run_one(protocol, seed, 60, 4);
            assert_eq!(
                row.serializability_violations, 0,
                "{protocol} seed {seed}: serializability"
            );
            assert_eq!(
                row.atomicity_violations, 0,
                "{protocol} seed {seed}: atomicity"
            );
            assert_eq!(
                row.state_divergences, 0,
                "{protocol} seed {seed}: state equivalence"
            );
            assert!(row.committed > 0, "{protocol} seed {seed}: no commits?");
        }
    }
}

#[test]
fn protocols_agree_on_commit_abort_split() {
    // The same deterministic workload must reach the same intended-abort
    // decisions under every protocol (erroneous aborts are retried away by
    // the drivers).
    let mut splits = Vec::new();
    for protocol in ProtocolKind::ALL {
        let row = e6_correctness::run_one(protocol, 7, 50, 4);
        splits.push((row.committed, row.aborted));
    }
    assert_eq!(splits[0], splits[1], "2pc vs commit-after");
    assert_eq!(splits[1], splits[2], "commit-after vs commit-before");
}
