//! The [Ske 81] blocking argument, measured: after a participant crash,
//! which protocol leaves resources locked against *other* work?
//!
//! * **2PC**: a participant that prepared before the crash recovers
//!   *in doubt* — its pages stay exclusively locked until the coordinator's
//!   decision arrives. Probe transactions against those pages abort.
//! * **commit-after**: the crashed local transaction evaporates (it was
//!   still *running*); after recovery its pages are free — the global
//!   transaction's fate is repaired by redo, without holding L0 resources.
//! * **commit-before**: the local commit finished before the crash; after
//!   recovery the pages are free and the data is there.

use amc::engine::{LocalEngine, PreparableEngine, TplConfig, TwoPLEngine};
use amc::net::comm::{EngineHandle, LocalCommManager, SubmitMode};
use amc::types::{
    AbortReason, AmcError, GlobalTxnId, GlobalVerdict, ObjectId, Operation, SiteId, Value,
};
use std::sync::Arc;
use std::time::Duration;

const G: GlobalTxnId = GlobalTxnId::new(1);
const X: ObjectId = ObjectId::new(1);

fn setup() -> (LocalCommManager, Arc<TwoPLEngine>) {
    let engine = Arc::new(TwoPLEngine::new(TplConfig {
        lock_timeout: Duration::from_millis(50),
        ..TplConfig::default()
    }));
    engine.load([(X, Value::counter(100))]).unwrap();
    let mgr = LocalCommManager::new(SiteId::new(1), EngineHandle::Preparable(engine.clone()));
    (mgr, engine)
}

/// Probe: can an independent local transaction read `X` right now?
fn probe_blocked(engine: &TwoPLEngine) -> bool {
    let t = engine.begin().unwrap();
    match engine.execute(t, &Operation::Read { obj: X }) {
        Ok(_) => {
            engine.commit(t).unwrap();
            false
        }
        Err(AmcError::Aborted(r)) => {
            assert!(r.is_erroneous(), "probe died for an odd reason: {r}");
            true // rolled back already
        }
        Err(e) => panic!("probe: {e}"),
    }
}

#[test]
fn two_pc_in_doubt_blocks_until_decision() {
    let (mgr, engine) = setup();
    mgr.handle_submit(
        G,
        vec![Operation::Increment { obj: X, delta: 5 }],
        SubmitMode::TwoPhase,
    )
    .unwrap();
    // Prepared, then crash, then recovery: the transaction is in doubt.
    mgr.handle_prepare(G).unwrap();
    engine.crash();
    let report = engine.recover().unwrap();
    assert_eq!(report.in_doubt.len(), 1);

    // The blocking window: independent work on X cannot proceed.
    assert!(probe_blocked(&engine), "in-doubt txn must hold its locks");
    assert!(probe_blocked(&engine), "still blocked on every retry");

    // Only the coordinator's decision ends the window.
    mgr.handle_decision(G, GlobalVerdict::Commit).unwrap();
    assert!(!probe_blocked(&engine), "decision releases the resources");
    assert_eq!(engine.dump().unwrap()[&X], Value::counter(105));
}

#[test]
fn commit_after_crash_leaves_resources_free() {
    let (mgr, engine) = setup();
    mgr.handle_submit(
        G,
        vec![Operation::Increment { obj: X, delta: 5 }],
        SubmitMode::CommitAfter,
    )
    .unwrap();
    // Running (voted ready), then crash: the local transaction is gone.
    engine.crash();
    let report = engine.recover().unwrap();
    assert!(report.in_doubt.is_empty());

    // No blocking window: the pages are free immediately after recovery.
    assert!(!probe_blocked(&engine));
    // The global transaction still commits — via redo, on demand.
    mgr.handle_redo(G, vec![Operation::Increment { obj: X, delta: 5 }])
        .unwrap();
    assert_eq!(engine.dump().unwrap()[&X], Value::counter(105));
}

#[test]
fn commit_before_crash_leaves_resources_free_and_data_committed() {
    let (mgr, engine) = setup();
    mgr.handle_submit(
        G,
        vec![Operation::Increment { obj: X, delta: 5 }],
        SubmitMode::CommitBefore,
    )
    .unwrap();
    engine.crash();
    let report = engine.recover().unwrap();
    assert!(report.in_doubt.is_empty());

    assert!(!probe_blocked(&engine));
    assert_eq!(
        engine.dump().unwrap()[&X],
        Value::counter(105),
        "the local commit survived the crash on its own"
    );
}

#[test]
fn in_doubt_window_also_blocks_same_page_neighbours() {
    // The blocking granule is the page: an in-doubt transaction blocks
    // *other objects* that happen to share its page — collateral damage
    // the commit-before protocol never inflicts.
    let engine = Arc::new(TwoPLEngine::new(TplConfig {
        buckets: 1, // every object on one page chain
        lock_timeout: Duration::from_millis(50),
        ..TplConfig::default()
    }));
    engine
        .load([
            (X, Value::counter(100)),
            (ObjectId::new(2), Value::counter(7)),
        ])
        .unwrap();
    let t = engine.begin().unwrap();
    engine
        .execute(t, &Operation::Increment { obj: X, delta: 1 })
        .unwrap();
    engine.prepare(t).unwrap();
    engine.crash();
    engine.recover().unwrap();

    // A probe on the *other* object, same page: blocked.
    let p = engine.begin().unwrap();
    let r = engine.execute(
        p,
        &Operation::Read {
            obj: ObjectId::new(2),
        },
    );
    assert!(
        matches!(r, Err(AmcError::Aborted(_))),
        "neighbour object must be blocked by the in-doubt page lock"
    );
    engine.abort(t, AbortReason::GlobalDecision).unwrap();
    let p = engine.begin().unwrap();
    engine
        .execute(
            p,
            &Operation::Read {
                obj: ObjectId::new(2),
            },
        )
        .unwrap();
    engine.commit(p).unwrap();
}
