//! The nemesis chaos harness: seeded composed fault schedules (crashes with
//! torn WAL tails, directed link partitions, loss bursts) swept across many
//! seeds and all three protocols, with the full oracle deciding whether
//! atomicity survived — plus the shrinker demo: an intentionally broken
//! coordinator (decision-log force skipped) is caught by the sweep and its
//! violating schedule minimized to a handful of events.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation, SimReport};
use amc::sim::{generate_faults, shrink_faults, FaultPlan, LinkDir, NemesisConfig};
use amc::types::{GlobalTxnId, GlobalVerdict, ObjectId, Operation, SimDuration, SiteId, Value};
use amc::verify::{check_atomicity, check_state_equivalence};
use std::collections::BTreeMap;

const OBJS: u64 = 5;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Five staggered transfers over disjoint object pairs (the discrete-event
/// driver is single-threaded; programs must not conflict at L0).
fn programs() -> Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)> {
    (0..OBJS)
        .map(|i| {
            (
                SimDuration::from_millis(i * 20),
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i),
                            delta: -10,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i),
                            delta: 10,
                        }],
                    ),
                ]),
            )
        })
        .collect()
}

fn run_chaos(
    protocol: ProtocolKind,
    faults: FaultPlan,
    seed: u64,
    skip_decision_log: bool,
) -> (SimReport, BTreeMap<SiteId, BTreeMap<ObjectId, Value>>) {
    run_chaos_lane(protocol, false, faults, seed, skip_decision_log)
}

/// Like [`run_chaos`], with the 1PC fast path (vote piggyback) optionally
/// enabled — the extra sweep lane proving a piggybacked prepare survives
/// the same fault schedules a classic one does.
fn run_chaos_lane(
    protocol: ProtocolKind,
    fast_path: bool,
    faults: FaultPlan,
    seed: u64,
    skip_decision_log: bool,
) -> (SimReport, BTreeMap<SiteId, BTreeMap<ObjectId, Value>>) {
    let mut fed_cfg = FederationConfig::uniform(2, protocol);
    if fast_path {
        fed_cfg = fed_cfg.with_fast_path();
    }
    let mut cfg = SimConfig::new(fed_cfg);
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.unsafe_skip_decision_log = skip_decision_log;
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(30_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let managers = fed.managers();
    let report = fed.run(programs());
    let dumps = SimFederation::dumps(&managers);
    (report, dumps)
}

/// The full oracle. Empty return = the run was correct.
///
/// * every transaction resolved by the horizon;
/// * per-transaction exactly-once: committed → both legs applied once,
///   aborted → neither;
/// * conservation: transfers keep the total balance;
/// * marker audit ([`check_atomicity`]) for the two portable protocols
///   (2PC leaves no markers);
/// * final-state equivalence against a serial replay of the committed
///   transactions.
fn oracle(
    protocol: ProtocolKind,
    report: &SimReport,
    dumps: &BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
    label: &str,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut total = 0i64;
    for i in 0..OBJS {
        let gtx = GlobalTxnId::new(i + 1);
        let v1 = dumps[&SiteId::new(1)][&obj(1, i)].counter;
        let v2 = dumps[&SiteId::new(2)][&obj(2, i)].counter;
        total += v1 + v2;
        match report.outcomes.get(&gtx) {
            Some(GlobalVerdict::Commit) => {
                if (v1, v2) != (PER_OBJ - 10, PER_OBJ + 10) {
                    violations.push(format!(
                        "{label}: {gtx} committed but state is ({v1}, {v2})"
                    ));
                }
            }
            Some(GlobalVerdict::Abort) => {
                if (v1, v2) != (PER_OBJ, PER_OBJ) {
                    violations.push(format!("{label}: {gtx} aborted but state is ({v1}, {v2})"));
                }
            }
            None => violations.push(format!("{label}: {gtx} unresolved at horizon")),
        }
    }
    if total != 2 * OBJS as i64 * PER_OBJ {
        violations.push(format!("{label}: conservation broken, total {total}"));
    }
    if protocol != ProtocolKind::TwoPhaseCommit {
        let participants: BTreeMap<GlobalTxnId, Vec<SiteId>> = (1..=OBJS)
            .map(|i| (GlobalTxnId::new(i), vec![SiteId::new(1), SiteId::new(2)]))
            .collect();
        for v in check_atomicity(dumps, &report.outcomes, &participants) {
            violations.push(format!("{label}: {v:?}"));
        }
    }
    // Serial replay: the programs are disjoint, so ascending gtx order is a
    // valid serialization of whatever interleaving actually happened.
    let initial: BTreeMap<ObjectId, Value> = (1..=2u32)
        .flat_map(|s| (0..OBJS).map(move |i| (obj(s, i), Value::counter(PER_OBJ))))
        .collect();
    let committed: Vec<GlobalTxnId> = report
        .outcomes
        .iter()
        .filter(|(_, v)| **v == GlobalVerdict::Commit)
        .map(|(g, _)| *g)
        .collect();
    let all_programs: BTreeMap<GlobalTxnId, Vec<Operation>> = (0..OBJS)
        .map(|i| {
            (
                GlobalTxnId::new(i + 1),
                vec![
                    Operation::Increment {
                        obj: obj(1, i),
                        delta: -10,
                    },
                    Operation::Increment {
                        obj: obj(2, i),
                        delta: 10,
                    },
                ],
            )
        })
        .collect();
    let actual: BTreeMap<ObjectId, Value> = dumps
        .values()
        .flat_map(|d| d.iter().map(|(o, v)| (*o, *v)))
        .collect();
    for d in check_state_equivalence(&initial, &committed, &all_programs, &actual) {
        violations.push(format!("{label}: {d:?}"));
    }
    violations
}

/// The headline sweep: ≥200 generated schedules × 3 protocols, composed
/// crash/torn-tail/partition/loss-burst faults, zero oracle violations.
#[test]
fn chaos_sweep_is_violation_free_across_200_seeds() {
    let nemesis = NemesisConfig::default();
    for protocol in ProtocolKind::ALL {
        for seed in 0..200u64 {
            let plan = generate_faults(&nemesis, seed);
            let (report, dumps) = run_chaos(protocol, plan.clone(), seed, false);
            let label = format!("{protocol} seed {seed} ({} fault events)", plan.len());
            let violations = oracle(protocol, &report, &dumps, &label);
            assert!(
                violations.is_empty(),
                "{violations:?}\nplan: {:?}\nerrors: {:?}",
                plan.events(),
                report.errors
            );
        }
    }
}

/// The fast-path lane of the sweep: same generated schedules, 2PC with the
/// vote piggyback on. A site that crashes after applying the piggybacked op
/// holds a durable prepare exactly like a classic one, so the oracle must
/// stay silent across the whole fault zoo.
#[test]
fn fast_path_chaos_sweep_is_violation_free() {
    let nemesis = NemesisConfig::default();
    let protocol = ProtocolKind::TwoPhaseCommit;
    for seed in 0..150u64 {
        let plan = generate_faults(&nemesis, seed);
        let (report, dumps) = run_chaos_lane(protocol, true, plan.clone(), seed, false);
        let label = format!("2pc+fast-path seed {seed} ({} fault events)", plan.len());
        let violations = oracle(protocol, &report, &dumps, &label);
        assert!(
            violations.is_empty(),
            "{violations:?}\nplan: {:?}\nerrors: {:?}",
            plan.events(),
            report.errors
        );
    }
}

/// Determinism contract: re-running a seed reproduces the run bit-for-bit
/// (outcomes, full message trace, network accounting, end time) — in every
/// protocol and in every fast-path configuration.
#[test]
fn chaos_runs_reproduce_per_seed() {
    let nemesis = NemesisConfig::default();
    let mut lanes: Vec<(ProtocolKind, bool)> =
        ProtocolKind::ALL.iter().map(|p| (*p, false)).collect();
    lanes.push((ProtocolKind::TwoPhaseCommit, true));
    for (protocol, fast_path) in lanes {
        for seed in 0..20u64 {
            let run = || {
                let plan = generate_faults(&nemesis, seed);
                let (report, dumps) = run_chaos_lane(protocol, fast_path, plan, seed, false);
                (
                    report.outcomes,
                    report.net,
                    report.retransmissions,
                    report.end_time,
                    report.trace.render(),
                    dumps,
                )
            };
            assert_eq!(
                run(),
                run(),
                "{protocol} (fast_path={fast_path}) seed {seed} not reproducible"
            );
        }
    }
}

/// The targeted fast-path lane from the issue: site 2 applies the
/// piggybacked op (op + prepare forced in one batch at ~0.7 ms) but its
/// READY vote is severed by a `ToCentral` partition, and the site then
/// crashes before the coordinator ever hears from it. After restart the
/// resurrected durable prepare must answer the coordinator's classic
/// `Prepare` re-inquiry and the transfer must land exactly once.
#[test]
fn fast_path_crash_between_apply_and_vote_ack_recovers_the_piggybacked_prepare() {
    let faults = FaultPlan::none()
        .partition(SiteId::new(2), amc::types::SimTime(100), LinkDir::ToCentral)
        .crash(SiteId::new(2), amc::types::SimTime(2_000))
        .heal(SiteId::new(2), amc::types::SimTime(11_000))
        .restart(SiteId::new(2), amc::types::SimTime(12_000));
    let (report, dumps) = run_chaos_lane(ProtocolKind::TwoPhaseCommit, true, faults, 11, false);
    let label = "2pc+fast-path vote-lost crash";
    let violations = oracle(ProtocolKind::TwoPhaseCommit, &report, &dumps, label);
    assert!(
        violations.is_empty(),
        "{violations:?}\nerrors: {:?}",
        report.errors
    );
    assert_eq!(
        report.outcomes.get(&GlobalTxnId::new(1)),
        Some(&GlobalVerdict::Commit),
        "{label}: the piggybacked prepare must survive the crash and commit"
    );
    assert_eq!(dumps[&SiteId::new(1)][&obj(1, 0)].counter, 90, "{label}");
    assert_eq!(dumps[&SiteId::new(2)][&obj(2, 0)].counter, 110, "{label}");
    // The remaining transfers run against the recovered site and must all
    // resolve as commits too — recovery leaves no wedged manager state.
    for i in 2..=OBJS {
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(i)),
            Some(&GlobalVerdict::Commit),
            "{label}: G{i} after recovery"
        );
    }
}

/// E8 extension: a crash that tears the WAL tail mid-force must not touch
/// transactions committed before it, and the repaired site must finish the
/// rest of the workload normally.
#[test]
fn torn_tail_crash_preserves_earlier_commits() {
    for protocol in ProtocolKind::ALL {
        // Transaction 1 (t = 0) is long done by 20 ms; the torn crash hits
        // site 2 just after transaction 2's submit (t = 20 ms) executed —
        // its Begin/Update records sit in the volatile tail, so the crash
        // persists one and tears the next. The site is back up at 50 ms
        // and the remaining transfers run against the recovered site.
        let faults = FaultPlan::none()
            .crash_torn(SiteId::new(2), amc::types::SimTime(20_800), 1)
            .restart(SiteId::new(2), amc::types::SimTime(50_000));
        let (report, dumps) = run_chaos(protocol, faults, 3, false);
        let label = format!("{protocol} torn-tail");
        let violations = oracle(protocol, &report, &dumps, &label);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(1)),
            Some(&GlobalVerdict::Commit),
            "{label}: the pre-crash transfer must stay committed"
        );
        assert_eq!(dumps[&SiteId::new(1)][&obj(1, 0)].counter, 90, "{label}");
        assert_eq!(dumps[&SiteId::new(2)][&obj(2, 0)].counter, 110, "{label}");
    }
}

/// The shrinker demo. With the decision-log force deliberately skipped
/// (`unsafe_skip_decision_log`), a central crash inside a decision window
/// makes the restarted coordinator presume abort for a commit other sites
/// already applied — an atomicity violation. The sweep finds a violating
/// seed, and the shrinker minimizes its schedule to at most five events
/// (the minimal witness is a central crash + restart pair).
#[test]
fn broken_decision_log_is_caught_and_shrunk() {
    // Concentrate faults where the workload actually runs so the search
    // finds a witness quickly; the decision windows are ~1–2 ms wide.
    let nemesis = NemesisConfig {
        fault_horizon: amc::types::SimTime(150_000),
        min_hold: SimDuration::from_millis(5),
        max_hold: SimDuration::from_millis(30),
        ..NemesisConfig::default()
    };
    let protocol = ProtocolKind::CommitAfter;
    let violates = |plan: &FaultPlan, seed: u64| {
        let (report, dumps) = run_chaos(protocol, plan.clone(), seed, true);
        !oracle(protocol, &report, &dumps, "shrink-probe").is_empty()
    };

    let mut witness = None;
    for seed in 0..500u64 {
        let plan = generate_faults(&nemesis, seed);
        if plan.is_empty() {
            continue;
        }
        if violates(&plan, seed) {
            witness = Some((seed, plan));
            break;
        }
    }
    let (seed, plan) = witness.expect("no violating seed in 0..500 — the knob lost its teeth");

    // Sanity: with the decision log intact the very same schedule is fine —
    // the harness flags the injected bug, not a false positive.
    let (report, dumps) = run_chaos(protocol, plan.clone(), seed, false);
    assert!(
        oracle(protocol, &report, &dumps, "knob-off").is_empty(),
        "schedule violates even with the decision log intact"
    );

    let shrunk = shrink_faults(&plan, |p| violates(p, seed));
    shrunk.validate().expect("shrunk plan must stay valid");
    assert!(violates(&shrunk, seed), "shrunk plan must still reproduce");
    assert!(
        shrunk.len() <= 5,
        "expected ≤5 events after shrinking, got {} from {}: {:?}",
        shrunk.len(),
        plan.len(),
        shrunk.events()
    );
}
