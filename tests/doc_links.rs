//! Docs stay navigable: every intra-repo markdown link in the top-level
//! documents resolves to a file that exists, and the operator's guide
//! (OPERATORS.md) is reachable from the entry-point docs. CI runs this
//! suite in the test step, so a renamed file or a typo'd link fails the
//! build instead of rotting silently.

use std::path::{Path, PathBuf};

/// The documents whose links are checked (repo-root relative).
const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "OPERATORS.md",
    "ROADMAP.md",
    "CHANGES.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract `](target)` link targets from markdown, skipping fenced code
/// blocks (experiment tables quote `foo[i](x)`-style code there).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            targets.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    targets
}

/// True for link targets that do not name a repo file.
fn external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn every_intra_repo_link_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("top-level doc {doc} must exist: {e}"));
        let dir = path.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            if external(&target) {
                continue;
            }
            // Strip a trailing #anchor; the file part is what must exist.
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            if !dir.join(file_part).exists() {
                broken.push(format!("{doc}: ]({target})"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo links:\n  {}",
        broken.join("\n  ")
    );
}

/// The regime map is discoverable: the entry-point docs link to
/// OPERATORS.md, and the regime map's own cross-references point back at
/// the experiment definitions.
#[test]
fn operators_guide_is_cross_linked() {
    let root = repo_root();
    for doc in ["README.md", "ARCHITECTURE.md", "EXPERIMENTS.md"] {
        let text = std::fs::read_to_string(root.join(doc)).expect("entry-point doc");
        assert!(
            text.contains("OPERATORS.md"),
            "{doc} does not link to the operator's guide"
        );
    }
    let ops = std::fs::read_to_string(root.join("OPERATORS.md")).expect("OPERATORS.md");
    for back in ["EXPERIMENTS.md", "bench_report.txt"] {
        assert!(
            ops.contains(back),
            "OPERATORS.md does not reference {back}"
        );
    }
}
