//! Wire-format guarantees for the `amc-rpc` framed codec.
//!
//! * **Round trip**: every frame kind over every [`Payload`] variant —
//!   with arbitrary operations, votes, and verdicts — decodes back to
//!   itself. The property runs over generated frames, so a new field or
//!   variant that the codec forgets shows up as a failing case, not a
//!   silent truncation in production.
//! * **Golden bytes**: the v1 layout is pinned byte-for-byte. Changing
//!   the encoding must fail these tests — that is the prompt to bump
//!   [`WIRE_VERSION`], not to silently break every deployed peer.

use amc::core::TxnOutcome;
use amc::net::transport::{AdminReply, AdminRequest};
use amc::net::Payload;
use amc::rpc::wire::{decode_frame, encode_frame, CoordReply, CoordRequest, Frame};
use amc::rpc::WIRE_VERSION;
use amc::types::{
    AbortReason, GlobalTxnId, GlobalVerdict, LocalVote, ObjectId, Operation, SiteId, Value,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ------------------------------------------------------------ strategies --

fn arb_op() -> impl Strategy<Value = Operation> {
    (
        0u8..6,
        any::<u64>(),
        any::<i64>(),
        any::<u32>(),
        1u64..1_000,
    )
        .prop_map(|(tag, raw, delta, vtag, amount)| {
            let obj = ObjectId::new(raw);
            let value = Value {
                counter: delta ^ 0x55,
                tag: vtag,
            };
            match tag {
                0 => Operation::Read { obj },
                1 => Operation::Write { obj, value },
                2 => Operation::Increment { obj, delta },
                3 => Operation::Insert { obj, value },
                4 => Operation::Delete { obj },
                _ => Operation::Reserve { obj, amount },
            }
        })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    (
        0u8..8,
        any::<u64>(),
        vec(arb_op(), 0..5),
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(tag, raw, ops, vote, commit)| {
            let gtx = GlobalTxnId::new(raw);
            match tag {
                0 => Payload::Submit { gtx, ops },
                7 => Payload::SubmitPrepare {
                    gtx,
                    ops,
                    solo: commit,
                },
                1 => Payload::Prepare { gtx },
                2 => Payload::Vote {
                    gtx,
                    vote: match vote {
                        0 => LocalVote::Ready,
                        1 => LocalVote::ReadyReadOnly,
                        _ => LocalVote::Aborted,
                    },
                },
                3 => Payload::Decision {
                    gtx,
                    verdict: if commit {
                        GlobalVerdict::Commit
                    } else {
                        GlobalVerdict::Abort
                    },
                },
                4 => Payload::Redo { gtx, ops },
                5 => Payload::Undo {
                    gtx,
                    inverse_ops: ops,
                },
                _ => Payload::Finished { gtx },
            }
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..3,
        any::<u64>(),
        arb_payload(),
        vec((any::<u64>(), any::<i64>()), 0..4),
    )
        .prop_map(|(kind, req_id, payload, pairs)| match kind {
            0 => Frame::Request { req_id, payload },
            1 => Frame::Reply { req_id, payload },
            _ => Frame::AdminRequest {
                req_id,
                req: AdminRequest::Load(
                    pairs
                        .into_iter()
                        .map(|(o, c)| (ObjectId::new(o), Value::counter(c)))
                        .collect(),
                ),
            },
        })
}

proptest! {
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        prop_assert_eq!(decode_frame(&bytes).expect("decode"), frame);
    }
}

/// Every payload variant explicitly, so a codec gap cannot hide behind
/// generator distribution.
#[test]
fn each_payload_variant_round_trips() {
    let gtx = GlobalTxnId::new(42);
    let ops = vec![
        Operation::Read {
            obj: ObjectId::new(1),
        },
        Operation::Write {
            obj: ObjectId::new(2),
            value: Value {
                counter: -7,
                tag: 9,
            },
        },
        Operation::Increment {
            obj: ObjectId::new(3),
            delta: i64::MIN,
        },
        Operation::Insert {
            obj: ObjectId::new(u64::MAX),
            value: Value::ZERO,
        },
        Operation::Delete {
            obj: ObjectId::new(5),
        },
        Operation::Reserve {
            obj: ObjectId::new(6),
            amount: u64::MAX,
        },
    ];
    let payloads = vec![
        Payload::Submit {
            gtx,
            ops: ops.clone(),
        },
        Payload::Prepare { gtx },
        Payload::Vote {
            gtx,
            vote: LocalVote::Ready,
        },
        Payload::Vote {
            gtx,
            vote: LocalVote::ReadyReadOnly,
        },
        Payload::Vote {
            gtx,
            vote: LocalVote::Aborted,
        },
        Payload::Decision {
            gtx,
            verdict: GlobalVerdict::Commit,
        },
        Payload::Decision {
            gtx,
            verdict: GlobalVerdict::Abort,
        },
        Payload::Redo {
            gtx,
            ops: ops.clone(),
        },
        Payload::Undo {
            gtx,
            inverse_ops: ops,
        },
        Payload::Finished { gtx },
        Payload::SubmitPrepare {
            gtx,
            ops: vec![Operation::Increment {
                obj: ObjectId::new(8),
                delta: 4,
            }],
            solo: false,
        },
        Payload::SubmitPrepare {
            gtx,
            ops: vec![],
            solo: true,
        },
    ];
    for payload in payloads {
        for frame in [
            Frame::Request {
                req_id: 7,
                payload: payload.clone(),
            },
            Frame::Reply {
                req_id: u64::MAX,
                payload: payload.clone(),
            },
        ] {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).expect("decode"), frame, "{payload:?}");
        }
    }
}

/// Admin frames round-trip too (ping, load, dump requests).
#[test]
fn admin_frames_round_trip() {
    for req in [
        AdminRequest::Ping,
        AdminRequest::Dump,
        AdminRequest::CommStats,
        AdminRequest::LogStats,
        AdminRequest::Load(vec![(ObjectId::new(3), Value::counter(12))]),
    ] {
        let frame = Frame::AdminRequest { req_id: 1, req };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).expect("decode"), frame);
    }
    let frame = Frame::AdminReply {
        req_id: 2,
        reply: AdminReply::Pong,
    };
    let bytes = encode_frame(&frame);
    assert_eq!(decode_frame(&bytes).expect("decode"), frame);
}

// -------------------------------------------------------- golden layout --

/// The v1 frame layout, pinned byte-for-byte:
///
/// ```text
/// [u32 LE length of rest] [u8 version] [u8 frame kind] [u64 LE req id] [body]
/// ```
///
/// Body of a `Submit`: payload tag, gtx, op count, then each op as
/// `tag, object id, variant fields` — all little-endian.
#[test]
fn golden_bytes_request_submit_v1() {
    let frame = Frame::Request {
        req_id: 0x0102_0304_0506_0708,
        payload: Payload::Submit {
            gtx: GlobalTxnId::new(7),
            ops: vec![Operation::Increment {
                obj: ObjectId::new(9),
                delta: -3,
            }],
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&40u32.to_le_bytes()); // length of everything after it
    expect.push(WIRE_VERSION); // version byte = 1
    expect.push(0); // frame kind 0 = request
    expect.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes()); // req id
    expect.push(0); // payload tag 0 = submit
    expect.extend_from_slice(&7u64.to_le_bytes()); // gtx
    expect.extend_from_slice(&1u32.to_le_bytes()); // op count
    expect.push(2); // op tag 2 = increment
    expect.extend_from_slice(&9u64.to_le_bytes()); // object id
    expect.extend_from_slice(&(-3i64).to_le_bytes()); // delta
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// A vote reply — the other direction of the protocol conversation.
#[test]
fn golden_bytes_reply_vote_v1() {
    let frame = Frame::Reply {
        req_id: 5,
        payload: Payload::Vote {
            gtx: GlobalTxnId::new(11),
            vote: LocalVote::Aborted,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&20u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(1); // frame kind 1 = reply
    expect.extend_from_slice(&5u64.to_le_bytes());
    expect.push(2); // payload tag 2 = vote
    expect.extend_from_slice(&11u64.to_le_bytes());
    expect.push(2); // vote 2 = aborted (0 ready, 1 ready-read-only)
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// The fast-path combined op+prepare dispatch: payload tag 14, then gtx,
/// a solo flag byte, and the ops exactly as in a `Submit`.
#[test]
fn golden_bytes_request_submit_prepare_v1() {
    let frame = Frame::Request {
        req_id: 6,
        payload: Payload::SubmitPrepare {
            gtx: GlobalTxnId::new(13),
            ops: vec![Operation::Increment {
                obj: ObjectId::new(9),
                delta: -3,
            }],
            solo: false,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&41u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0); // frame kind 0 = request
    expect.extend_from_slice(&6u64.to_le_bytes());
    expect.push(14); // payload tag 14 = submit-prepare
    expect.extend_from_slice(&13u64.to_le_bytes()); // gtx
    expect.push(0); // solo flag: 0 = piggybacked vote, global round follows
    expect.extend_from_slice(&1u32.to_le_bytes()); // op count
    expect.push(2); // op tag 2 = increment
    expect.extend_from_slice(&9u64.to_le_bytes()); // object id
    expect.extend_from_slice(&(-3i64).to_le_bytes()); // delta
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// The single-site bypass variant: identical layout with the solo flag set.
#[test]
fn golden_bytes_request_submit_solo_v1() {
    let frame = Frame::Request {
        req_id: 6,
        payload: Payload::SubmitPrepare {
            gtx: GlobalTxnId::new(13),
            ops: vec![],
            solo: true,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&24u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0);
    expect.extend_from_slice(&6u64.to_le_bytes());
    expect.push(14);
    expect.extend_from_slice(&13u64.to_le_bytes());
    expect.push(1); // solo flag: 1 = commit locally, no global round
    expect.extend_from_slice(&0u32.to_le_bytes()); // op count
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// A write op pins the 12-byte value layout (counter i64 LE + tag u32 LE).
#[test]
fn golden_bytes_value_layout_v1() {
    let frame = Frame::Request {
        req_id: 1,
        payload: Payload::Submit {
            gtx: GlobalTxnId::new(1),
            ops: vec![Operation::Write {
                obj: ObjectId::new(2),
                value: Value {
                    counter: 0x0A0B_0C0D,
                    tag: 0xF00D,
                },
            }],
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&44u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0);
    expect.extend_from_slice(&1u64.to_le_bytes());
    expect.push(0);
    expect.extend_from_slice(&1u64.to_le_bytes());
    expect.extend_from_slice(&1u32.to_le_bytes());
    expect.push(1); // op tag 1 = write
    expect.extend_from_slice(&2u64.to_le_bytes());
    expect.extend_from_slice(&0x0A0B_0C0Di64.to_le_bytes()); // value.counter
    expect.extend_from_slice(&0xF00Du32.to_le_bytes()); // value.tag
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

// ------------------------------------------- coordinator frames (5/6) --

/// Frame kind 5, an `Exec`: tag 2, a u32 site count, then per site a
/// u32 site id and the ops exactly as in a `Submit`.
#[test]
fn golden_bytes_coord_request_exec_v1() {
    let frame = Frame::CoordRequest {
        req_id: 3,
        req: CoordRequest::Exec {
            per_site: std::collections::BTreeMap::from([(
                SiteId::new(2),
                vec![Operation::Increment {
                    obj: ObjectId::new(9),
                    delta: -3,
                }],
            )]),
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&40u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(5); // frame kind 5 = coordinator request
    expect.extend_from_slice(&3u64.to_le_bytes()); // req id
    expect.push(2); // coord-request tag 2 = exec
    expect.extend_from_slice(&1u32.to_le_bytes()); // site count
    expect.extend_from_slice(&2u32.to_le_bytes()); // site id
    expect.extend_from_slice(&1u32.to_le_bytes()); // op count
    expect.push(2); // op tag 2 = increment
    expect.extend_from_slice(&9u64.to_le_bytes()); // object id
    expect.extend_from_slice(&(-3i64).to_le_bytes()); // delta
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// Frame kind 6, a `Coord` description: identity for discovery — slot,
/// coordinator count, epoch, then the site list.
#[test]
fn golden_bytes_coord_reply_describe_v1() {
    let frame = Frame::CoordReply {
        req_id: 9,
        reply: CoordReply::Coord {
            slot: 1,
            coordinators: 4,
            epoch: 7,
            sites: vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)],
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&43u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(6); // frame kind 6 = coordinator reply
    expect.extend_from_slice(&9u64.to_le_bytes());
    expect.push(1); // coord-reply tag 1 = coord description
    expect.extend_from_slice(&1u32.to_le_bytes()); // slot
    expect.extend_from_slice(&4u32.to_le_bytes()); // coordinators
    expect.extend_from_slice(&7u64.to_le_bytes()); // epoch
    expect.extend_from_slice(&3u32.to_le_bytes()); // site count
    expect.extend_from_slice(&1u32.to_le_bytes());
    expect.extend_from_slice(&2u32.to_le_bytes());
    expect.extend_from_slice(&3u32.to_le_bytes());
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// Frame kind 6, a `Done`: the transaction id (carrying the owning
/// coordinator's disjoint-range slot in its high bits), a one-byte
/// outcome, latency and message count.
#[test]
fn golden_bytes_coord_reply_done_v1() {
    let gtx_raw = 2 * (1u64 << 40) + 17; // slot 2's id range
    let frame = Frame::CoordReply {
        req_id: 5,
        reply: CoordReply::Done {
            gtx: GlobalTxnId::new(gtx_raw),
            outcome: TxnOutcome::Committed,
            latency_us: 1234,
            messages: 12,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&36u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(6);
    expect.extend_from_slice(&5u64.to_le_bytes());
    expect.push(2); // coord-reply tag 2 = done
    expect.extend_from_slice(&gtx_raw.to_le_bytes()); // gtx
    expect.push(0); // outcome 0 = committed (1 aborted, 2 l1-rejected+reason)
    expect.extend_from_slice(&1234u64.to_le_bytes()); // latency µs
    expect.extend_from_slice(&12u64.to_le_bytes()); // messages
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// The L1-rejected outcome carries its abort reason as a trailing tag
/// byte (2 = lock timeout).
#[test]
fn golden_bytes_coord_reply_l1_rejected_v1() {
    let frame = Frame::CoordReply {
        req_id: 5,
        reply: CoordReply::Done {
            gtx: GlobalTxnId::new(1),
            outcome: TxnOutcome::L1Rejected(AbortReason::LockTimeout),
            latency_us: 0,
            messages: 0,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&37u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(6);
    expect.extend_from_slice(&5u64.to_le_bytes());
    expect.push(2);
    expect.extend_from_slice(&1u64.to_le_bytes());
    expect.push(2); // outcome 2 = l1-rejected
    expect.push(2); // abort reason 2 = lock timeout
    expect.extend_from_slice(&0u64.to_le_bytes());
    expect.extend_from_slice(&0u64.to_le_bytes());
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}
