//! Escrow reserves end to end — the VODAK-flavoured semantic extension
//! (§4.1/§6: conflict relations derived from method commutativity).
//!
//! Reserves on the same stock counter hold compatible L1 locks, so booking
//! transactions interleave like Fig. 8's increments; the engine enforces
//! the non-negativity bound atomically at L0; and the §3.3 undo of an
//! aborted booking is a plain restock — no before image needed.

use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn loaded(protocol: ProtocolKind) -> Arc<Federation> {
    let fed = Federation::new(FederationConfig::uniform(2, protocol));
    for s in 1..=2u32 {
        fed.load_site(
            SiteId::new(s),
            &[
                (obj(s, 0), Value::counter(10)),
                (obj(s, 1), Value::counter(10)),
            ],
        )
        .unwrap();
    }
    Arc::new(fed)
}

fn booking(units: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Reserve {
                obj: obj(1, 0),
                amount: units,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Reserve {
                obj: obj(2, 0),
                amount: units,
            }],
        ),
    ])
}

#[test]
fn concurrent_reserves_interleave_and_never_oversell() {
    // 10 units of stock, 20 concurrent 1-unit bookings: exactly 10 commit,
    // 10 fail their bound check, stock ends at exactly zero.
    let fed = loaded(ProtocolKind::CommitBefore);
    let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> =
        (0..20).map(|_| (booking(1), true)).collect();
    // `true`: a failed bound check is transaction logic, an intended abort.
    let metrics = fed.run_concurrent(programs, 8);
    assert_eq!(metrics.committed, 10, "{metrics:?}");
    assert_eq!(metrics.aborted_intended, 10);
    assert_eq!(
        metrics.l1_rejections, 0,
        "reserves hold compatible L1 locks"
    );
    let dumps = fed.dumps().unwrap();
    assert_eq!(dumps[&SiteId::new(1)][&obj(1, 0)], Value::counter(0));
    assert_eq!(dumps[&SiteId::new(2)][&obj(2, 0)], Value::counter(0));
}

#[test]
fn aborted_booking_restocks_via_inverse_transaction() {
    // Site 1 has stock; site 2's program fails its own logic after site 1
    // already reserved-and-committed — the §3.3 undo must restock.
    let fed = loaded(ProtocolKind::CommitBefore);
    let program = BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Reserve {
                obj: obj(1, 0),
                amount: 4,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Reserve {
                obj: obj(2, 0),
                amount: 999,
            }], // overdraw
        ),
    ]);
    let report = fed.run_transaction(&program).unwrap();
    assert_eq!(report.outcome, TxnOutcome::Aborted);
    let dumps = fed.dumps().unwrap();
    assert_eq!(
        dumps[&SiteId::new(1)][&obj(1, 0)],
        Value::counter(10),
        "the committed reserve was undone by a restock"
    );
    assert_eq!(dumps[&SiteId::new(2)][&obj(2, 0)], Value::counter(10));
}

#[test]
fn oversell_is_impossible_under_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let fed = loaded(protocol);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> =
            (0..15).map(|i| (booking(1 + (i % 2)), true)).collect();
        let metrics = fed.run_concurrent(programs, 6);
        let dumps = fed.dumps().unwrap();
        let s1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
        let s2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
        assert!(s1 >= 0 && s2 >= 0, "{protocol}: oversold ({s1},{s2})");
        // Conservation: stock consumed == stock reserved by commits.
        assert_eq!(s1, s2, "{protocol}: both legs of every booking are atomic");
        assert!(metrics.committed > 0, "{protocol}");
    }
}

#[test]
fn reserves_and_reads_conflict_at_l1() {
    // An auditor reading the stock must not interleave with reservers —
    // Read vs Escrow is a conflict, so the read sees a consistent value.
    let fed = loaded(ProtocolKind::CommitBefore);
    let audit = BTreeMap::from([
        (SiteId::new(1), vec![Operation::Read { obj: obj(1, 0) }]),
        (SiteId::new(2), vec![Operation::Read { obj: obj(2, 0) }]),
    ]);
    let mut programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> =
        (0..8).map(|_| (booking(1), true)).collect();
    programs.push((audit, false));
    let metrics = fed.run_concurrent(programs, 6);
    assert_eq!(metrics.committed, 9, "{metrics:?}");
    // The audit committed; the history must be serializable (the L1 locks
    // force the read to a consistent cut).
    fed.history()
        .check_serializable(amc::verify::history::ConflictDefinition::Commutativity)
        .unwrap();
}
