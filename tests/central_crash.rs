//! Central-system (coordinator) crashes — the [Ske 81] side of the story.
//!
//! The central system is itself a database system (the paper implements it
//! in VODAK), so its global decisions are forced to its own log before any
//! decision message leaves. After a central restart:
//!
//! * **decided + logged** transactions resume their finish rounds and
//!   re-drive the participants (idempotently);
//! * **undecided** transactions are *presumed aborted*: commit-before
//!   inquires each participant for its final state and undoes the ones
//!   that had committed, the decision-holding protocols ship the abort.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::FailurePlan;
use amc::types::{
    GlobalTxnId, GlobalVerdict, ObjectId, Operation, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn transfer(i: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Increment {
                obj: obj(1, i),
                delta: -30,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Increment {
                obj: obj(2, i),
                delta: 30,
            }],
        ),
    ])
}

fn run(
    protocol: ProtocolKind,
    crash_at_us: u64,
    outage_ms: u64,
) -> (
    amc::core::SimReport,
    BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
) {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
    cfg.failures = FailurePlan::none().outage(
        SiteId::CENTRAL,
        SimTime(crash_at_us),
        SimDuration::from_millis(outage_ms),
    );
    cfg.horizon = SimDuration::from_millis(10_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> =
            (0..4).map(|i| (obj(s, i), Value::counter(100))).collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let managers = fed.managers();
    let report = fed.run(vec![(SimDuration::ZERO, transfer(0))]);
    let dumps = SimFederation::dumps(&managers);
    (report, dumps)
}

fn assert_atomic(
    report: &amc::core::SimReport,
    dumps: &BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
    label: &str,
) {
    let gtx = GlobalTxnId::new(1);
    let verdict = report.outcomes.get(&gtx);
    let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
    let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
    match verdict {
        Some(GlobalVerdict::Commit) => assert_eq!((v1, v2), (70, 130), "{label}"),
        Some(GlobalVerdict::Abort) => assert_eq!((v1, v2), (100, 100), "{label}"),
        None => panic!("{label}: unresolved ({:?})", report.unresolved),
    }
}

#[test]
fn central_crash_before_any_decision_presumes_abort() {
    // Crash 100 µs in: submits may be in flight, no decision logged.
    for protocol in ProtocolKind::ALL {
        let (report, dumps) = run(protocol, 100, 40);
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(1)),
            Some(&GlobalVerdict::Abort),
            "{protocol}: no durable decision -> presumed abort"
        );
        assert_atomic(&report, &dumps, &format!("{protocol} early-crash"));
        assert!(report.errors.is_empty(), "{protocol}: {:?}", report.errors);
    }
}

#[test]
fn central_crash_in_decision_window_preserves_logged_commits() {
    // Crash at 1.45 ms: for commit-before the decision (~1.4 ms) is logged
    // and the protocol was already finished; for the others the decision
    // messages race the crash and the logged decision must be re-driven.
    for protocol in ProtocolKind::ALL {
        let (report, dumps) = run(protocol, 1_450, 40);
        assert_atomic(&report, &dumps, &format!("{protocol} mid-crash"));
        // Whatever the verdict, it must match what the central log said:
        // a resumed commit must not become an abort or vice versa.
        assert!(
            report.unresolved.is_empty(),
            "{protocol}: {:?}",
            report.unresolved
        );
    }
}

#[test]
fn commit_before_survives_central_crash_after_local_commits() {
    // Commit-before's happy path completes at ~1.4 ms; a central crash at
    // 2 ms is entirely after the fact — verdict commit, effects in place.
    let (report, dumps) = run(ProtocolKind::CommitBefore, 2_000, 40);
    assert_eq!(
        report.outcomes.get(&GlobalTxnId::new(1)),
        Some(&GlobalVerdict::Commit)
    );
    assert_atomic(&report, &dumps, "commit-before late central crash");
}

#[test]
fn presumed_abort_undoes_committed_locals_under_commit_before() {
    // Commit-before locals commit at submit time (~0.7 ms); crash the
    // central at 1.0 ms — after the local commits but before the global
    // decision was logged. The restarted coordinator presumes abort,
    // inquires, learns both sites committed, and undoes them.
    let (report, dumps) = run(ProtocolKind::CommitBefore, 1_000, 40);
    assert_eq!(
        report.outcomes.get(&GlobalTxnId::new(1)),
        Some(&GlobalVerdict::Abort),
        "undecided at crash -> presumed abort"
    );
    assert_atomic(&report, &dumps, "presumed abort with committed locals");
    // The undo really ran: look for undo messages in the trace.
    let labels = report.trace.labels_for(GlobalTxnId::new(1));
    assert!(
        labels.iter().any(|l| l.starts_with("undo:")),
        "expected inverse transactions, got {labels:?}"
    );
}

#[test]
fn client_requests_during_central_outage_are_served_after_restart() {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::CommitBefore));
    cfg.failures =
        FailurePlan::none().outage(SiteId::CENTRAL, SimTime(10), SimDuration::from_millis(20));
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> =
            (0..4).map(|i| (obj(s, i), Value::counter(100))).collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let managers = fed.managers();
    // This transaction arrives while the central system is down.
    let report = fed.run(vec![(SimDuration::from_millis(5), transfer(1))]);
    assert_eq!(
        report.outcomes.get(&GlobalTxnId::new(1)),
        Some(&GlobalVerdict::Commit),
        "request queued during the outage commits after restart: {:?}",
        report.unresolved
    );
    let dumps = SimFederation::dumps(&managers);
    assert_eq!(dumps[&SiteId::new(1)][&obj(1, 1)].counter, 70);
    assert_eq!(dumps[&SiteId::new(2)][&obj(2, 1)].counter, 130);
}
