//! End-to-end networked federation: the coordinator drives real site
//! servers over loopback TCP, through the framed codec and the
//! deadline/retry client — including a site restart mid-run.
//!
//! For each protocol: spawn one [`SiteServer`] per site (ephemeral
//! loopback ports), run a mixed transfer workload through
//! `Federation::with_transport`, then kill one site's server, crash and
//! recover its engine, and respawn the server **in place on the same
//! port** — exactly what a restarted production process does, leaning on
//! the server's bind retry to ride out the old listener's TIME_WAIT. The
//! run must commit transactions both before and after the restart, the
//! client must log a reconnect, and the global sum must be conserved at
//! the end — the paper's atomicity guarantee surviving an actual socket
//! teardown, not a simulated one.

use amc::core::{Federation, FederationConfig, TxnOutcome};
use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::net::comm::EngineHandle;
use amc::net::transport::FederationTransport;
use amc::net::LocalCommManager;
use amc::obs::{EventKind, ObsSink};
use amc::rpc::{RetryPolicy, SiteServer, TcpTransport};
use amc::types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const SITES: u32 = 2;
const OBJS: u64 = 8;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Test-speed deadlines: a dead site is declared down in well under a
/// second instead of the production policy's many seconds.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_secs(2),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    }
}

/// One site's independently owned stack: engine + manager, fronted by a
/// restartable TCP server.
struct Site {
    engine: Arc<TwoPLEngine>,
    manager: Arc<LocalCommManager>,
    server: Option<SiteServer>,
}

struct Cluster {
    mode: amc::net::SubmitMode,
    sites: BTreeMap<SiteId, Site>,
    transport: Arc<TcpTransport>,
    obs: ObsSink,
}

impl Cluster {
    fn spawn(protocol: ProtocolKind) -> Cluster {
        let mode = amc::core::submit_mode_for(protocol);
        let obs = ObsSink::enabled(1 << 16);
        let mut sites = BTreeMap::new();
        let mut addrs = BTreeMap::new();
        for s in 1..=SITES {
            let site = SiteId::new(s);
            let cfg = TplConfig {
                lock_timeout: Duration::from_millis(200),
                deadlock_check: Duration::from_millis(1),
                ..TplConfig::default()
            };
            let engine = Arc::new(TwoPLEngine::new(cfg));
            let manager = Arc::new(LocalCommManager::new(
                site,
                EngineHandle::Preparable(Arc::clone(&engine) as _),
            ));
            let server = SiteServer::spawn(
                site,
                Arc::clone(&manager),
                mode,
                "127.0.0.1:0",
                ObsSink::disabled(),
            )
            .expect("bind loopback");
            addrs.insert(site, server.addr());
            sites.insert(
                site,
                Site {
                    engine,
                    manager,
                    server: Some(server),
                },
            );
        }
        let transport = Arc::new(TcpTransport::new(addrs, fast_policy(), obs.clone()));
        Cluster {
            mode,
            sites,
            transport,
            obs,
        }
    }

    /// Tear the site's server down (sockets die), crash + recover its
    /// engine, and bring a new server up **in place** — same port, so the
    /// transport needs no repointing. `SiteServer::spawn` retries the
    /// bind through whatever TIME_WAIT the dead listener left behind.
    fn restart_site(&mut self, site: SiteId) {
        let entry = self.sites.get_mut(&site).expect("known site");
        let server = entry.server.take().expect("server running");
        let addr = server.addr();
        server.shutdown();
        entry.engine.crash();
        entry.engine.recover().expect("recovery");
        let server = SiteServer::spawn(
            site,
            Arc::clone(&entry.manager),
            self.mode,
            &addr.to_string(),
            ObsSink::disabled(),
        )
        .expect("rebind loopback in place");
        assert_eq!(server.addr(), addr, "restart must reuse the same port");
        entry.server = Some(server);
    }
}

/// A two-site transfer program; `i` picks the objects and direction.
fn transfer(i: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    let (from, to) = if i.is_multiple_of(2) {
        (1u32, 2u32)
    } else {
        (2, 1)
    };
    let amt = 1 + (i % 5) as i64;
    BTreeMap::from([
        (
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, i % OBJS),
                delta: -amt,
            }],
        ),
        (
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, (i + 3) % OBJS),
                delta: amt,
            }],
        ),
    ])
}

/// Run `n` transfers starting at `base`, retrying transport-level
/// failures (a restart in progress) a bounded number of times. Returns
/// how many committed.
fn drive(fed: &Arc<Federation>, base: u64, n: u64) -> u64 {
    let mut committed = 0;
    for i in base..base + n {
        let program = transfer(i);
        for attempt in 0..8 {
            match fed.run_transaction(&program) {
                Ok(report) => {
                    if report.outcome == TxnOutcome::Committed {
                        committed += 1;
                    }
                    break;
                }
                Err(_) if attempt < 7 => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("transaction {i} never got through: {e}"),
            }
        }
    }
    committed
}

fn restart_run(protocol: ProtocolKind) {
    let mut cluster = Cluster::spawn(protocol);
    let cfg = FederationConfig::uniform(SITES, protocol);
    let fed = Arc::new(Federation::with_transport(
        cfg,
        Arc::clone(&cluster.transport) as Arc<dyn FederationTransport>,
    ));
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }

    let before = drive(&fed, 0, 15);
    assert!(before > 0, "{protocol:?}: nothing committed before restart");

    cluster.restart_site(SiteId::new(2));

    let after = drive(&fed, 100, 15);
    assert!(after > 0, "{protocol:?}: nothing committed after restart");

    // The client must have survived the socket teardown by reconnecting.
    let log = cluster.obs.snapshot();
    let reconnected = log
        .events()
        .any(|e| matches!(e.kind, EventKind::RpcReconnect { to } if to == SiteId::new(2)));
    assert!(
        reconnected,
        "{protocol:?}: no rpc-reconnect event to the restarted site"
    );

    // Atomicity across the restart: transfers conserve the global sum.
    let dumps = fed.dumps().expect("dumps");
    let sum: i64 = dumps
        .values()
        .flat_map(|d| d.values())
        .map(|v| v.counter)
        .sum();
    assert_eq!(
        sum,
        i64::from(SITES) * OBJS as i64 * PER_OBJ,
        "{protocol:?}: global sum not conserved across restart"
    );
}

#[test]
fn two_phase_commit_survives_site_restart() {
    restart_run(ProtocolKind::TwoPhaseCommit);
}

#[test]
fn commit_after_survives_site_restart() {
    restart_run(ProtocolKind::CommitAfter);
}

#[test]
fn commit_before_survives_site_restart() {
    restart_run(ProtocolKind::CommitBefore);
}
