//! E8 — the §3.2/§3.3 crash windows around commit propagation.
//!
//! "If the system crashes between the commit and the propagation, the
//! recovery mechanism will assume that the local transaction has been
//! aborted and will erroneously repeat it. A crash after propagation but
//! before the commit will result in no repetition at all." The marker
//! scheme (the log written *into the existing database by the local
//! transaction*) closes both windows: these tests crash on each side of a
//! commit and verify exactly-once effects.

use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::net::comm::{EngineHandle, LocalCommManager, SubmitMode};
use amc::types::{GlobalTxnId, GlobalVerdict, ObjectId, Operation, SiteId, Value};
use std::sync::Arc;

fn setup() -> (LocalCommManager, Arc<TwoPLEngine>) {
    let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
    engine
        .load([(ObjectId::new(1), Value::counter(100))])
        .unwrap();
    let mgr = LocalCommManager::new(SiteId::new(1), EngineHandle::Plain(engine.clone()));
    (mgr, engine)
}

const G: GlobalTxnId = GlobalTxnId::new(1);

fn incr(delta: i64) -> Vec<Operation> {
    vec![Operation::Increment {
        obj: ObjectId::new(1),
        delta,
    }]
}

fn counter(engine: &TwoPLEngine) -> i64 {
    engine.dump().unwrap()[&ObjectId::new(1)].counter
}

/// Crash *after* the local commit, before the coordinator hears about it:
/// the retransmitted redo must find the marker and not re-apply.
#[test]
fn redo_window_crash_after_commit() {
    let (mgr, engine) = setup();
    mgr.handle_submit(G, incr(5), SubmitMode::CommitAfter)
        .unwrap();
    mgr.handle_decision(G, GlobalVerdict::Commit).unwrap();
    assert_eq!(counter(&engine), 105);

    // The `finished` message is lost; the site crashes; the coordinator
    // retransmits the redo after restart.
    engine.crash();
    engine.recover().unwrap();
    for _ in 0..3 {
        mgr.handle_redo(G, incr(5)).unwrap();
        assert_eq!(counter(&engine), 105, "redo must be exactly-once");
    }
}

/// Crash *before* the local commit completed: the redo must apply exactly
/// once.
#[test]
fn redo_window_crash_before_commit() {
    let (mgr, engine) = setup();
    mgr.handle_submit(G, incr(5), SubmitMode::CommitAfter)
        .unwrap();
    // Decision never arrives; crash kills the running transaction.
    engine.crash();
    engine.recover().unwrap();
    assert_eq!(counter(&engine), 100, "nothing committed yet");
    mgr.handle_redo(G, incr(5)).unwrap();
    assert_eq!(counter(&engine), 105);
    mgr.handle_redo(G, incr(5)).unwrap();
    assert_eq!(counter(&engine), 105, "second redo is a no-op");
}

/// §3.3's mirror-image windows for undo: "a system crash between the commit
/// and the propagation may otherwise cause a local transaction to be doubly
/// undone".
#[test]
fn undo_window_crash_after_undo_commit() {
    let (mgr, engine) = setup();
    mgr.handle_submit(G, incr(5), SubmitMode::CommitBefore)
        .unwrap();
    assert_eq!(counter(&engine), 105);
    // Global abort: undo runs and commits...
    mgr.handle_undo(G, vec![]).unwrap();
    assert_eq!(counter(&engine), 100);
    // ...but the acknowledgement is lost in a crash; the coordinator
    // retransmits the undo.
    engine.crash();
    engine.recover().unwrap();
    for _ in 0..3 {
        mgr.handle_undo(G, vec![]).unwrap();
        assert_eq!(counter(&engine), 100, "undo must not double-apply");
    }
}

/// Crash before the undo committed: retransmission must apply it exactly
/// once.
#[test]
fn undo_window_crash_before_undo_commit() {
    let (mgr, engine) = setup();
    mgr.handle_submit(G, incr(5), SubmitMode::CommitBefore)
        .unwrap();
    assert_eq!(counter(&engine), 105);
    // Crash races the undo: it never ran.
    engine.crash();
    engine.recover().unwrap();
    assert_eq!(counter(&engine), 105, "forward commit survived the crash");
    mgr.handle_undo(G, incr(-5)).unwrap();
    assert_eq!(counter(&engine), 100);
    mgr.handle_undo(G, incr(-5)).unwrap();
    assert_eq!(counter(&engine), 100);
}

/// The forward commit itself is durable: crash right after the submit
/// commits (commit-before), and the post-recovery prepare inquiry answers
/// "ready" from the marker, not from lost volatile state.
#[test]
fn forward_commit_survives_and_answers_inquiry() {
    let (mgr, engine) = setup();
    mgr.handle_submit(G, incr(5), SubmitMode::CommitBefore)
        .unwrap();
    engine.crash();
    engine.recover().unwrap();
    assert_eq!(counter(&engine), 105);
    let reply = mgr.handle_prepare(G).unwrap();
    assert_eq!(
        reply,
        amc::net::Payload::Vote {
            gtx: G,
            vote: amc::types::LocalVote::Ready
        }
    );
}
