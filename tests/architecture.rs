//! F1 — the Fig. 1 architecture invariants: star topology, one connection
//! per site, no local-to-local traffic, and integration of additional
//! systems without disturbing existing ones.

use amc::core::{Federation, FederationConfig, ProtocolKind};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::{BTreeMap, BTreeSet};

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn loaded(protocol: ProtocolKind, sites: u32) -> Federation {
    let fed = Federation::new(FederationConfig::uniform(sites, protocol));
    for s in 1..=sites {
        let data: Vec<(ObjectId, Value)> =
            (0..16).map(|i| (obj(s, i), Value::counter(100))).collect();
        fed.load_site(SiteId::new(s), &data).unwrap();
    }
    fed
}

fn spread_program(sites: u32) -> BTreeMap<SiteId, Vec<Operation>> {
    (1..=sites)
        .map(|s| {
            (
                SiteId::new(s),
                vec![Operation::Increment {
                    obj: obj(s, 0),
                    delta: 1,
                }],
            )
        })
        .collect()
}

#[test]
fn every_message_involves_the_central_system() {
    for protocol in ProtocolKind::ALL {
        let fed = loaded(protocol, 4);
        fed.run_transaction(&spread_program(4)).unwrap();
        let trace = fed.trace();
        assert!(!trace.is_empty());
        for entry in trace.entries() {
            assert!(
                entry.envelope.respects_star_topology(),
                "{protocol}: {}",
                entry.envelope
            );
        }
    }
}

#[test]
fn locals_never_exchange_messages_directly() {
    for protocol in ProtocolKind::ALL {
        let fed = loaded(protocol, 3);
        fed.run_transaction(&spread_program(3)).unwrap();
        for entry in fed.trace().entries() {
            let e = &entry.envelope;
            assert!(
                e.from.is_central() || e.to.is_central(),
                "{protocol}: local-to-local message {e}"
            );
        }
    }
}

#[test]
fn adding_a_site_does_not_disturb_existing_ones() {
    // §2: "the integration of additional systems ... does not cause further
    // problems affecting the already integrated existing database systems".
    // Run the same two-site program on a 2-site and on a 5-site federation;
    // the untouched sites see zero traffic and identical outcomes.
    for protocol in ProtocolKind::ALL {
        let small = loaded(protocol, 2);
        let large = loaded(protocol, 5);
        let program = spread_program(2);
        let a = small.run_transaction(&program).unwrap();
        let b = large.run_transaction(&program).unwrap();
        assert_eq!(a.outcome, b.outcome, "{protocol}");
        assert_eq!(a.messages, b.messages, "{protocol}: traffic changed");
        let touched: BTreeSet<SiteId> = large
            .trace()
            .entries()
            .iter()
            .flat_map(|e| [e.envelope.from, e.envelope.to])
            .filter(|s| !s.is_central())
            .collect();
        assert_eq!(
            touched,
            BTreeSet::from([SiteId::new(1), SiteId::new(2)]),
            "{protocol}: uninvolved sites saw traffic"
        );
    }
}

#[test]
fn per_transaction_traffic_scales_linearly_with_participants() {
    for protocol in ProtocolKind::ALL {
        let fed = loaded(protocol, 4);
        let two = fed.run_transaction(&spread_program(2)).unwrap().messages;
        let four = fed.run_transaction(&spread_program(4)).unwrap().messages;
        assert_eq!(four, two * 2, "{protocol}: {two} vs {four}");
    }
}
