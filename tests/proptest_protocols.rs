//! Property tests over the protocol machinery.
//!
//! * The coordinator state machine keeps its invariants under *arbitrary*
//!   event sequences (duplicated, reordered, stray sites) — exactly the
//!   environment a lossy retransmitting network produces.
//! * The sealed 2PL engine agrees with the reference model over random
//!   sequential transaction mixes, including aborts.
//! * The lock table never grants incompatible modes and never loses a
//!   waiter, under random request/release interleavings.

use amc::core::{CoordAction, CoordEvent, Coordinator};
use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::lock::{LockTable, PageMode};
use amc::types::{
    GlobalTxnId, GlobalVerdict, LocalVote, ObjectId, Operation, ProtocolKind, SiteId, Value,
};
use amc::verify::ModelDb;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::TwoPhaseCommit),
        Just(ProtocolKind::CommitAfter),
        Just(ProtocolKind::CommitBefore),
    ]
}

fn arb_event(max_site: u32) -> impl Strategy<Value = CoordEvent> {
    prop_oneof![
        (1..=max_site, any::<bool>()).prop_map(|(s, ready)| CoordEvent::Vote {
            site: SiteId::new(s),
            vote: if ready {
                LocalVote::Ready
            } else {
                LocalVote::Aborted
            },
        }),
        (1..=max_site).prop_map(|s| CoordEvent::Finished {
            site: SiteId::new(s)
        }),
        Just(CoordEvent::Timer),
    ]
}

fn programs(sites: u32) -> BTreeMap<SiteId, Vec<Operation>> {
    (1..=sites)
        .map(|s| {
            (
                SiteId::new(s),
                vec![Operation::Increment {
                    obj: ObjectId::new(u64::from(s)),
                    delta: 1,
                }],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coordinator invariants under arbitrary (even nonsensical) event
    /// streams: at most one `Decided`, at most one `Done`, `Done` implies
    /// `Decided` with the same verdict, no actions after `Done`, and no
    /// message is ever addressed to a non-participant.
    #[test]
    fn coordinator_invariants_hold_under_event_fuzz(
        protocol in arb_protocol(),
        sites in 1u32..4,
        events in proptest::collection::vec(arb_event(5), 0..40),
    ) {
        let mut c = Coordinator::new(GlobalTxnId::new(1), protocol, programs(sites));
        let mut decided: Option<GlobalVerdict> = None;
        let mut done: Option<GlobalVerdict> = None;
        let check = |actions: Vec<CoordAction>, done: &mut Option<GlobalVerdict>, decided: &mut Option<GlobalVerdict>| {
            for a in actions {
                match a {
                    CoordAction::Decided(v) => {
                        prop_assert!(decided.is_none(), "decided twice");
                        *decided = Some(v);
                    }
                    CoordAction::Done(v) => {
                        prop_assert!(done.is_none(), "done twice");
                        prop_assert_eq!(Some(v), *decided, "done without/against decision");
                        *done = Some(v);
                    }
                    CoordAction::Send { site, .. } => {
                        prop_assert!(site.raw() >= 1 && site.raw() <= sites,
                            "message to non-participant {site}");
                    }
                }
            }
            Ok(())
        };
        check(c.on_event(CoordEvent::Start), &mut done, &mut decided)?;
        for e in events {
            let was_done = c.is_done();
            let actions = c.on_event(e);
            if was_done {
                prop_assert!(actions.is_empty(), "actions after done: {actions:?}");
            }
            check(actions, &mut done, &mut decided)?;
        }
        if let (Some(d), Some(v)) = (done, c.verdict()) {
            prop_assert_eq!(d, v);
        }
    }

    /// A clean run (every site votes ready, every finish acknowledged)
    /// always terminates with a commit, for every protocol.
    #[test]
    fn coordinator_clean_run_commits(protocol in arb_protocol(), sites in 1u32..5) {
        let mut c = Coordinator::new(GlobalTxnId::new(1), protocol, programs(sites));
        let mut queue: Vec<CoordEvent> = vec![CoordEvent::Start];
        let mut steps = 0;
        while let Some(e) = queue.pop() {
            steps += 1;
            prop_assert!(steps < 1000, "protocol does not terminate");
            for a in c.on_event(e) {
                if let CoordAction::Send { site, payload } = a {
                    // A perfectly obedient participant.
                    use amc::net::Payload;
                    match payload {
                        Payload::Submit { .. } | Payload::Prepare { .. } => {
                            queue.push(CoordEvent::Vote { site, vote: LocalVote::Ready });
                        }
                        Payload::Decision { .. } | Payload::Redo { .. } | Payload::Undo { .. } => {
                            queue.push(CoordEvent::Finished { site });
                        }
                        // Votes/acks flow the other way, and the Paxos
                        // payloads are spoken by the federation layer, never
                        // by the coordinator FSM itself.
                        _ => unreachable!(),
                    }
                }
            }
        }
        prop_assert!(c.is_done());
        prop_assert_eq!(c.verdict(), Some(GlobalVerdict::Commit));
    }

    /// Engine vs model: random sequential transactions (some aborted)
    /// leave the sealed 2PL engine and the reference model in identical
    /// states.
    #[test]
    fn tpl_engine_agrees_with_model(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..5, 1u64..8, -20i64..20), 1..6),
                any::<bool>(), // commit?
            ),
            1..25,
        ),
    ) {
        let engine = TwoPLEngine::new(TplConfig::default());
        let initial: Vec<(ObjectId, Value)> =
            (1..=4u64).map(|i| (ObjectId::new(i), Value::counter(100))).collect();
        engine.load(initial.clone()).unwrap();
        let mut model = ModelDb::with(initial);

        for (ops, commit) in txns {
            let t = engine.begin().unwrap();
            let mut model_txn = model.clone();
            for (kind, key, x) in ops {
                let obj = ObjectId::new(key);
                let op = match kind {
                    0 => Operation::Read { obj },
                    1 => Operation::Write { obj, value: Value::counter(x) },
                    2 => Operation::Increment { obj, delta: x },
                    3 => Operation::Insert { obj, value: Value::counter(x) },
                    _ => Operation::Delete { obj },
                };
                let engine_result = engine.execute(t, &op);
                let model_result = model_txn.apply(&op);
                // Logical outcomes must agree op by op.
                prop_assert_eq!(
                    engine_result.is_ok(),
                    model_result.is_ok(),
                    "divergence on {}", op
                );
                if let (Ok(a), Ok(b)) = (engine_result, model_result) {
                    prop_assert_eq!(a, b);
                }
                // Logical failures do not abort; both sides continue.
            }
            if commit {
                engine.commit(t).unwrap();
                model = model_txn;
            } else {
                engine
                    .abort(t, amc::types::AbortReason::Intended)
                    .unwrap();
                // model unchanged
            }
            prop_assert_eq!(&engine.dump().unwrap(), model.state());
        }
    }

    /// Lock-table soundness under random single-threaded interleavings:
    /// never two incompatible grants; when everything is released, the
    /// table drains completely.
    #[test]
    fn lock_table_soundness(
        script in proptest::collection::vec((1u64..6, 0u32..4, any::<bool>(), any::<bool>()), 1..60),
    ) {
        let mut table: LockTable<u32, u64, PageMode> = LockTable::new();
        let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (txn, resource, exclusive, release) in script {
            if release {
                table.release_all(txn);
                live.remove(&txn);
            } else {
                let mode = if exclusive { PageMode::Exclusive } else { PageMode::Shared };
                table.request(txn, resource, mode);
                live.insert(txn);
            }
            table.check_invariants().map_err(TestCaseError::fail)?;
            // Deadlock victims must always be live waiters.
            for v in table.detect_deadlock_victims() {
                prop_assert!(live.contains(&v));
            }
        }
        for t in live {
            table.release_all(t);
        }
        prop_assert_eq!(table.granted_count(), 0, "locks leaked");
    }
}
