//! Regression suite for the sharded router's **online reconfiguration**.
//!
//! Three guarantees are pinned:
//!
//! 1. **Chaos conservation** — a nemesis kill landing inside the data
//!    migration of a mid-workload site retirement cannot lose or
//!    duplicate a single object, and no transaction is left open.
//! 2. **Seeded plans execute** — every schedule drawn by
//!    `amc::sim::generate_reconfig` (adds, removes, removes-with-kill)
//!    runs to completion against a live router with the conservation
//!    oracle checked after every step.
//! 3. **Per-seed determinism** — replaying a seed reproduces the same
//!    final fleet, epoch, and object state, byte for byte.

use amc::core::{coord_slot_of, TxnOutcome};
use amc::net::marker::is_marker;
use amc::net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc::shard::{ShardRouter, SiteChange};
use amc::sim::{generate_reconfig, ReconfigConfig, ReconfigStep};
use amc::types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PER_OBJ: i64 = 100;
const OBJS_PER_SITE: u64 = 8;

fn obj(site: u32, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + idx)
}

/// Sum-neutral transfer between two nominal sites.
fn transfer(from: u32, to: u32, idx: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, idx),
                delta: -1,
            }],
        ),
        (
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, idx),
                delta: 1,
            }],
        ),
    ])
}

fn loaded_router(coordinators: u32, sites: u32) -> Arc<ShardRouter> {
    let router = ShardRouter::in_process(
        coordinators,
        sites,
        ProtocolKind::TwoPhaseCommit,
        Duration::ZERO,
    )
    .expect("build router");
    for s in 1..=sites {
        let data: Vec<(ObjectId, Value)> = (0..OBJS_PER_SITE)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        router.load_site(SiteId::new(s), &data).expect("load");
    }
    Arc::new(router)
}

/// The user-visible state of the whole fleet: every non-marker object of
/// every member site, plus the fleet's epoch and membership. Two runs of
/// the same seed must produce identical fingerprints.
fn fingerprint(router: &ShardRouter) -> (u64, Vec<SiteId>, BTreeMap<(SiteId, ObjectId), i64>) {
    let mut objects = BTreeMap::new();
    let sites = router.map().sites();
    for &site in &sites {
        match router
            .fleet()
            .admin(site, AdminRequest::Dump)
            .expect("dump")
        {
            AdminReply::Dump(d) => {
                for (o, v) in d {
                    if !is_marker(o) {
                        objects.insert((site, o), v.counter);
                    }
                }
            }
            other => panic!("unexpected admin reply {other:?}"),
        }
    }
    (router.epoch(), sites, objects)
}

/// The conservation oracle, checked between every plan step.
fn assert_conserved(router: &ShardRouter, sum0: i64, count0: usize, context: &str) {
    assert_eq!(router.user_sum().expect("sum"), sum0, "sum drift {context}");
    assert_eq!(
        router.user_object_count().expect("count"),
        count0,
        "object count drift {context}"
    );
    assert_eq!(
        router.pending_obligations(),
        0,
        "open transactions {context}"
    );
    let epoch = router.epoch() as i64;
    for site in router.map().sites() {
        assert_eq!(
            router.site_epoch(site).expect("epoch"),
            epoch,
            "{site} disagrees on the epoch {context}"
        );
    }
}

/// Apply one generated step to a live router, wiring the plan's kill into
/// the fleet's down-set so the outage lands inside the migration window.
fn apply_step(router: &Arc<ShardRouter>, step: ReconfigStep) {
    match step {
        ReconfigStep::AddSite { site } => {
            router
                .reconfigure(SiteChange::Add { site })
                .expect("add site");
        }
        ReconfigStep::RemoveSite { old, successor } => {
            router
                .reconfigure(SiteChange::Remove { old, successor })
                .expect("remove site");
        }
        ReconfigStep::RemoveSiteWithKill {
            old,
            successor,
            victim,
            revive_after_ms,
        } => {
            router.fleet().set_down(victim, true);
            let reviver = std::thread::spawn({
                let router = Arc::clone(router);
                move || {
                    std::thread::sleep(Duration::from_millis(revive_after_ms));
                    router.fleet().set_down(victim, false);
                }
            });
            router
                .reconfigure(SiteChange::Remove { old, successor })
                .expect("remove site under kill");
            reviver.join().expect("reviver");
        }
    }
}

/// Run a seeded plan: interleave the workload (single driver thread, so
/// the transaction sequence is deterministic) with the plan's steps at
/// their transaction-count offsets.
fn run_plan(
    cfg: &ReconfigConfig,
    seed: u64,
) -> (u64, Vec<SiteId>, BTreeMap<(SiteId, ObjectId), i64>) {
    let plan = generate_reconfig(cfg, seed);
    let router = loaded_router(2, cfg.sites);
    let sum0 = router.user_sum().expect("sum");
    let count0 = router.user_object_count().expect("count");

    let mut events = plan.events().iter().peekable();
    for i in 0..cfg.txns {
        while events.peek().is_some_and(|ev| ev.after_txns <= i) {
            let ev = events.next().expect("peeked");
            apply_step(&router, ev.step);
            assert_conserved(
                &router,
                sum0,
                count0,
                &format!("(seed {seed}, step {ev:?})"),
            );
        }
        let p = transfer(
            (i % u64::from(cfg.sites)) as u32 + 1,
            ((i + 1) % u64::from(cfg.sites)) as u32 + 1,
            i % OBJS_PER_SITE,
        );
        let report = router.run(&p).expect("workload transaction");
        assert_eq!(
            report.outcome,
            TxnOutcome::Committed,
            "single-threaded workload cannot conflict (seed {seed}, txn {i})"
        );
    }
    for ev in events {
        apply_step(&router, ev.step);
        assert_conserved(
            &router,
            sum0,
            count0,
            &format!("(seed {seed}, tail {ev:?})"),
        );
    }
    assert_conserved(&router, sum0, count0, &format!("(seed {seed}, end)"));
    fingerprint(&router)
}

/// A nemesis kill of the migration's *target* mid-retirement, with a
/// concurrent workload hammering the router: nothing lost, nothing
/// duplicated, nobody left open.
#[test]
fn kill_during_migration_conserves_state_under_load() {
    let router = loaded_router(2, 3);
    let sum0 = router.user_sum().expect("sum");
    let count0 = router.user_object_count().expect("count");

    let stop = AtomicBool::new(false);
    let next = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let p = transfer((i % 3) as u32 + 1, ((i + 1) % 3) as u32 + 1, i % 8);
                    match router.run(&p) {
                        Ok(r) if r.outcome == TxnOutcome::Committed => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        while committed.load(Ordering::Relaxed) < 20 {
            std::thread::sleep(Duration::from_millis(1));
        }
        router
            .reconfigure(SiteChange::Add {
                site: SiteId::new(4),
            })
            .expect("add site");

        // The kill targets the migration's own write target — the
        // harshest victim — and revives inside the retry deadline.
        router.fleet().set_down(SiteId::new(4), true);
        let reviver = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(15));
            router.fleet().set_down(SiteId::new(4), false);
        });
        let report = router
            .reconfigure(SiteChange::Remove {
                old: SiteId::new(1),
                successor: SiteId::new(4),
            })
            .expect("remove under kill");
        reviver.join().expect("reviver");
        assert_eq!(report.migrated as u64, OBJS_PER_SITE);
        assert!(
            report.retries > 0,
            "the kill must have landed inside the migration window"
        );

        while committed.load(Ordering::Relaxed) < 60 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "the gate shields clients"
    );
    assert_conserved(&router, sum0, count0, "(handwritten chaos scenario)");
    assert_eq!(router.epoch(), 3);
    assert!(!router.fleet().is_member(SiteId::new(1)));
}

/// Every seeded schedule — adds, removes, and removes-with-kill —
/// executes against a live router with conservation checked step by step.
#[test]
fn seeded_reconfig_plans_execute_with_conservation() {
    let cfg = ReconfigConfig {
        sites: 3,
        spares: 2,
        txns: 60,
        events: 3,
        kill_probability: 0.7,
    };
    for seed in 0..4 {
        let plan = generate_reconfig(&cfg, seed);
        assert!(!plan.is_empty(), "seed {seed} drew an empty plan");
        run_plan(&cfg, seed);
    }
}

/// Replaying a seed reproduces the identical final fleet, epoch, and
/// per-site object state.
#[test]
fn same_seed_reproduces_the_same_final_state() {
    let cfg = ReconfigConfig {
        sites: 3,
        spares: 2,
        txns: 40,
        events: 3,
        kill_probability: 0.5,
    };
    let a = run_plan(&cfg, 7);
    let b = run_plan(&cfg, 7);
    assert_eq!(a, b, "same seed, same final state");
}

/// Routing stays slot-correct across a reconfiguration: every report's
/// transaction id sits in its owning coordinator's disjoint range, both
/// before and after the topology change.
#[test]
fn ownership_routing_survives_reconfiguration() {
    let router = loaded_router(3, 3);
    let check = |label: &str| {
        for i in 0..12u64 {
            let p = transfer((i % 3) as u32 + 1, ((i + 1) % 3) as u32 + 1, i % 8);
            let owner = router.owner_of(&p);
            let report = router.run(&p).expect("run");
            assert_eq!(
                coord_slot_of(report.gtx),
                owner,
                "{label}: txn id outside its owner's range"
            );
        }
    };
    check("before");
    router
        .reconfigure(SiteChange::Add {
            site: SiteId::new(4),
        })
        .expect("add");
    router
        .reconfigure(SiteChange::Remove {
            old: SiteId::new(2),
            successor: SiteId::new(4),
        })
        .expect("remove");
    check("after");
}
