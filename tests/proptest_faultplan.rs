//! Property tests over the nemesis: any schedule the seeded generator calls
//! valid must leave the bank workload conservation-safe under every
//! protocol, and the shrinker must never manufacture an invalid plan.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::{generate_faults, shrink_faults, FaultPlan, NemesisConfig};
use amc::types::{ObjectId, Operation, SimDuration, SiteId, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

const OBJS: u64 = 5;
const PER_OBJ: i64 = 100;

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::TwoPhaseCommit),
        Just(ProtocolKind::CommitAfter),
        Just(ProtocolKind::CommitBefore),
    ]
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Run the disjoint-transfer bank workload under `plan`; return the final
/// total balance and how many transactions were still unresolved.
fn run_bank(protocol: ProtocolKind, plan: FaultPlan, seed: u64) -> (i64, usize) {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
    cfg.seed = seed;
    cfg.faults = plan;
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(30_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let managers = fed.managers();
    let programs = (0..OBJS)
        .map(|i| {
            (
                SimDuration::from_millis(i * 20),
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i),
                            delta: -10,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i),
                            delta: 10,
                        }],
                    ),
                ]),
            )
        })
        .collect();
    let report = fed.run(programs);
    let dumps = SimFederation::dumps(&managers);
    let total = (1..=2u32)
        .flat_map(|s| (0..OBJS).map(move |i| (s, i)))
        .map(|(s, i)| dumps[&SiteId::new(s)][&obj(s, i)].counter)
        .sum();
    (total, report.unresolved.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Conservation under chaos: whatever composed schedule the generator
    /// emits, money is neither created nor destroyed, and every transfer
    /// resolves once the faults are over.
    #[test]
    fn generated_plans_preserve_bank_conservation(
        protocol in arb_protocol(),
        seed in any::<u64>(),
    ) {
        let plan = generate_faults(&NemesisConfig::default(), seed);
        prop_assert!(plan.validate().is_ok(), "seed {}: {:?}", seed, plan.events());
        let (total, unresolved) = run_bank(protocol, plan.clone(), seed);
        prop_assert_eq!(
            total,
            2 * OBJS as i64 * PER_OBJ,
            "{} seed {}: conservation broken by {:?}",
            protocol, seed, plan.events()
        );
        prop_assert_eq!(
            unresolved, 0,
            "{} seed {}: unresolved transfers under {:?}",
            protocol, seed, plan.events()
        );
    }

    /// Every prefix of a generated plan is itself a valid schedule — the
    /// property the shrinker's prefix pass relies on.
    #[test]
    fn generated_plan_prefixes_stay_valid(seed in any::<u64>()) {
        let plan = generate_faults(&NemesisConfig::default(), seed);
        for n in 0..=plan.len() {
            prop_assert!(plan.truncated(n).validate().is_ok(), "prefix {} of seed {}", n, seed);
        }
    }

    /// The shrinker only ever returns valid plans, no matter how arbitrary
    /// (even non-monotone) the reproduction predicate is.
    #[test]
    fn shrinker_output_is_always_valid(seed in any::<u64>(), mask in any::<u64>()) {
        let plan = generate_faults(&NemesisConfig::default(), seed);
        let pred = |p: &FaultPlan| (mask >> (p.len() % 64)) & 1 == 1;
        let shrunk = shrink_faults(&plan, pred);
        prop_assert!(shrunk.validate().is_ok(), "seed {} mask {:#x}", seed, mask);
    }
}
