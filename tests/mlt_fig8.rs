//! F6 — the Fig. 8 scenario: two-level transactions with commuting
//! increments.
//!
//! The figure's setup: T1 increments x and y, T2 increments x; x and y live
//! on the *same page* p. Multi-level transactions allow the interleaving
//! because the L1 increment locks are compatible and the L0 page locks are
//! released at the end of each short L0 transaction — a single-level
//! system would hold the page lock to the end of the whole transaction.

use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::lock::{LockOutcome, LockTable, PageMode, SemanticMode};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// The lock-level core of Fig. 8: increment locks on x interleave, page
/// locks on p are held only per L0 transaction.
#[test]
fn fig8_lock_level_reenactment() {
    // L1: both transactions hold increment locks on x simultaneously.
    let mut l1: LockTable<u64, u32, SemanticMode> = LockTable::new();
    assert_eq!(
        l1.request(1, 1, SemanticMode::Increment),
        LockOutcome::Granted
    );
    assert_eq!(
        l1.request(2, 1, SemanticMode::Increment),
        LockOutcome::Granted
    );
    // And T1's increment lock on y too.
    assert_eq!(
        l1.request(1, 2, SemanticMode::Increment),
        LockOutcome::Granted
    );

    // L0: the page transactions take turns on page p, releasing at each
    // L0 end-of-transaction — T2's page access happens *between* T1's.
    let mut l0: LockTable<u32, u64, PageMode> = LockTable::new();
    assert_eq!(l0.request(11, 7, PageMode::Exclusive), LockOutcome::Granted); // T1's Incr(x) on p
    l0.release_all(11); // EOT(L0)
    assert_eq!(l0.request(21, 7, PageMode::Exclusive), LockOutcome::Granted); // T2's Incr(x) on p
    l0.release_all(21);
    assert_eq!(l0.request(12, 7, PageMode::Exclusive), LockOutcome::Granted); // T1's Incr(y) on p
    l0.release_all(12);

    // A single-level transaction would still hold p: simulate by keeping
    // the grant — the second transaction must queue.
    let mut flat: LockTable<u32, u64, PageMode> = LockTable::new();
    assert_eq!(
        flat.request(1, 7, PageMode::Exclusive),
        LockOutcome::Granted
    );
    assert_eq!(flat.request(2, 7, PageMode::Exclusive), LockOutcome::Queued);
}

/// End-to-end Fig. 8 under commit-before: two concurrent global increment
/// transactions on the same objects both commit, and the L1 lock manager
/// records zero rejections.
#[test]
fn fig8_end_to_end_interleaving() {
    let fed = Federation::new(FederationConfig::uniform(1, ProtocolKind::CommitBefore));
    fed.load_site(
        SiteId::new(1),
        &[
            (obj(1, 0), Value::counter(0)),
            (obj(1, 1), Value::counter(0)),
        ],
    )
    .unwrap();
    let fed = Arc::new(fed);

    // T1: Incr(x), Incr(y); T2: Incr(x) — Fig. 8 verbatim.
    let t1 = BTreeMap::from([(
        SiteId::new(1),
        vec![
            Operation::Increment {
                obj: obj(1, 0),
                delta: 1,
            },
            Operation::Increment {
                obj: obj(1, 1),
                delta: 1,
            },
        ],
    )]);
    let t2 = BTreeMap::from([(
        SiteId::new(1),
        vec![Operation::Increment {
            obj: obj(1, 0),
            delta: 1,
        }],
    )]);

    let mut handles = Vec::new();
    for program in [t1, t2] {
        let fed = fed.clone();
        handles.push(std::thread::spawn(move || {
            fed.run_transaction(&program).unwrap().outcome
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), TxnOutcome::Committed);
    }
    let dump = fed.dumps().unwrap().remove(&SiteId::new(1)).unwrap();
    assert_eq!(dump[&obj(1, 0)], Value::counter(2), "both increments of x");
    assert_eq!(dump[&obj(1, 1)], Value::counter(1));
    assert_eq!(fed.l1_stats().victims, 0, "no L1 deadlocks");
}

/// The recovery half of §4.1's Fig. 8 discussion: undoing T1 by restoring
/// the *page* would destroy T2's increment; undoing by inverse action
/// (decrement) preserves it.
#[test]
fn fig8_inverse_action_undo_preserves_concurrent_increment() {
    let engine = TwoPLEngine::new(TplConfig::default());
    engine
        .load([(ObjectId::new(1), Value::counter(0))])
        .unwrap();

    // T1 increments x and commits; T2 increments x and commits.
    let t1 = engine.begin().unwrap();
    engine
        .execute(
            t1,
            &Operation::Increment {
                obj: ObjectId::new(1),
                delta: 5,
            },
        )
        .unwrap();
    engine.commit(t1).unwrap();
    let t2 = engine.begin().unwrap();
    engine
        .execute(
            t2,
            &Operation::Increment {
                obj: ObjectId::new(1),
                delta: 7,
            },
        )
        .unwrap();
    engine.commit(t2).unwrap();

    // Undo T1 by inverse action (a fresh decrement transaction), as the
    // multi-level recovery prescribes.
    let undo = engine.begin().unwrap();
    engine
        .execute(
            undo,
            &Operation::Increment {
                obj: ObjectId::new(1),
                delta: -5,
            },
        )
        .unwrap();
    engine.commit(undo).unwrap();

    // T2's increment survives — a before-image (page-state) undo of T1
    // would have set the counter back to 0 and lost it.
    assert_eq!(engine.dump().unwrap()[&ObjectId::new(1)], Value::counter(7));
}
