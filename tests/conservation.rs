//! Invariant-preservation soak: balanced transfers under contention, with
//! intended aborts mixed in, across every protocol. The federation-wide
//! total is a conserved quantity; any double-apply, lost update, missed
//! undo or partial commit shows up as drift.

use amc::core::{Federation, FederationConfig, ProtocolKind};
use amc::net::marker::is_marker;
use amc::types::{Operation, SiteId};
use amc::workload::{TransferGen, TransferSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> TransferSpec {
    TransferSpec {
        sites: 3,
        accounts_per_site: 64,
        zipf_theta: 0.8, // hot accounts: force interleavings
        max_amount: 25,
        bad_beneficiary_prob: 0.1,
    }
}

fn total(fed: &Federation) -> i64 {
    fed.dumps()
        .unwrap()
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

#[test]
fn transfers_conserve_money_under_every_protocol() {
    let spec = spec();
    for protocol in ProtocolKind::ALL {
        let mut cfg = FederationConfig::uniform(spec.sites, protocol);
        cfg.tpl.lock_timeout = Duration::from_millis(100);
        cfg.l1_timeout = Duration::from_millis(300);
        let fed = Federation::new(cfg);
        for s in 1..=spec.sites {
            let site = SiteId::new(s);
            let data: Vec<_> = (0..spec.accounts_per_site)
                .map(|i| {
                    (
                        amc::workload::object(site, i),
                        amc::types::Value::counter(1_000),
                    )
                })
                .collect();
            fed.load_site(site, &data).unwrap();
        }
        let fed = Arc::new(fed);
        let before = total(&fed);

        let mut gen = TransferGen::new(spec.clone(), 0xC0);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = gen
            .programs(200)
            .into_iter()
            .map(|p| (p.per_site, p.intends_abort))
            .collect();
        let metrics = fed.run_concurrent(programs, 6);

        assert_eq!(
            total(&fed),
            before,
            "{protocol}: money drifted: {metrics:?}"
        );
        assert!(metrics.committed > 0, "{protocol}");
        assert!(
            metrics.aborted_intended > 0,
            "{protocol}: the abort path must have been exercised"
        );
        // Erroneous aborts are retried away by the driver; intended ones
        // must stay.
        assert_eq!(
            metrics.committed + metrics.aborted_intended + metrics.aborted_erroneous,
            200 + metrics.aborted_erroneous,
            "{protocol}: every program reached a final outcome"
        );
    }
}

#[test]
fn heterogeneous_conservation_under_portable_protocols() {
    let spec = spec();
    for protocol in [ProtocolKind::CommitAfter, ProtocolKind::CommitBefore] {
        let mut cfg = FederationConfig::heterogeneous(spec.sites, protocol);
        cfg.tpl.lock_timeout = Duration::from_millis(100);
        cfg.l1_timeout = Duration::from_millis(300);
        let fed = Federation::new(cfg);
        for s in 1..=spec.sites {
            let site = SiteId::new(s);
            let data: Vec<_> = (0..spec.accounts_per_site)
                .map(|i| {
                    (
                        amc::workload::object(site, i),
                        amc::types::Value::counter(1_000),
                    )
                })
                .collect();
            fed.load_site(site, &data).unwrap();
        }
        let fed = Arc::new(fed);
        let before = total(&fed);
        let mut gen = TransferGen::new(spec.clone(), 0xC1);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = gen
            .programs(150)
            .into_iter()
            .map(|p| (p.per_site, p.intends_abort))
            .collect();
        let metrics = fed.run_concurrent(programs, 6);
        assert_eq!(total(&fed), before, "{protocol}: {metrics:?}");
    }
}
