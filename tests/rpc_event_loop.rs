//! The event-loop runtime and the framing/leak fixes it rides with.
//!
//! Four families:
//!
//! 1. **Slow-writer framing** — a client dribbling a valid frame one
//!    byte per read-timeout window must still be served by the blocking
//!    [`SiteServer`]. The old loop used `read_exact` under a 100 ms
//!    deadline: the first timeout mid-frame discarded the consumed
//!    bytes, desyncing the stream and killing a healthy connection.
//! 2. **Handle churn** — hundreds of sequential short-lived connections
//!    must not leave hundreds of retained `JoinHandle`s behind; the
//!    accept loop reaps finished handles.
//! 3. **Pipelining on the event loop** — many requests written
//!    back-to-back on one connection all get answered, matched by
//!    request id regardless of completion order; flooding past the
//!    per-connection in-flight bound is answered with explicit
//!    `BufferExhausted` load-shed replies, not queueing or collapse.
//! 4. **End-to-end over mux** — the full coordinator stack over
//!    [`TcpTransport::new_mux`] against [`EventServer`]s: concurrent
//!    transfer workloads commit, conserve the global sum, and survive a
//!    site-server restart in place.

use amc::core::{submit_mode_for, Federation, FederationConfig, TxnOutcome};
use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::net::comm::EngineHandle;
use amc::net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc::net::{LocalCommManager, Payload, SubmitMode};
use amc::obs::ObsSink;
use amc::rpc::wire::{read_frame, write_frame};
use amc::rpc::{
    EventServer, Frame, MuxClient, RetryPolicy, SiteServer, TcpTransport, MAX_IN_FLIGHT_PER_CONN,
};
use amc::types::{AmcError, GlobalTxnId, ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn manager(site: SiteId, lock_timeout: Duration) -> Arc<LocalCommManager> {
    let cfg = TplConfig {
        lock_timeout,
        deadlock_check: Duration::from_millis(1),
        ..TplConfig::default()
    };
    let engine = Arc::new(TwoPLEngine::new(cfg));
    Arc::new(LocalCommManager::new(
        site,
        EngineHandle::Preparable(engine),
    ))
}

fn read_until(stream: &mut TcpStream, deadline: Instant) -> Frame {
    loop {
        match read_frame(stream) {
            Ok(f) => return f,
            Err(e) if e.is_timeout() && Instant::now() < deadline => continue,
            Err(e) => panic!("read: {e}"),
        }
    }
}

// ------------------------------------------------- slow-writer framing --

/// A frame fed one byte per (server) read-timeout window must parse; the
/// consumed prefix survives every timeout tick in between.
#[test]
fn blocking_server_survives_one_byte_per_timeout_window() {
    let site = SiteId::new(1);
    let srv = SiteServer::spawn(
        site,
        manager(site, Duration::from_millis(200)),
        SubmitMode::CommitBefore,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");

    let mut conn = TcpStream::connect(srv.addr()).unwrap();
    let bytes = amc::rpc::wire::encode_frame(&Frame::AdminRequest {
        req_id: 9,
        req: AdminRequest::Ping,
    });
    // One byte per 110 ms: every byte lands in a different 100 ms server
    // read window, so the server sees ~as many timeouts as bytes while
    // the frame accumulates.
    for b in &bytes {
        conn.write_all(std::slice::from_ref(b)).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(110));
    }
    conn.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let reply = read_until(&mut conn, Instant::now() + Duration::from_secs(5));
    assert_eq!(
        reply,
        Frame::AdminReply {
            req_id: 9,
            reply: AdminReply::Pong
        }
    );
    srv.shutdown();
}

// ----------------------------------------------------------- churn leak --

/// Several hundred sequential connections must not accumulate several
/// hundred retained connection-thread handles.
#[test]
fn connection_churn_keeps_retained_handles_bounded() {
    let site = SiteId::new(1);
    let srv = SiteServer::spawn(
        site,
        manager(site, Duration::from_millis(200)),
        SubmitMode::CommitBefore,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");

    const CHURN: usize = 300;
    for i in 0..CHURN {
        let mut conn = TcpStream::connect(srv.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        write_frame(
            &mut conn,
            &Frame::AdminRequest {
                req_id: i as u64,
                req: AdminRequest::Ping,
            },
        )
        .unwrap();
        let reply = read_until(&mut conn, Instant::now() + Duration::from_secs(5));
        assert_eq!(reply.req_id(), i as u64);
        // Dropping `conn` closes it; its server thread finishes within a
        // read-timeout tick and the next accept reaps the handle.
    }
    // Give the last few threads a moment to notice their sockets closed,
    // then churn one more connection so the accept loop reaps.
    std::thread::sleep(Duration::from_millis(300));
    let _probe = TcpStream::connect(srv.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let retained = srv.connection_threads();
    assert!(
        retained < CHURN / 4,
        "{retained} connection-thread handles retained after churning {CHURN} connections"
    );
    srv.shutdown();
}

// ------------------------------------------------ event-loop pipelining --

/// N requests written back-to-back on one connection all come back,
/// matched by request id, regardless of the order the workers finish.
#[test]
fn event_server_answers_pipelined_requests_by_id() {
    let site = SiteId::new(1);
    let srv = EventServer::spawn(
        site,
        manager(site, Duration::from_millis(200)),
        SubmitMode::CommitBefore,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");

    let mut conn = TcpStream::connect(srv.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    // Fewer than the in-flight bound, so none shed. A mix of instant
    // pings and real submits keeps worker completion order honest.
    const N: u64 = 32;
    let mut batch = Vec::new();
    for i in 0..N {
        let frame = if i.is_multiple_of(2) {
            Frame::AdminRequest {
                req_id: 1000 + i,
                req: AdminRequest::Ping,
            }
        } else {
            Frame::Request {
                req_id: 1000 + i,
                payload: Payload::Submit {
                    gtx: GlobalTxnId::new(i),
                    ops: vec![Operation::Read { obj: obj(1, 0) }],
                },
            }
        };
        batch.extend_from_slice(&amc::rpc::wire::encode_frame(&frame));
    }
    conn.write_all(&batch).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < N as usize {
        let reply = read_until(&mut conn, deadline);
        assert!(
            (1000..1000 + N).contains(&reply.req_id()),
            "reply to unknown id {}",
            reply.req_id()
        );
        assert!(seen.insert(reply.req_id()), "duplicate reply");
        match reply {
            Frame::AdminReply { .. } | Frame::Reply { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(srv.stats().load_sheds, 0, "nothing should have shed");
    srv.shutdown();
}

/// Flooding one connection far past the in-flight bound while every
/// worker is wedged behind a lock produces explicit `BufferExhausted`
/// load-shed replies for the excess — the server answers instead of
/// queueing without bound.
#[test]
fn event_server_sheds_load_past_the_in_flight_bound() {
    let site = SiteId::new(1);
    // Two-phase mode: a submit executes and *holds its locks* until the
    // decision, so one committed-to-lock transaction wedges every later
    // submit on the same object for the whole lock timeout.
    let srv = EventServer::spawn(
        site,
        manager(site, Duration::from_secs(3)),
        SubmitMode::TwoPhase,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");

    let mut conn = TcpStream::connect(srv.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    write_frame(
        &mut conn,
        &Frame::Request {
            req_id: 1,
            payload: Payload::Submit {
                gtx: GlobalTxnId::new(1),
                ops: vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: 1,
                }],
            },
        },
    )
    .unwrap();
    let first = read_until(&mut conn, Instant::now() + Duration::from_secs(5));
    assert!(matches!(first, Frame::Reply { req_id: 1, .. }), "{first:?}");

    // The lock on obj(1,0) is now held. Flood: every one of these blocks
    // a worker (or waits dispatched); past the bound they must shed.
    const FLOOD: u64 = 3 * MAX_IN_FLIGHT_PER_CONN as u64;
    let mut batch = Vec::new();
    for i in 0..FLOOD {
        batch.extend_from_slice(&amc::rpc::wire::encode_frame(&Frame::Request {
            req_id: 100 + i,
            payload: Payload::Submit {
                gtx: GlobalTxnId::new(100 + i),
                ops: vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: 1,
                }],
            },
        }));
    }
    conn.write_all(&batch).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut shed = 0u64;
    let mut answered = 0u64;
    while answered < FLOOD {
        let reply = read_until(&mut conn, deadline);
        answered += 1;
        if matches!(
            reply,
            Frame::ErrorReply {
                error: AmcError::BufferExhausted,
                ..
            }
        ) {
            shed += 1;
        }
    }
    assert!(
        shed > 0,
        "flooding {FLOOD} requests past the {MAX_IN_FLIGHT_PER_CONN} bound shed nothing"
    );
    assert_eq!(srv.stats().load_sheds, shed, "stats disagree with the wire");
    // Unwedge: abort the lock holder so shutdown isn't stuck behind it.
    write_frame(
        &mut conn,
        &Frame::Request {
            req_id: 2,
            payload: Payload::Decision {
                gtx: GlobalTxnId::new(1),
                verdict: amc::types::GlobalVerdict::Abort,
            },
        },
    )
    .unwrap();
    srv.shutdown();
}

/// A peer that floods requests while never reading a single reply must
/// not grow the server's per-connection write buffer without bound: past
/// `MAX_WBUF_BYTES` of unread replies the server closes the connection —
/// and keeps serving everyone else. Mirrors the slow-writer test above,
/// from the other side of the socket.
#[test]
fn event_server_closes_a_stalled_reader_instead_of_buffering_without_bound() {
    let site = SiteId::new(1);
    let mgr = manager(site, Duration::from_millis(200));
    let srv = EventServer::spawn(
        site,
        Arc::clone(&mgr),
        SubmitMode::CommitBefore,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");
    // A large committed state makes every Dump reply big, so a few
    // unread replies overflow the bound even past the kernel's socket
    // buffers.
    let data: Vec<(ObjectId, Value)> = (0..40_000)
        .map(|i| (obj(1, i), Value::counter(i as i64)))
        .collect();
    mgr.handle().engine().bulk_load(&data).unwrap();

    let mut stalled = TcpStream::connect(srv.addr()).unwrap();
    const DUMPS: u64 = 32;
    let mut batch = Vec::new();
    for i in 0..DUMPS {
        batch.extend_from_slice(&amc::rpc::wire::encode_frame(&Frame::AdminRequest {
            req_id: i,
            req: AdminRequest::Dump,
        }));
    }
    stalled.write_all(&batch).unwrap();
    // Never read. The replies pile up server-side until the bound trips.
    let deadline = Instant::now() + Duration::from_secs(30);
    while srv.stats().wbuf_overflows == 0 {
        assert!(
            Instant::now() < deadline,
            "server never shed the stalled reader: {:?}",
            srv.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The stalled connection was closed: draining what the kernel
    // already buffered must end in EOF or a reset, not more replies
    // forever.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = [0u8; 64 * 1024];
    loop {
        match stalled.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    // Everyone else is still served.
    let mut probe = TcpStream::connect(srv.addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    write_frame(
        &mut probe,
        &Frame::AdminRequest {
            req_id: 99,
            req: AdminRequest::Ping,
        },
    )
    .unwrap();
    let reply = read_until(&mut probe, Instant::now() + Duration::from_secs(5));
    assert_eq!(
        reply,
        Frame::AdminReply {
            req_id: 99,
            reply: AdminReply::Pong
        }
    );
    srv.shutdown();
}

// ------------------------------------------------------ mux end-to-end --

/// Hammer the mux client's timeout path: a server whose reply delays
/// straddle the client's request timeout forces constant races between
/// the caller's deadline withdraw and the reader thread's completion.
/// Every call must eventually succeed (retries absorb the genuinely
/// late replies), none may panic, cross replies, or wedge the channel.
#[test]
fn mux_client_survives_short_timeouts_racing_delayed_replies() {
    // A hand-rolled server so the reply delay is controllable: each
    // request is answered from its own thread after a deterministic
    // per-request delay spanning 2..26 ms around the client's 12 ms
    // deadline. Accepts any number of connections so a client redial
    // (poisoned channel) is also served.
    use std::sync::atomic::{AtomicBool, Ordering};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            std::thread::scope(|scope| {
                while !stop.load(Ordering::Relaxed) {
                    let (stream, _) = match listener.accept() {
                        Ok(s) => s,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                        Err(_) => return,
                    };
                    let stop = Arc::clone(&stop);
                    scope.spawn(move || {
                        stream.set_nonblocking(false).unwrap();
                        let write_half =
                            std::sync::Mutex::new(stream.try_clone().expect("clone socket"));
                        let mut read_half = stream;
                        read_half
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .unwrap();
                        std::thread::scope(|replies| loop {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let frame = match amc::rpc::wire::read_frame(&mut read_half) {
                                Ok(f) => f,
                                Err(e) if e.is_timeout() => continue,
                                Err(_) => return,
                            };
                            let req_id = frame.req_id();
                            let write_half = &write_half;
                            replies.spawn(move || {
                                std::thread::sleep(Duration::from_millis(2 + (req_id * 7) % 25));
                                let _ = write_frame(
                                    &mut *write_half.lock().unwrap(),
                                    &Frame::AdminReply {
                                        req_id,
                                        reply: AdminReply::Pong,
                                    },
                                );
                            });
                        });
                    });
                }
            });
        })
    };

    let policy = RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(12),
        max_attempts: 40,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    };
    let client = Arc::new(MuxClient::new(
        SiteId::new(1),
        addr,
        policy,
        ObsSink::disabled(),
    ));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let client = Arc::clone(&client);
            scope.spawn(move || {
                for _ in 0..40 {
                    let reply = client.admin(AdminRequest::Ping).expect("eventually served");
                    assert_eq!(reply, AdminReply::Pong);
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    drop(client); // closes the socket; the connection handler sees EOF
    server.join().unwrap();
}

/// Many threads calling through ONE `MuxClient` — one socket — all get
/// their own answers back.
#[test]
fn mux_client_multiplexes_concurrent_callers() {
    let site = SiteId::new(1);
    let srv = EventServer::spawn(
        site,
        manager(site, Duration::from_millis(500)),
        SubmitMode::CommitBefore,
        "127.0.0.1:0",
        ObsSink::disabled(),
    )
    .expect("bind loopback");

    let client = Arc::new(MuxClient::new(
        site,
        srv.addr(),
        RetryPolicy::default(),
        ObsSink::disabled(),
    ));
    client
        .admin(AdminRequest::Load(vec![(obj(1, 0), Value::counter(0))]))
        .expect("load");

    std::thread::scope(|scope| {
        for t in 0..16u64 {
            let client = Arc::clone(&client);
            scope.spawn(move || {
                for i in 0..20u64 {
                    let gtx = GlobalTxnId::new(1 + t * 100 + i);
                    let reply = client
                        .call(Payload::Submit {
                            gtx,
                            ops: vec![Operation::Increment {
                                obj: obj(1, 0),
                                delta: 1,
                            }],
                        })
                        .expect("submit");
                    match reply {
                        Payload::Vote { gtx: g, vote } => {
                            assert_eq!(g, gtx, "reply crossed to the wrong caller");
                            assert!(vote.is_yes());
                        }
                        other => panic!("unexpected {other}"),
                    }
                }
            });
        }
    });
    // 16 threads × 20 increments over one socket: all applied.
    match client.admin(AdminRequest::Dump).expect("dump") {
        AdminReply::Dump(d) => assert_eq!(d.get(&obj(1, 0)).map(|v| v.counter), Some(320)),
        other => panic!("unexpected {other:?}"),
    }
    // All of that rode exactly one connection.
    assert_eq!(srv.stats().peak_connections, 1);
    srv.shutdown();
}

/// The full coordinator stack over the mux transport against event-loop
/// servers: concurrent transfers commit, the sum is conserved, and a
/// server restart in place is survived.
#[test]
fn federation_over_mux_and_event_servers_conserves_and_survives_restart() {
    const SITES: u32 = 2;
    const OBJS: u64 = 8;
    const PER_OBJ: i64 = 100;
    let protocol = ProtocolKind::TwoPhaseCommit;
    let mode = submit_mode_for(protocol);

    let mut engines = BTreeMap::new();
    let mut managers = BTreeMap::new();
    let mut servers: BTreeMap<SiteId, EventServer> = BTreeMap::new();
    let mut addrs = BTreeMap::new();
    for s in 1..=SITES {
        let site = SiteId::new(s);
        let cfg = TplConfig {
            lock_timeout: Duration::from_millis(200),
            deadlock_check: Duration::from_millis(1),
            ..TplConfig::default()
        };
        let engine = Arc::new(TwoPLEngine::new(cfg));
        let mgr = Arc::new(LocalCommManager::new(
            site,
            EngineHandle::Preparable(Arc::clone(&engine) as _),
        ));
        let srv = EventServer::spawn(
            site,
            Arc::clone(&mgr),
            mode,
            "127.0.0.1:0",
            ObsSink::disabled(),
        )
        .expect("bind loopback");
        addrs.insert(site, srv.addr());
        engines.insert(site, engine);
        managers.insert(site, mgr);
        servers.insert(site, srv);
    }
    let policy = RetryPolicy {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_secs(2),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    };
    let transport = Arc::new(TcpTransport::new_mux(addrs, policy, ObsSink::disabled()));
    assert!(transport.supports_pipelining());
    let fed = Arc::new(Federation::with_transport(
        FederationConfig::uniform(SITES, protocol),
        Arc::clone(&transport) as Arc<dyn FederationTransport>,
    ));
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }

    let run = |base: u64, n: u64| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let fed = Arc::clone(&fed);
                handles.push(scope.spawn(move || {
                    let mut committed = 0u64;
                    for i in 0..n {
                        let k = base + t * n + i;
                        let amt = 1 + (k % 5) as i64;
                        let (a, b) = if k.is_multiple_of(2) {
                            (1u32, 2u32)
                        } else {
                            (2, 1)
                        };
                        let program = BTreeMap::from([
                            (
                                SiteId::new(a),
                                vec![Operation::Increment {
                                    obj: obj(a, k % OBJS),
                                    delta: -amt,
                                }],
                            ),
                            (
                                SiteId::new(b),
                                vec![Operation::Increment {
                                    obj: obj(b, (k + 3) % OBJS),
                                    delta: amt,
                                }],
                            ),
                        ]);
                        for attempt in 0..8 {
                            match fed.run_transaction(&program) {
                                Ok(r) => {
                                    if r.outcome == TxnOutcome::Committed {
                                        committed += 1;
                                    }
                                    break;
                                }
                                Err(_) if attempt < 7 => {
                                    std::thread::sleep(Duration::from_millis(50))
                                }
                                Err(e) => panic!("txn {k} never got through: {e}"),
                            }
                        }
                    }
                    committed
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
    };

    let before = run(0, 8);
    assert!(before > 0, "nothing committed before restart");

    // Restart site 2's server in place: same manager, same port. The mux
    // client must redial through its retry path.
    let site2 = SiteId::new(2);
    let old = servers.remove(&site2).unwrap();
    let addr = old.addr();
    old.shutdown();
    engines[&site2].crash();
    engines[&site2].recover().expect("recovery");
    let srv = EventServer::spawn(
        site2,
        Arc::clone(&managers[&site2]),
        mode,
        &addr.to_string(),
        ObsSink::disabled(),
    )
    .expect("rebind in place");
    assert_eq!(srv.addr(), addr);
    servers.insert(site2, srv);

    let after = run(1000, 8);
    assert!(after > 0, "nothing committed after restart");

    let dumps = fed.dumps().expect("dumps");
    let sum: i64 = dumps
        .values()
        .flat_map(|d| d.values())
        .map(|v| v.counter)
        .sum();
    assert_eq!(sum, i64::from(SITES) * OBJS as i64 * PER_OBJ);
}
