//! F2–F5 — golden message traces reproducing the state/message diagrams of
//! Figs. 2, 4 and 6, on the deterministic simulator.
//!
//! Mapping note: the paper's figures begin at the `prepare` inquiry; in this
//! implementation the work shipment (`submit`) carries the inquiry
//! implicitly and its reply is the `ready`/`abort` vote, so the figures'
//! `prepare → ready` appears as `submit → ready` on the failure-free path.
//! The explicit `prepare` message appears where the paper uses it: in 2PC's
//! dedicated voting round and in post-crash re-inquiry.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::FailurePlan;
use amc::types::{
    GlobalTxnId, GlobalVerdict, ObjectId, Operation, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn sim(protocol: ProtocolKind, failures: FailurePlan) -> SimFederation {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
    cfg.failures = failures;
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        fed.load_site(
            SiteId::new(s),
            &[
                (obj(s, 0), Value::counter(100)),
                (obj(s, 1), Value::counter(100)),
            ],
        );
    }
    fed
}

fn transfer() -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Increment {
                obj: obj(1, 0),
                delta: -30,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Increment {
                obj: obj(2, 0),
                delta: 30,
            }],
        ),
    ])
}

fn failing_at_site_2() -> BTreeMap<SiteId, Vec<Operation>> {
    let mut p = transfer();
    p.get_mut(&SiteId::new(2))
        .unwrap()
        .push(Operation::Read { obj: obj(2, 999) }); // does not exist
    p
}

const G1: GlobalTxnId = GlobalTxnId::new(1);

/// F2: Fig. 2 — 2PC commit: work, prepare round, decision, finish.
#[test]
fn fig2_two_phase_commit_trace() {
    let report = sim(ProtocolKind::TwoPhaseCommit, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    assert_eq!(
        report.trace.labels_for(G1),
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "ready:2->0",
            "prepare:0->1",
            "prepare:0->2",
            "ready:1->0",
            "ready:2->0",
            "commit:0->1",
            "commit:0->2",
            "finished:1->0",
            "finished:2->0",
        ]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Commit);
}

/// F2 (abort side): a participant that cannot finish its work forces a
/// global abort delivered to every participant.
#[test]
fn fig2_two_phase_abort_trace() {
    let report = sim(ProtocolKind::TwoPhaseCommit, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, failing_at_site_2())]);
    let labels = report.trace.labels_for(G1);
    assert_eq!(
        labels,
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "abort-vote:2->0",
            "abort:0->1",
            "abort:0->2",
            "finished:1->0",
            "finished:2->0",
        ]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Abort);
}

/// F4: Fig. 4 — commit-after: votes double as work replies; the decision
/// goes out while locals are still *running*.
#[test]
fn fig4_commit_after_trace() {
    let report = sim(ProtocolKind::CommitAfter, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    assert_eq!(
        report.trace.labels_for(G1),
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "ready:2->0",
            "commit:0->1",
            "commit:0->2",
            "finished:1->0",
            "finished:2->0",
        ]
    );
}

/// F4 (redo): after a post-decision crash, the commit is retransmitted as a
/// `redo` carrying the operations (Fig. 4's repetition loop).
#[test]
fn fig4_redo_retransmission_after_crash() {
    // Crash site 2 right when the decision is in flight (votes arrive at
    // ~1400 µs with 500 µs latency + 200 µs service each way).
    let failures =
        FailurePlan::none().outage(SiteId::new(2), SimTime(1_450), SimDuration::from_millis(25));
    let report =
        sim(ProtocolKind::CommitAfter, failures).run(vec![(SimDuration::ZERO, transfer())]);
    let labels = report.trace.labels_for(G1);
    assert_eq!(report.outcomes.get(&G1), Some(&GlobalVerdict::Commit));
    assert!(
        labels.iter().any(|l| l == "redo:0->2"),
        "expected a redo retransmission, got {labels:?}"
    );
}

/// F5: Fig. 6 — commit-before commit path: two messages per site, done.
#[test]
fn fig6_commit_before_commit_trace() {
    let report = sim(ProtocolKind::CommitBefore, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    assert_eq!(
        report.trace.labels_for(G1),
        vec!["submit:0->1", "submit:0->2", "ready:1->0", "ready:2->0"]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Commit);
}

/// F5 (undo): Fig. 6's abort side — the committed site is undone by an
/// inverse transaction, the aborted site needs nothing.
#[test]
fn fig6_commit_before_undo_trace() {
    let report = sim(ProtocolKind::CommitBefore, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, failing_at_site_2())]);
    let labels = report.trace.labels_for(G1);
    assert_eq!(
        labels,
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "abort-vote:2->0",
            "undo:0->1",
            "finished:1->0",
        ]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Abort);
}

/// F3: the commit-point orderings of Figs. 3/5/7 — observed through the
/// decision-vs-local-commit order in the traces.
#[test]
fn fig3_5_7_commit_point_orderings() {
    // 2PC: decision between ready and commit messages (middle).
    let two_pc = sim(ProtocolKind::TwoPhaseCommit, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    let labels = two_pc.trace.labels_for(G1);
    let ready_pos = labels.iter().position(|l| l.starts_with("ready")).unwrap();
    let commit_pos = labels.iter().position(|l| l.starts_with("commit")).unwrap();
    assert!(ready_pos < commit_pos, "Fig. 3: decision in the middle");

    // Commit-after: the local commit (triggered by the decision message)
    // happens after every vote — there is no local commit before "commit".
    let after = sim(ProtocolKind::CommitAfter, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    let labels = after.trace.labels_for(G1);
    let last_vote = labels.iter().rposition(|l| l.starts_with("ready")).unwrap();
    let decision = labels.iter().position(|l| l.starts_with("commit")).unwrap();
    assert!(
        last_vote < decision,
        "Fig. 5: decision before local commits"
    );

    // Commit-before: no decision message exists at all on the commit path —
    // local commits all precede the (silent) decision (Fig. 7).
    let before = sim(ProtocolKind::CommitBefore, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, transfer())]);
    let labels = before.trace.labels_for(G1);
    assert!(
        labels.iter().all(|l| !l.starts_with("commit:")),
        "Fig. 7: no commit message on the wire"
    );
}

/// §5 extension — the read-only participant optimization: a site whose
/// local transaction performed no updates votes `ready-ro`, commits
/// immediately and drops out of the decision round, under every protocol.
#[test]
fn read_only_participant_drops_out_of_decision_round() {
    let read_only_program = || {
        BTreeMap::from([
            (
                SiteId::new(1),
                vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: 1,
                }],
            ),
            (SiteId::new(2), vec![Operation::Read { obj: obj(2, 0) }]),
        ])
    };
    // 2PC: the read-only site answers the prepare inquiry with ready-ro
    // and receives no decision.
    let report = sim(ProtocolKind::TwoPhaseCommit, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, read_only_program())]);
    assert_eq!(
        report.trace.labels_for(G1),
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "ready:2->0",
            "prepare:0->1",
            "prepare:0->2",
            "ready:1->0",
            "ready-ro:2->0",
            "commit:0->1",
            "finished:1->0",
        ]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Commit);

    // Commit-after: the read-only site commits at submit time and is
    // excluded from the decision fan-out.
    let report = sim(ProtocolKind::CommitAfter, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, read_only_program())]);
    assert_eq!(
        report.trace.labels_for(G1),
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready:1->0",
            "ready-ro:2->0",
            "commit:0->1",
            "finished:1->0",
        ]
    );
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Commit);
}

/// Read-only participants of an *aborted* commit-before transaction need
/// no undo: there is nothing to invert.
#[test]
fn read_only_participant_needs_no_undo_on_abort() {
    let program = BTreeMap::from([
        (SiteId::new(1), vec![Operation::Read { obj: obj(1, 0) }]),
        (
            SiteId::new(2),
            vec![
                Operation::Increment {
                    obj: obj(2, 0),
                    delta: 1,
                },
                Operation::Read { obj: obj(2, 999) }, // fails: intended abort
            ],
        ),
    ]);
    let report = sim(ProtocolKind::CommitBefore, FailurePlan::none())
        .run(vec![(SimDuration::ZERO, program)]);
    assert_eq!(report.outcomes[&G1], GlobalVerdict::Abort);
    let labels = report.trace.labels_for(G1);
    assert_eq!(
        labels,
        vec![
            "submit:0->1",
            "submit:0->2",
            "ready-ro:1->0",
            "abort-vote:2->0",
        ],
        "no undo message: the read-only commit has no effects to invert"
    );
}
