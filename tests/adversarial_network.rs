//! The protocols under an adversarial network: loss AND duplication
//! (at-least-once delivery) with retransmitting coordinators. Atomicity
//! and exactly-once effects must survive; this is what the durable commit
//! markers and presumed-abort tombstones exist for.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
use amc::sim::FailurePlan;
use amc::types::{
    GlobalTxnId, GlobalVerdict, ObjectId, Operation, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn run_with(
    protocol: ProtocolKind,
    loss: f64,
    duplication: f64,
    seed: u64,
    failures: FailurePlan,
) -> (
    amc::core::SimReport,
    BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
) {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
    cfg.router.loss_probability = loss;
    cfg.router.duplicate_probability = duplication;
    cfg.seed = seed;
    cfg.failures = failures;
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(30_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> =
            (0..5).map(|i| (obj(s, i), Value::counter(100))).collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let managers = fed.managers();
    // Disjoint objects per transaction: the discrete-event driver is
    // single-threaded, so programs must not conflict at L0 (see the
    // simdrive module docs); contention belongs to the threaded driver.
    let programs = (0..5u64)
        .map(|i| {
            (
                SimDuration::from_millis(i * 20),
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i),
                            delta: -10,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i),
                            delta: 10,
                        }],
                    ),
                ]),
            )
        })
        .collect();
    let report = fed.run(programs);
    let dumps = SimFederation::dumps(&managers);
    (report, dumps)
}

fn check_exactly_once(
    report: &amc::core::SimReport,
    dumps: &BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
    label: &str,
) {
    for i in 0..5u64 {
        let gtx = GlobalTxnId::new(i + 1);
        let committed = report.outcomes.get(&gtx) == Some(&GlobalVerdict::Commit);
        let expect = if committed { (90, 110) } else { (100, 100) };
        let v1 = dumps[&SiteId::new(1)][&obj(1, i)].counter;
        let v2 = dumps[&SiteId::new(2)][&obj(2, i)].counter;
        assert_eq!(
            (v1, v2),
            expect,
            "{label}: {gtx} (committed={committed}) must apply exactly once"
        );
    }
}

#[test]
fn duplication_alone_is_harmless() {
    for protocol in ProtocolKind::ALL {
        for seed in [1, 2, 3] {
            let (report, dumps) = run_with(protocol, 0.0, 0.5, seed, FailurePlan::none());
            assert!(
                report.unresolved.is_empty(),
                "{protocol} seed {seed}: {:?}",
                report.unresolved
            );
            assert!(
                report.errors.is_empty(),
                "{protocol} seed {seed}: {:?}",
                report.errors
            );
            check_exactly_once(&report, &dumps, &format!("{protocol} seed {seed}"));
        }
    }
}

#[test]
fn loss_plus_duplication_with_retransmission_still_exactly_once() {
    for protocol in ProtocolKind::ALL {
        for seed in [7, 8] {
            let (report, dumps) = run_with(protocol, 0.15, 0.3, seed, FailurePlan::none());
            assert!(
                report.unresolved.is_empty(),
                "{protocol} seed {seed}: unresolved {:?} (retransmission should recover)",
                report.unresolved
            );
            check_exactly_once(&report, &dumps, &format!("{protocol} seed {seed}"));
            assert!(
                report.retransmissions > 0 || report.dropped == 0,
                "{protocol} seed {seed}: losses need retransmissions"
            );
        }
    }
}

#[test]
fn crash_plus_lossy_duplicating_network() {
    for protocol in ProtocolKind::ALL {
        let failures = FailurePlan::none().outage(
            SiteId::new(2),
            SimTime(30_000),
            SimDuration::from_millis(50),
        );
        let (report, dumps) = run_with(protocol, 0.1, 0.2, 42, failures);
        assert!(
            report.unresolved.is_empty(),
            "{protocol}: unresolved {:?}",
            report.unresolved
        );
        check_exactly_once(&report, &dumps, &protocol.to_string());
    }
}
