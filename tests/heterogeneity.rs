//! The paper's motivating constraint, end to end: a federation containing
//! an engine without a ready state (OCC) cannot run 2PC, while both
//! portable protocols integrate it unchanged — including through OCC's
//! characteristic validation-failure aborts.

use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
use amc::types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn hetero(protocol: ProtocolKind) -> Arc<Federation> {
    let fed = Federation::new(FederationConfig::heterogeneous(4, protocol));
    for s in 1..=4u32 {
        let data: Vec<(ObjectId, Value)> =
            (0..32).map(|i| (obj(s, i), Value::counter(100))).collect();
        fed.load_site(SiteId::new(s), &data).unwrap();
    }
    Arc::new(fed)
}

#[test]
fn federation_mixes_engine_kinds() {
    let fed = hetero(ProtocolKind::CommitBefore);
    let kinds: Vec<&str> = (1..=4u32)
        .map(|s| {
            fed.manager(SiteId::new(s))
                .unwrap()
                .handle()
                .engine()
                .kind()
        })
        .collect();
    assert_eq!(kinds, vec!["2pl", "occ", "2pl", "occ"]);
}

#[test]
fn portable_protocols_commit_across_engine_kinds() {
    for protocol in [ProtocolKind::CommitAfter, ProtocolKind::CommitBefore] {
        let fed = hetero(protocol);
        // Span a 2PL site and an OCC site.
        let program = BTreeMap::from([
            (
                SiteId::new(1),
                vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: -9,
                }],
            ),
            (
                SiteId::new(2),
                vec![Operation::Increment {
                    obj: obj(2, 0),
                    delta: 9,
                }],
            ),
        ]);
        let report = fed.run_transaction(&program).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed, "{protocol}");
        let dumps = fed.dumps().unwrap();
        assert_eq!(dumps[&SiteId::new(1)][&obj(1, 0)], Value::counter(91));
        assert_eq!(dumps[&SiteId::new(2)][&obj(2, 0)], Value::counter(109));
    }
}

#[test]
fn concurrent_load_on_heterogeneous_federation_stays_consistent() {
    for protocol in [ProtocolKind::CommitAfter, ProtocolKind::CommitBefore] {
        let fed = hetero(protocol);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = (0..80)
            .map(|i| {
                let a = 1 + (i % 4) as u32;
                let b = 1 + ((i + 1) % 4) as u32;
                let amount = 1 + (i % 5) as i64;
                (
                    BTreeMap::from([
                        (
                            SiteId::new(a),
                            vec![Operation::Increment {
                                obj: obj(a, i as u64 % 32),
                                delta: -amount,
                            }],
                        ),
                        (
                            SiteId::new(b),
                            vec![Operation::Increment {
                                obj: obj(b, i as u64 % 32),
                                delta: amount,
                            }],
                        ),
                    ]),
                    false,
                )
            })
            .collect();
        let metrics = fed.run_concurrent(programs, 6);
        assert_eq!(metrics.committed, 80, "{protocol}: {metrics:?}");
        // Conservation across engines of different kinds.
        let total: i64 = fed
            .dumps()
            .unwrap()
            .values()
            .flat_map(|d| d.iter())
            .filter(|(o, _)| !amc::net::marker::is_marker(**o))
            .map(|(_, v)| v.counter)
            .sum();
        assert_eq!(total, 4 * 32 * 100, "{protocol}");
    }
}

#[test]
fn occ_validation_failures_surface_as_erroneous_aborts_and_are_absorbed() {
    // Hammer one hot OCC object: validation failures are §3.2's erroneous
    // aborts; pre-vote retries and the redo loop must absorb them all.
    let fed = hetero(ProtocolKind::CommitAfter);
    let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = (0..40)
        .map(|_| {
            (
                BTreeMap::from([(
                    SiteId::new(2), // the OCC site
                    vec![
                        Operation::Read { obj: obj(2, 0) },
                        Operation::Increment {
                            obj: obj(2, 0),
                            delta: 1,
                        },
                    ],
                )]),
                false,
            )
        })
        .collect();
    let metrics = fed.run_concurrent(programs, 6);
    assert_eq!(metrics.committed, 40, "metrics: {metrics:?}");
    assert_eq!(
        fed.dumps().unwrap()[&SiteId::new(2)][&obj(2, 0)],
        Value::counter(140),
        "every increment exactly once despite validation failures"
    );
}
