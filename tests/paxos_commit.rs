//! Paxos Commit, end to end: the non-blocking replicated coordinator.
//!
//! Four layers of guarantees:
//!
//! * **Golden wire bytes**: the v1 layout of every Paxos payload
//!   (`PaxosRegister` … `PaxosP2b`) is pinned byte-for-byte, same
//!   contract as `wire_codec.rs` pins for the classical payloads.
//! * **Durable acceptor log**: any frame-boundary prefix of an
//!   acceptor's log replays to exactly the state the pure
//!   [`AcceptorState::replay`] computes over the decoded prefix records
//!   — the on-disk codec, the boundary scan, and the replay agree.
//! * **Nemesis sweep**: 100+ seeded fault schedules — acceptor
//!   partitions, leading-coordinator-replica crashes mid-replication,
//!   standby takeovers — against an in-process Paxos federation. After
//!   the final standby sweep no transaction is open at any acceptor and
//!   the global sum is conserved, every seed.
//! * **kill -9 over TCP**: a real `amc-paxos-coord` process dies by
//!   SIGKILL with a transaction fully prepared but undecided; a standby
//!   replica in this test finishes it *Commit* from the acceptor logs
//!   alone, a replacement coordinator process keeps committing, and the
//!   books balance.

use amc::core::{Federation, FederationConfig};
use amc::net::marker::is_marker;
use amc::net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc::net::Payload;
use amc::obs::ObsSink;
use amc::paxos::{AcceptorState, Ballot, DurableAcceptor, Record, ReplicaDriver};
use amc::rpc::wire::{decode_frame, encode_frame, Frame};
use amc::rpc::{RetryPolicy, TcpTransport, WIRE_VERSION};
use amc::sim::{generate_faults, FaultKind, NemesisConfig};
use amc::types::{GlobalTxnId, GlobalVerdict, ObjectId, Operation, ProtocolKind, SiteId, Value};
use amc::wal::durable::unframe;
use amc::wal::DurableFile;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn site(n: u32) -> SiteId {
    SiteId::new(n)
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amc-paxos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ------------------------------------------------- golden wire bytes --

/// `PaxosRegister` (tag 7): gtx, then the participant list as
/// `u32 count` + `u32` per site — the layout every acceptor log entry
/// is keyed by.
#[test]
fn golden_bytes_paxos_register_v1() {
    let frame = Frame::Request {
        req_id: 3,
        payload: Payload::PaxosRegister {
            gtx: GlobalTxnId::new(9),
            participants: vec![site(1), site(2)],
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&31u32.to_le_bytes()); // length of the rest
    expect.push(WIRE_VERSION);
    expect.push(0); // frame kind 0 = request
    expect.extend_from_slice(&3u64.to_le_bytes()); // req id
    expect.push(7); // payload tag 7 = paxos-register
    expect.extend_from_slice(&9u64.to_le_bytes()); // gtx
    expect.extend_from_slice(&2u32.to_le_bytes()); // participant count
    expect.extend_from_slice(&1u32.to_le_bytes()); // site 1
    expect.extend_from_slice(&2u32.to_le_bytes()); // site 2
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// `PaxosAck` (tag 8) and `PaxosP1a` (tag 9): the short frames of the
/// registration round trip and the phase-1 opener.
#[test]
fn golden_bytes_paxos_ack_and_p1a_v1() {
    let ack = Frame::Reply {
        req_id: 4,
        payload: Payload::PaxosAck {
            gtx: GlobalTxnId::new(9),
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&19u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(1); // frame kind 1 = reply
    expect.extend_from_slice(&4u64.to_le_bytes());
    expect.push(8); // payload tag 8 = paxos-ack
    expect.extend_from_slice(&9u64.to_le_bytes());
    assert_eq!(encode_frame(&ack), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), ack);

    // Ballots travel packed: round << 32 | replica.
    let ballot = (2u64 << 32) | 5;
    let p1a = Frame::Request {
        req_id: 5,
        payload: Payload::PaxosP1a {
            gtx: GlobalTxnId::new(9),
            ballot,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&27u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0);
    expect.extend_from_slice(&5u64.to_le_bytes());
    expect.push(9); // payload tag 9 = paxos-p1a
    expect.extend_from_slice(&9u64.to_le_bytes());
    expect.extend_from_slice(&ballot.to_le_bytes());
    assert_eq!(encode_frame(&p1a), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), p1a);
}

/// `PaxosP1b` (tag 10) — the richest frame: promise flag, high-water
/// ballot, durable participant list, and per-instance accepted values as
/// `(u32 site, u64 ballot, u8 prepared)` triples.
#[test]
fn golden_bytes_paxos_p1b_v1() {
    let frame = Frame::Reply {
        req_id: 6,
        payload: Payload::PaxosP1b {
            gtx: GlobalTxnId::new(9),
            ballot: (1u64 << 32) | 2,
            promised: true,
            promised_up_to: (1u64 << 32) | 2,
            participants: vec![site(1), site(2)],
            accepted: vec![(site(1), 0, true)],
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&65u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(1);
    expect.extend_from_slice(&6u64.to_le_bytes());
    expect.push(10); // payload tag 10 = paxos-p1b
    expect.extend_from_slice(&9u64.to_le_bytes()); // gtx
    expect.extend_from_slice(&((1u64 << 32) | 2).to_le_bytes()); // ballot
    expect.push(1); // promised = true
    expect.extend_from_slice(&((1u64 << 32) | 2).to_le_bytes()); // promised_up_to
    expect.extend_from_slice(&2u32.to_le_bytes()); // participant count
    expect.extend_from_slice(&1u32.to_le_bytes());
    expect.extend_from_slice(&2u32.to_le_bytes());
    expect.extend_from_slice(&1u32.to_le_bytes()); // accepted count
    expect.extend_from_slice(&1u32.to_le_bytes()); // instance site 1
    expect.extend_from_slice(&0u64.to_le_bytes()); // accepted at ballot 0
    expect.push(1); // prepared = true
    assert_eq!(encode_frame(&frame), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), frame);
}

/// `PaxosP2a`/`PaxosP2b` (tags 11/12) share a body shape — gtx, u32
/// instance site, packed ballot, one flag byte — and `PaxosDecided`
/// (tag 13) reuses the classical verdict tag (0 commit, 1 abort).
#[test]
fn golden_bytes_paxos_p2_and_decided_v1() {
    let ballot = (3u64 << 32) | 1;
    let p2a = Frame::Request {
        req_id: 7,
        payload: Payload::PaxosP2a {
            gtx: GlobalTxnId::new(9),
            site: site(2),
            ballot,
            prepared: false,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&32u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0);
    expect.extend_from_slice(&7u64.to_le_bytes());
    expect.push(11); // payload tag 11 = paxos-p2a
    expect.extend_from_slice(&9u64.to_le_bytes());
    expect.extend_from_slice(&2u32.to_le_bytes()); // instance site
    expect.extend_from_slice(&ballot.to_le_bytes());
    expect.push(0); // prepared = false (an abort value)
    assert_eq!(encode_frame(&p2a), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), p2a);

    let p2b = Frame::Reply {
        req_id: 7,
        payload: Payload::PaxosP2b {
            gtx: GlobalTxnId::new(9),
            site: site(2),
            ballot,
            accepted: true,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&32u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(1);
    expect.extend_from_slice(&7u64.to_le_bytes());
    expect.push(12); // payload tag 12 = paxos-p2b
    expect.extend_from_slice(&9u64.to_le_bytes());
    expect.extend_from_slice(&2u32.to_le_bytes());
    expect.extend_from_slice(&ballot.to_le_bytes());
    expect.push(1); // accepted = true
    assert_eq!(encode_frame(&p2b), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), p2b);

    let decided = Frame::Request {
        req_id: 8,
        payload: Payload::PaxosDecided {
            gtx: GlobalTxnId::new(9),
            verdict: GlobalVerdict::Commit,
        },
    };
    let mut expect: Vec<u8> = Vec::new();
    expect.extend_from_slice(&20u32.to_le_bytes());
    expect.push(WIRE_VERSION);
    expect.push(0);
    expect.extend_from_slice(&8u64.to_le_bytes());
    expect.push(13); // payload tag 13 = paxos-decided
    expect.extend_from_slice(&9u64.to_le_bytes());
    expect.push(0); // verdict 0 = commit
    assert_eq!(encode_frame(&decided), expect);
    assert_eq!(decode_frame(&expect).expect("decode"), decided);
}

// --------------------------------------- acceptor-log prefix replay --

/// One operation against a durable acceptor, over a small universe so
/// the interesting collisions (re-registration, stale ballots, accepts
/// after decisions) actually happen.
#[derive(Debug, Clone)]
enum AccOp {
    Register {
        gtx: u64,
        mask: u8,
    },
    Promise {
        gtx: u64,
        round: u32,
        replica: u32,
    },
    Accept {
        gtx: u64,
        site: u32,
        round: u32,
        replica: u32,
        prepared: bool,
    },
    Decide {
        gtx: u64,
        commit: bool,
    },
}

fn arb_acc_op() -> impl Strategy<Value = AccOp> {
    (0u8..4, 1u64..4, 1u8..8, 1u32..4, 0u32..9, any::<bool>()).prop_map(
        |(tag, gtx, mask, s, ballot, flag)| {
            let (round, replica) = (ballot / 3, ballot % 3);
            match tag {
                0 => AccOp::Register { gtx, mask },
                1 => AccOp::Promise {
                    gtx,
                    round,
                    replica,
                },
                2 => AccOp::Accept {
                    gtx,
                    site: s,
                    round,
                    replica,
                    prepared: flag,
                },
                _ => AccOp::Decide { gtx, commit: flag },
            }
        },
    )
}

fn apply_acc_op(acc: &mut DurableAcceptor, op: &AccOp) {
    match op {
        AccOp::Register { gtx, mask } => {
            let participants: Vec<SiteId> = (1..=3u32)
                .filter(|s| mask & (1 << s) != 0)
                .map(site)
                .collect();
            let participants = if participants.is_empty() {
                vec![site(1)]
            } else {
                participants
            };
            acc.register(GlobalTxnId::new(*gtx), &participants);
        }
        AccOp::Promise {
            gtx,
            round,
            replica,
        } => {
            acc.promise(GlobalTxnId::new(*gtx), Ballot::new(*round, *replica));
        }
        AccOp::Accept {
            gtx,
            site: s,
            round,
            replica,
            prepared,
        } => {
            acc.accept(
                GlobalTxnId::new(*gtx),
                site(*s),
                Ballot::new(*round, *replica),
                *prepared,
            );
        }
        AccOp::Decide { gtx, commit } => {
            acc.note_decision(
                GlobalTxnId::new(*gtx),
                if *commit {
                    GlobalVerdict::Commit
                } else {
                    GlobalVerdict::Abort
                },
            );
        }
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// Any frame-boundary prefix of an acceptor's durable log replays
    /// consistently: reopening the truncated file yields exactly the
    /// state the pure `AcceptorState::replay` computes over the decoded
    /// prefix records, and the full log round-trips to the live state.
    /// This is the promise a recovery ballot leans on — whatever an
    /// acceptor said before the crash, its restarted incarnation still
    /// says.
    #[test]
    fn any_frame_prefix_of_the_acceptor_log_replays_consistently(
        ops in proptest::collection::vec(arb_acc_op(), 1..40),
        cut in any::<u64>(),
    ) {
        let dir = fresh_dir("prefix");
        let path = dir.join("acceptor.log");
        let mut acc = DurableAcceptor::open(&path).unwrap();
        for op in &ops {
            apply_acc_op(&mut acc, op);
        }
        let live = acc.state().clone();
        let frames = acc.frame_count();
        drop(acc);

        // Full-log reopen must reproduce the live state exactly.
        let reopened = DurableAcceptor::open(&path).unwrap();
        prop_assert_eq!(reopened.state(), &live);
        prop_assert_eq!(reopened.frame_count(), frames);
        drop(reopened);

        // Cut at an arbitrary frame boundary; the prefix must decode and
        // replay to the same state a pure fold over its records gives.
        let opened = DurableFile::open(&path).unwrap();
        prop_assert!(!opened.torn_truncated);
        let mut bounds = vec![0usize];
        for f in &opened.frames {
            bounds.push(bounds.last().unwrap() + f.len());
        }
        let keep = (cut as usize) % bounds.len();
        let records: Vec<Record> = opened.frames[..keep]
            .iter()
            .map(|f| Record::decode(unframe(f).unwrap()).unwrap())
            .collect();
        drop(opened);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bounds[keep]]).unwrap();

        let truncated = DurableAcceptor::open(&path).unwrap();
        prop_assert_eq!(truncated.frame_count(), keep);
        prop_assert_eq!(truncated.state(), &AcceptorState::replay(&records));
        drop(truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ------------------------------------------------ nemesis chaos sweep --

const SWEEP_SITES: u32 = 5; // 1..=3 host acceptors; 4 and 5 trade
const ACCEPTORS: u32 = 3; // f = 1
const SWEEP_TXNS: u64 = 12;
const PER_OBJ: i64 = 100;

fn sweep_config() -> NemesisConfig {
    NemesisConfig {
        // Partitions sever acceptor links — that is where Paxos majority
        // math gets exercised. Classical site crashes stay off: the
        // threaded federation's fault surface here is the acceptor group
        // and the coordinator replicas themselves.
        sites: vec![site(1), site(2), site(3)],
        allow_crashes: false,
        allow_torn_tails: false,
        allow_partitions: true,
        allow_loss_bursts: false,
        include_central_crash: false,
        allow_coordinator_crashes: true,
        coordinator_replicas: ACCEPTORS,
        ..NemesisConfig::default()
    }
}

/// Transfer `i`: site 4 pays site 5 over object pair `i` — disjoint per
/// transaction, so a transaction wedged in doubt (holding its locks)
/// never stalls the rest of the schedule.
fn sweep_transfer(i: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    let amt = 1 + (i % 5) as i64;
    BTreeMap::from([
        (
            site(4),
            vec![Operation::Increment {
                obj: obj(4, i),
                delta: -amt,
            }],
        ),
        (
            site(5),
            vec![Operation::Increment {
                obj: obj(5, i),
                delta: amt,
            }],
        ),
    ])
}

fn user_sum(fed: &Federation) -> i64 {
    fed.dumps()
        .expect("dumps")
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

/// Run one seeded schedule; returns the per-transaction outcome labels
/// and the final (healed, drained) dumps for determinism comparison.
fn run_sweep_seed(seed: u64) -> (Vec<String>, BTreeMap<SiteId, BTreeMap<ObjectId, Value>>) {
    let dir = fresh_dir(&format!("sweep-{seed}"));
    let cfg = FederationConfig::uniform(SWEEP_SITES, ProtocolKind::TwoPhaseCommit)
        .with_paxos_commit(ACCEPTORS, &dir);
    let fed = Federation::new(cfg);
    for s in 1..=SWEEP_SITES {
        let data: Vec<(ObjectId, Value)> = (0..SWEEP_TXNS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(site(s), &data).expect("load");
    }

    let ncfg = sweep_config();
    let horizon = ncfg.fault_horizon.0.max(1);
    let mut events = generate_faults(&ncfg, seed).events();
    events.sort_by_key(|e| e.at);
    // The threaded federation has no virtual clock; map each fault's
    // virtual time onto the transaction schedule instead.
    let slot = |at: u64| -> u64 { (at * SWEEP_TXNS / horizon).min(SWEEP_TXNS - 1) };

    let pt = fed.paxos_transport().expect("paxos transport").clone();
    let apply = |kind: &FaultKind, s: SiteId| match kind {
        FaultKind::PartitionStart { .. } => pt.set_down(s, true),
        FaultKind::PartitionHeal => pt.set_down(s, false),
        FaultKind::CoordinatorCrash { after_votes } => {
            // Cap at the participant count: every transfer replicates at
            // most two prepare votes.
            fed.inject_coordinator_crash_after_votes((*after_votes).min(2));
        }
        FaultKind::CoordinatorTakeover { replica } => {
            // A standby claims leadership and sweeps. It may fail —
            // e.g. two acceptors partitioned away leave no majority —
            // and that is a legal outcome: the in-doubt transactions
            // simply wait for the final healed sweep.
            let _ = fed.replica_driver(*replica).run_once();
        }
        other => unreachable!("sweep config cannot generate {other:?}"),
    };

    let mut outcomes = Vec::new();
    let mut next = 0usize;
    for i in 0..SWEEP_TXNS {
        while next < events.len() && slot(events[next].at.0) <= i {
            apply(&events[next].kind, events[next].site);
            next += 1;
        }
        match fed.run_transaction(&sweep_transfer(i)) {
            Ok(report) => outcomes.push(format!("{:?}", report.outcome)),
            // A fired coordinator crash (or an acceptor majority lost
            // mid-decision) leaves the transaction in doubt for a
            // standby to finish.
            Err(_) => outcomes.push("InDoubt".to_string()),
        }
    }
    while next < events.len() {
        apply(&events[next].kind, events[next].site);
        next += 1;
    }

    // Heal everything and let a fresh standby finish whatever is open.
    for a in 1..=ACCEPTORS {
        pt.set_down(site(a), false);
    }
    let swept = fed
        .replica_driver(9)
        .run_once()
        .expect("healed sweep has a majority");
    outcomes.push(format!("swept:{}", swept.len()));

    // Non-blocking: nothing is left open at any acceptor.
    for a in 1..=ACCEPTORS {
        let open = pt
            .host(site(a))
            .expect("acceptor host")
            .with_acceptor(|acc| acc.state().open_entries());
        assert!(
            open.is_empty(),
            "seed {seed}: acceptor {a} still has open transactions {open:?}"
        );
    }
    let sum = user_sum(&fed);
    assert_eq!(
        sum,
        i64::from(SWEEP_SITES) * SWEEP_TXNS as i64 * PER_OBJ,
        "seed {seed}: global sum not conserved (outcomes {outcomes:?})"
    );
    let dumps = fed.dumps().expect("dumps");
    let _ = std::fs::remove_dir_all(&dir);
    (outcomes, dumps)
}

/// 110 seeded schedules of acceptor partitions + coordinator-replica
/// crashes and takeovers: every in-doubt window closes, the sum is
/// conserved, and no acceptor reports an open transaction at the end.
#[test]
fn nemesis_sweep_coordinator_crashes_never_block() {
    let mut crashes_seen = 0u64;
    for seed in 0..110u64 {
        let plan = generate_faults(&sweep_config(), seed);
        crashes_seen += plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CoordinatorCrash { .. }))
            .count() as u64;
        run_sweep_seed(seed);
    }
    // The sweep must actually exercise the tentpole: the generator's
    // coordinator lane has to produce real incumbent deaths.
    assert!(
        crashes_seen >= 20,
        "only {crashes_seen} coordinator crashes across the sweep"
    );
}

/// The same seed twice gives byte-identical outcome sequences and final
/// states — the chaos schedule, the backoff jitter, and the standby
/// sweeps are all deterministic in (config, seed).
#[test]
fn nemesis_sweep_is_deterministic_per_seed() {
    for seed in [0u64, 1, 2, 3, 5, 8, 13, 21, 34, 55] {
        let (o1, d1) = run_sweep_seed(seed);
        let (o2, d2) = run_sweep_seed(seed);
        assert_eq!(o1, o2, "seed {seed}: outcome sequence diverged");
        assert_eq!(d1, d2, "seed {seed}: final state diverged");
    }
}

// ------------------------------------------------- kill -9 over TCP --

const TCP_SITES: u32 = 3;
const TCP_OBJS: u64 = 8;
const CRASH_TXN: u64 = 6;

/// A workspace binary, found next to (or above) this test executable.
fn bin(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("test exe path");
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(name);
        if candidate.exists() {
            return candidate;
        }
        dir = d.parent();
    }
    panic!(
        "{name} not found near {}; build it first (cargo build -p amc-rpc)",
        exe.display()
    );
}

struct Proc {
    child: Child,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_acceptor_site(s: u32, dir: &std::path::Path) -> (Proc, SocketAddr) {
    let log = dir.join(format!("acceptor-{s}.log"));
    let mut child = Command::new(bin("amc-site-server"))
        .args([
            "--site",
            &s.to_string(),
            "--listen",
            "127.0.0.1:0",
            "--protocol",
            "2pc",
            "--lock-timeout-ms",
            "200",
            "--acceptor-log",
            log.to_str().expect("utf-8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn amc-site-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut addr = None;
    for _ in 0..10 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.parse().expect("printed socket addr"));
            break;
        }
    }
    (
        Proc { child },
        addr.expect("server never printed its listening address"),
    )
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_secs(2),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    }
}

/// The incumbent coordinator replica is `kill -9`ed with transaction 7
/// fully prepared but undecided — the classical 2PC blocking window. A
/// standby replica reads the acceptor logs, finds the in-doubt
/// transaction, decides *Commit* (both instances chose Prepared at a
/// majority), and delivers it; a replacement coordinator process then
/// keeps committing against the same sites; the global sum is conserved.
#[test]
fn kill_9_of_the_leading_coordinator_replica_does_not_block() {
    let dir = fresh_dir("kill9");
    let mut procs = Vec::new();
    let mut addrs = Vec::new();
    for s in 1..=TCP_SITES {
        let (p, a) = spawn_acceptor_site(s, &dir);
        procs.push(p);
        addrs.push(a);
    }
    let addr_list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    // The incumbent: crashes (parks for our SIGKILL) mid-transaction 6,
    // after both prepare votes are replicated to the acceptor group.
    let mut coord = Command::new(bin("amc-paxos-coord"))
        .args([
            "--sites",
            &addr_list,
            "--acceptors",
            &TCP_SITES.to_string(),
            "--txns",
            &format!("{}", CRASH_TXN + 6),
            "--objects",
            &TCP_OBJS.to_string(),
            "--crash-at-txn",
            &CRASH_TXN.to_string(),
            "--crash-after-votes",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn amc-paxos-coord");
    let stdout = coord.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut committed_before = 0u64;
    let mut in_doubt: Option<u64> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.starts_with("txn ") && line.ends_with("Committed") {
            committed_before += 1;
        }
        if let Some(rest) = line.strip_prefix("in-doubt gtx=") {
            let gtx: String = rest.chars().take_while(char::is_ascii_digit).collect();
            in_doubt = Some(gtx.parse().expect("gtx number"));
            break;
        }
    }
    let in_doubt = GlobalTxnId::new(in_doubt.expect("incumbent never reported the in-doubt gtx"));
    assert!(
        committed_before > 0,
        "nothing committed before the incumbent died"
    );
    // The real death: SIGKILL, no destructors, no goodbyes.
    coord.kill().expect("kill -9 the incumbent");
    coord.wait().expect("reap the incumbent");

    // The standby (ballot id 7): the acceptor logs alone name the
    // in-doubt transaction and both of its Prepared instances — the
    // verdict must be Commit, never a presumed abort.
    let addr_map: BTreeMap<SiteId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| (site(i as u32 + 1), *a))
        .collect();
    let transport = Arc::new(TcpTransport::new(
        addr_map,
        fast_policy(),
        ObsSink::disabled(),
    ));
    let acceptors: Vec<SiteId> = (1..=TCP_SITES).map(site).collect();
    let driver = ReplicaDriver::new(&*transport, acceptors.clone(), 7);
    let swept = driver.run_once().expect("standby sweep");
    assert_eq!(
        swept,
        vec![(in_doubt, GlobalVerdict::Commit)],
        "the fully prepared transaction must finish Commit"
    );
    // Idempotent: a second standby finds nothing open.
    let driver2 = ReplicaDriver::new(&*transport, acceptors, 8);
    assert!(driver2.run_once().expect("second sweep").is_empty());

    // A replacement coordinator (fresh gtx range, no reload) keeps the
    // federation moving — the in-doubt window held no locks hostage.
    let out = Command::new(bin("amc-paxos-coord"))
        .args([
            "--sites",
            &addr_list,
            "--acceptors",
            &TCP_SITES.to_string(),
            "--txns",
            "6",
            "--objects",
            &TCP_OBJS.to_string(),
            "--no-load",
            "--first-gtx",
            "1000",
        ])
        .output()
        .expect("run replacement amc-paxos-coord");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replacement coordinator failed: {stdout}"
    );
    assert!(
        stdout.contains("done committed="),
        "replacement coordinator never finished: {stdout}"
    );

    // Conservation across the kill: every site's books, summed, are
    // exactly the initial load.
    let mut sum = 0i64;
    for s in 1..=TCP_SITES {
        match transport.admin(site(s), AdminRequest::Dump) {
            Ok(AdminReply::Dump(state)) => {
                sum += state
                    .iter()
                    .filter(|(o, _)| !is_marker(**o))
                    .map(|(_, v)| v.counter)
                    .sum::<i64>();
            }
            other => panic!("dump site {s}: {other:?}"),
        }
    }
    assert_eq!(
        sum,
        i64::from(TCP_SITES) * TCP_OBJS as i64 * 100,
        "global sum not conserved across the coordinator kill"
    );
    drop(procs);
    let _ = std::fs::remove_dir_all(&dir);
}
