//! The deterministic observability layer end-to-end: per-seed bit-for-bit
//! reproducible event logs, per-transaction timelines covering every
//! resolved transaction, and the causal-chain reconstruction of the
//! `unsafe_skip_decision_log` atomicity bug that the chaos harness hunts —
//! the same chain the `explain` binary prints.

use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation, SimReport};
use amc::obs::EventKind;
use amc::sim::{generate_faults, FailurePlan, NemesisConfig};
use amc::types::{
    GlobalTxnId, GlobalVerdict, ObjectId, Operation, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

const OBJS: u64 = 5;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Five staggered disjoint transfers — the nemesis/E5c workload.
fn programs() -> Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)> {
    (0..OBJS)
        .map(|i| {
            (
                SimDuration::from_millis(i * 20),
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i),
                            delta: -10,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i),
                            delta: 10,
                        }],
                    ),
                ]),
            )
        })
        .collect()
}

fn run_nemesis(protocol: ProtocolKind, seed: u64) -> SimReport {
    let plan = generate_faults(&NemesisConfig::default(), seed);
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
    cfg.seed = seed;
    cfg.faults = plan;
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(30_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data);
    }
    fed.run(programs())
}

/// The determinism contract: the full rendered event log — sequence
/// numbers, virtual timestamps, sites, payload labels, everything — is
/// bit-for-bit identical when the same seed is replayed, for every
/// protocol, under composed nemesis fault schedules.
#[test]
fn event_log_is_bit_for_bit_deterministic_per_seed() {
    for protocol in ProtocolKind::ALL {
        for seed in [0u64, 7, 42] {
            let a = run_nemesis(protocol, seed);
            let b = run_nemesis(protocol, seed);
            assert!(
                !a.events.is_empty(),
                "{protocol} seed {seed}: no events recorded"
            );
            assert_eq!(
                a.events.total_recorded(),
                b.events.total_recorded(),
                "{protocol} seed {seed}: event counts diverge"
            );
            assert_eq!(
                a.events.render(),
                b.events.render(),
                "{protocol} seed {seed}: replay produced a different event log"
            );
        }
    }
}

/// Different seeds must actually perturb the run (otherwise the
/// determinism test above proves nothing).
#[test]
fn different_seeds_produce_different_logs() {
    let a = run_nemesis(ProtocolKind::CommitBefore, 1);
    let b = run_nemesis(ProtocolKind::CommitBefore, 2);
    assert_ne!(
        a.events.render(),
        b.events.render(),
        "seeds 1 and 2 produced identical logs — faults not applied?"
    );
}

/// On the failure-free path every transaction gets a complete timeline
/// (start → votes → done), fault events stay out of per-transaction
/// timelines, and the derived histograms are populated — with the
/// blocking-window histogram non-empty **only** for 2PC, which is the §5
/// argument in event form.
#[test]
fn timelines_cover_every_transaction_and_blocking_is_2pc_only() {
    for protocol in ProtocolKind::ALL {
        let cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> = (0..OBJS)
                .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
                .collect();
            fed.load_site(SiteId::new(s), &data);
        }
        let report = fed.run(programs());
        assert!(report.errors.is_empty(), "{protocol}: {:?}", report.errors);
        for i in 0..OBJS {
            let gtx = GlobalTxnId::new(i + 1);
            assert_eq!(report.outcomes.get(&gtx), Some(&GlobalVerdict::Commit));
            let text = report.events.render_timeline(gtx);
            assert!(text.contains("txn-start"), "{protocol} {gtx}:\n{text}");
            assert!(text.contains("vote"), "{protocol} {gtx}:\n{text}");
            assert!(text.contains("done commit"), "{protocol} {gtx}:\n{text}");
            // Failure-free run: no fault events anywhere near a timeline.
            assert!(!text.contains("crash"), "{protocol} {gtx}:\n{text}");
        }
        let derived = report.events.derive();
        assert_eq!(derived.commit_latency_us.n(), OBJS as usize, "{protocol}");
        assert!(!derived.msgs_per_txn.is_empty(), "{protocol}");
        if protocol == ProtocolKind::TwoPhaseCommit {
            assert!(
                !derived.blocking_window_us.is_empty(),
                "2PC participants must traverse the in-doubt window"
            );
        } else {
            assert!(
                derived.blocking_window_us.is_empty(),
                "{protocol} has no prepared state, so no blocking window"
            );
        }
    }
}

/// The injected `unsafe_skip_decision_log` bug, reconstructed as a causal
/// chain from the event log alone (what `explain --skip-decision-log`
/// prints): the coordinator **decides commit**, the central system crashes
/// before the (skipped) decision record could survive, and the resumed
/// coordinator finds **no decision record**, presumes abort, and finishes
/// with the opposite verdict.
#[test]
fn event_log_reconstructs_the_skip_decision_log_bug_as_a_causal_chain() {
    // Votes arrive and the decision fires at t = 1200 us (0.5 ms hop each
    // way + 0.2 ms service); crash the central system just after, restart
    // it 15 ms later.
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::CommitAfter));
    cfg.failures =
        FailurePlan::none().outage(SiteId::CENTRAL, SimTime(1300), SimDuration::from_millis(15));
    cfg.unsafe_skip_decision_log = true;
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(5_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(PER_OBJ))]);
    }
    let program = BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Increment {
                obj: obj(1, 0),
                delta: -10,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Increment {
                obj: obj(2, 0),
                delta: 10,
            }],
        ),
    ]);
    let report = fed.run(vec![(SimDuration::ZERO, program)]);

    let gtx = GlobalTxnId::new(1);
    let timeline = report.events.timeline(gtx);
    assert!(!timeline.is_empty(), "no events for {gtx}");

    let pos = |want: &dyn Fn(&EventKind) -> bool| timeline.iter().position(|e| want(&e.kind));
    let decided_commit = pos(&|k| {
        matches!(
            k,
            EventKind::Decide {
                verdict: GlobalVerdict::Commit
            }
        )
    })
    .expect("coordinator must decide commit before the crash");
    let resumed_amnesiac = pos(&|k| matches!(k, EventKind::Resume { logged: None }))
        .expect("resume must find no decision record (force was skipped)");
    let done_abort = pos(&|k| {
        matches!(
            k,
            EventKind::Done {
                verdict: GlobalVerdict::Abort
            }
        )
    })
    .expect("resumed coordinator must presume abort and finish");
    assert!(
        decided_commit < resumed_amnesiac && resumed_amnesiac < done_abort,
        "causal chain out of order:\n{}",
        report.events.render_timeline(gtx)
    );
    // The crash itself is a federation-wide event (no transaction), so it
    // appears in the full log but not in the per-transaction timeline.
    let full = report.events.render();
    assert!(full.contains("crash"), "{full}");
    assert!(
        !report.events.render_timeline(gtx).contains("crash"),
        "fault events must not be attributed to a transaction"
    );
    // And the rendered timeline reads as the explain tool prints it.
    let text = report.events.render_timeline(gtx);
    assert!(text.contains("decide commit"), "{text}");
    assert!(
        text.contains("resume (no decision record: presume abort)"),
        "{text}"
    );
    assert!(text.contains("done abort"), "{text}");
}

/// With the decision-log force *enabled* the same crash is harmless: the
/// resumed coordinator finds the commit record and finishes with commit —
/// the control experiment for the causal chain above.
#[test]
fn decision_log_force_survives_the_same_crash() {
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::CommitAfter));
    cfg.failures =
        FailurePlan::none().outage(SiteId::CENTRAL, SimTime(1300), SimDuration::from_millis(15));
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(5_000);
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(PER_OBJ))]);
    }
    let program = BTreeMap::from([
        (
            SiteId::new(1),
            vec![Operation::Increment {
                obj: obj(1, 0),
                delta: -10,
            }],
        ),
        (
            SiteId::new(2),
            vec![Operation::Increment {
                obj: obj(2, 0),
                delta: 10,
            }],
        ),
    ]);
    let report = fed.run(vec![(SimDuration::ZERO, program)]);
    let gtx = GlobalTxnId::new(1);
    assert_eq!(report.outcomes.get(&gtx), Some(&GlobalVerdict::Commit));
    let timeline = report.events.timeline(gtx);
    assert!(
        timeline.iter().any(|e| matches!(
            e.kind,
            EventKind::Resume {
                logged: Some(GlobalVerdict::Commit)
            }
        )),
        "resume must recover the logged commit decision:\n{}",
        report.events.render_timeline(gtx)
    );
}
