//! The contention-aware workload engine, end to end: per-seed determinism
//! fingerprints for every mix, Zipf skew shape, and the hot-key /
//! tpcc-lite mixes run through both runtimes — the in-process DES-style
//! federation and real loopback TCP site servers — with the conservation
//! and escrow oracles replayed over the final state.
//!
//! The determinism contract under test (DESIGN.md §14): a generator is a
//! pure function of `(kind, spec, seed)`, so the *same* program stream
//! drives every runtime, and the cross-runtime comparison in OPERATORS.md
//! compares protocols, never workloads.

use amc::core::{Federation, FederationConfig, ProtocolKind};
use amc::engine::{TplConfig, TwoPLEngine};
use amc::mlt::ConflictPolicy;
use amc::net::comm::EngineHandle;
use amc::net::marker::is_marker;
use amc::net::transport::FederationTransport;
use amc::net::LocalCommManager;
use amc::obs::ObsSink;
use amc::rpc::{RetryPolicy, SiteServer, TcpTransport};
use amc::types::{Operation, SiteId};
use amc::workload::{fingerprint, MixGen, MixKind, MixSpec, ZipfKeys};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A small, hot spec shared by the runtime tests.
fn hot_spec() -> MixSpec {
    MixSpec {
        sites: 3,
        objects_per_site: 32,
        theta: 1.0,
        intended_abort_prob: 0.0,
        max_fanout: 3,
    }
}

fn counter_sum(fed: &Federation) -> i64 {
    fed.dumps()
        .unwrap()
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

fn min_counter(fed: &Federation) -> i64 {
    fed.dumps()
        .unwrap()
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .min()
        .unwrap()
}

/// Every generator is a pure function of `(kind, spec, seed)`: two fresh
/// generators replay bit-identical streams, every seed produces a
/// distinct one, and streams survive being split into two draws.
#[test]
fn per_seed_streams_replay_bit_for_bit() {
    for kind in MixKind::ALL {
        let fps: Vec<u64> = (0..4)
            .map(|seed| fingerprint(&MixGen::new(kind, MixSpec::default(), seed).programs(80)))
            .collect();
        for seed in 0..4u64 {
            let again =
                fingerprint(&MixGen::new(kind, MixSpec::default(), seed).programs(80));
            assert_eq!(fps[seed as usize], again, "{kind:?} seed {seed} diverged");
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_ne!(fps[a], fps[b], "{kind:?} seeds {a}/{b} collide");
            }
        }
        // Incremental draws see the same stream as one batch.
        let mut g = MixGen::new(kind, MixSpec::default(), 1);
        let mut split = g.programs(30);
        split.extend(g.programs(50));
        assert_eq!(
            fingerprint(&split),
            fps[1],
            "{kind:?} stream changes when drawn incrementally"
        );
    }
}

/// The spec shapes the stream: changing theta changes every mix's
/// fingerprint (key choice flows through the Zipf generator everywhere).
#[test]
fn theta_is_part_of_the_stream_identity() {
    for kind in MixKind::ALL {
        let cold = MixSpec {
            theta: 0.0,
            ..MixSpec::default()
        };
        let hot = MixSpec {
            theta: 1.2,
            ..MixSpec::default()
        };
        assert_ne!(
            fingerprint(&MixGen::new(kind, cold, 5).programs(60)),
            fingerprint(&MixGen::new(kind, hot, 5).programs(60)),
            "{kind:?} ignores theta"
        );
    }
}

/// The Zipf generator's skew dial works: the hottest key's frequency is
/// monotone in theta, from ~uniform at 0 to heavily skewed at 1.2.
#[test]
fn zipf_top1_frequency_is_monotone_in_theta() {
    let n = 64u64;
    let draws = 20_000usize;
    let mut last = 0.0f64;
    for theta in [0.0, 0.6, 0.9, 1.2] {
        let mut counts = BTreeMap::new();
        for key in ZipfKeys::new(n, theta, 99).take(draws) {
            *counts.entry(key).or_insert(0u64) += 1;
        }
        let top1 = *counts.values().max().unwrap() as f64 / draws as f64;
        assert!(
            top1 >= last,
            "top-1 frequency fell from {last:.4} to {top1:.4} at theta={theta}"
        );
        last = top1;
    }
    // The end points bracket the expected shapes: uniform-ish vs hot.
    assert!(last > 0.15, "theta=1.2 is not hot: top-1 {last:.4}");
}

/// The hot-key commuting-counter mix conserves the federation-wide sum
/// with MLT semantic locking enabled, under contention, on the in-process
/// runtime — aborted or retried legs roll back exactly.
#[test]
fn hotkey_mix_conserves_sum_with_mlt_enabled() {
    let spec = hot_spec();
    let mut cfg = FederationConfig::uniform(spec.sites, ProtocolKind::CommitBefore);
    cfg.policy = ConflictPolicy::Semantic;
    cfg.tpl.lock_timeout = Duration::from_millis(100);
    cfg.l1_timeout = Duration::from_millis(300);
    let fed = Federation::new(cfg);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).unwrap();
    }
    let fed = Arc::new(fed);
    let batch: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> =
        MixGen::new(MixKind::HotKey, spec.clone(), 0xD0)
            .programs(300)
            .into_iter()
            .map(|p| (p.per_site, p.intends_abort))
            .collect();
    let m = fed.run_concurrent(batch, 6);
    assert!(m.committed > 0, "nothing committed");
    let _ = fed.resolve_pending();
    assert_eq!(counter_sum(&fed), spec.initial_sum(), "sum drifted");
}

/// Spawn one loopback TCP [`SiteServer`] per site and return the
/// federation wired through a real [`TcpTransport`], plus the servers
/// (shut down by the caller after the run).
fn tcp_federation(
    protocol: ProtocolKind,
    policy: ConflictPolicy,
    spec: &MixSpec,
) -> (Arc<Federation>, Vec<SiteServer>) {
    let mode = amc::core::submit_mode_for(protocol);
    let mut servers = Vec::new();
    let mut addrs = BTreeMap::new();
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        let tpl = TplConfig {
            lock_timeout: Duration::from_millis(100),
            deadlock_check: Duration::from_millis(1),
            ..TplConfig::default()
        };
        let engine = Arc::new(TwoPLEngine::new(tpl));
        let manager = Arc::new(LocalCommManager::new(
            site,
            EngineHandle::Preparable(engine),
        ));
        let server = SiteServer::spawn(site, manager, mode, "127.0.0.1:0", ObsSink::disabled())
            .expect("bind loopback");
        addrs.insert(site, server.addr());
        servers.push(server);
    }
    let transport = Arc::new(TcpTransport::new(
        addrs,
        RetryPolicy::default(),
        ObsSink::disabled(),
    ));
    let mut cfg = FederationConfig::uniform(spec.sites, protocol);
    cfg.policy = policy;
    cfg.l1_timeout = Duration::from_millis(500);
    let mut fed = Federation::with_transport(cfg, transport as Arc<dyn FederationTransport>);
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).unwrap();
    }
    (fed, servers)
}

/// The same seeded hot-key stream the in-process test replays, over real
/// loopback TCP: the stream fingerprints match (one generator, two
/// runtimes) and the conservation oracle holds across the wire too.
#[test]
fn tcp_runtime_replays_the_same_stream_and_conserves() {
    let spec = hot_spec();
    let programs = MixGen::new(MixKind::HotKey, spec.clone(), 0xD0).programs(150);
    let des_fp = fingerprint(&MixGen::new(MixKind::HotKey, spec.clone(), 0xD0).programs(150));
    assert_eq!(fingerprint(&programs), des_fp, "runtimes fed different streams");

    let (fed, servers) =
        tcp_federation(ProtocolKind::CommitBefore, ConflictPolicy::Semantic, &spec);
    let batch = programs
        .into_iter()
        .map(|p| (p.per_site, p.intends_abort))
        .collect();
    let m = fed.run_concurrent(batch, 4);
    assert!(m.committed > 0, "nothing committed over TCP");
    let _ = fed.resolve_pending();
    assert_eq!(counter_sum(&fed), spec.initial_sum(), "sum drifted over TCP");
    drop(fed);
    for srv in servers {
        srv.shutdown();
    }
}

/// The tpcc-lite escrow reserves travel the wire: stock counters are
/// depleted by `Reserve` frames over real TCP, and the escrow bound holds
/// — no counter ever goes negative, even with a tiny hot stock set under
/// heavy skew where reserves start failing.
#[test]
fn tpcc_lite_escrow_bound_holds_over_tcp() {
    let spec = MixSpec {
        sites: 2,
        objects_per_site: 8,
        theta: 1.2,
        intended_abort_prob: 0.0,
        max_fanout: 2,
    };
    let (fed, servers) = tcp_federation(
        ProtocolKind::TwoPhaseCommit,
        ConflictPolicy::Semantic,
        &spec,
    );
    let batch: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> =
        MixGen::new(MixKind::TpccLite, spec.clone(), 0xE5)
            .programs(200)
            .into_iter()
            .map(|p| (p.per_site, p.intends_abort))
            .collect();
    let m = fed.run_concurrent(batch, 4);
    assert!(m.committed > 0, "no NewOrder committed over TCP");
    let floor = min_counter(&fed);
    assert!(floor >= 0, "escrow bound violated: counter at {floor}");
    drop(fed);
    for srv in servers {
        srv.shutdown();
    }
}
