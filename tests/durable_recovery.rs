//! Durable site recovery, end to end: `kill -9` a real site-server
//! process mid-run and bring it back from its `--wal-dir`.
//!
//! For each protocol: two `amc-site-server` processes on loopback, a
//! transfer workload through `Federation::with_transport`, then SIGKILL
//! one site. Transactions during the outage abort (an unreachable site
//! cannot vote yes) and each leaves the coordinator owing the dead site
//! its final state. The site restarts **in place** — same port, same WAL
//! directory — replays its log, restores its work journal, and the
//! coordinator's `resolve_pending` discharges every owed message. The
//! global sum must be conserved through all of it, and the admin
//! `Recovery` frame must report the replay.
//!
//! The property tests below pin the durable-log contract itself: any
//! frame-boundary prefix of a WAL replays to a consistent store (the
//! committed prefix, losers rolled back), a torn final frame is silently
//! truncated, and corruption *inside* the log stays fatal.

use amc::core::{Federation, FederationConfig, TxnOutcome};
use amc::engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc::net::marker::is_marker;
use amc::net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc::obs::ObsSink;
use amc::rpc::{RetryPolicy, TcpTransport};
use amc::types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use amc::wal::durable::{DurableFile, FRAME_HEADER};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SITES: u32 = 2;
const OBJS: u64 = 8;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amc-durable-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// --- process-level kill -9 ------------------------------------------------

/// Deadlines tuned so a dead site is declared down in well under a second.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(200),
        request_timeout: Duration::from_secs(2),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    }
}

/// The `amc-site-server` binary, found next to (or above) this test
/// executable in the target directory.
fn server_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("test exe path");
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join("amc-site-server");
        if candidate.exists() {
            return candidate;
        }
        dir = d.parent();
    }
    panic!(
        "amc-site-server not found near {}; build it first (cargo build -p amc-rpc)",
        exe.display()
    );
}

/// One spawned site-server process; killed on drop so failed assertions
/// do not leak children.
struct SiteProc {
    child: Child,
    addr: SocketAddr,
    recovered_line: Option<String>,
}

impl Drop for SiteProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_site(site: u32, protocol: ProtocolKind, wal_dir: &Path, listen: &str) -> SiteProc {
    let mut child = Command::new(server_bin())
        .args([
            "--site",
            &site.to_string(),
            "--listen",
            listen,
            "--protocol",
            protocol.label(),
            "--lock-timeout-ms",
            "200",
            "--wal-dir",
            wal_dir.to_str().expect("utf-8 wal dir"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn amc-site-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut recovered_line = None;
    let mut addr = None;
    for _ in 0..10 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.starts_with("recovered site ") {
            recovered_line = Some(line.to_string());
        }
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.parse().expect("printed socket addr"));
            break;
        }
    }
    SiteProc {
        child,
        addr: addr.expect("server never printed its listening address"),
        recovered_line,
    }
}

/// A two-site transfer over an explicit object-index pair.
fn transfer_on(from: u32, to: u32, fi: u64, ti: u64, amt: i64) -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, fi),
                delta: -amt,
            }],
        ),
        (
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, ti),
                delta: amt,
            }],
        ),
    ])
}

fn transfer(i: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    let (from, to) = if i.is_multiple_of(2) {
        (1u32, 2u32)
    } else {
        (2, 1)
    };
    transfer_on(from, to, i % OBJS, (i + 3) % OBJS, 1 + (i % 5) as i64)
}

/// Run `n` transfers; returns how many committed.
fn drive(fed: &Federation, base: u64, n: u64) -> u64 {
    let mut committed = 0;
    for i in base..base + n {
        let report = fed
            .run_transaction(&transfer(i))
            .unwrap_or_else(|e| panic!("transaction {i}: {e}"));
        if report.outcome == TxnOutcome::Committed {
            committed += 1;
        }
    }
    committed
}

fn user_sum(fed: &Federation) -> i64 {
    fed.dumps()
        .expect("dumps")
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

fn kill9_run(protocol: ProtocolKind) {
    let wal_dir = fresh_dir(protocol.label());
    let mut procs: BTreeMap<SiteId, SiteProc> = (1..=SITES)
        .map(|s| {
            (
                SiteId::new(s),
                spawn_site(s, protocol, &wal_dir, "127.0.0.1:0"),
            )
        })
        .collect();
    let addrs: BTreeMap<SiteId, SocketAddr> = procs.iter().map(|(s, p)| (*s, p.addr)).collect();
    let obs = ObsSink::enabled(1 << 16);
    let transport = Arc::new(TcpTransport::new(addrs.clone(), fast_policy(), obs));
    let fed = Federation::with_transport(
        FederationConfig::uniform(SITES, protocol),
        Arc::clone(&transport) as Arc<dyn FederationTransport>,
    );
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }

    // Phase 1: both sites up; commits land and are journaled durably.
    let before = drive(&fed, 0, 12);
    assert!(
        before > 0,
        "{protocol:?}: nothing committed before the kill"
    );

    // Phase 2: SIGKILL site 2 mid-run. Transfers that need it abort, and
    // every abort leaves the dead site owed its final state. Disjoint
    // object pairs keep the retained L1 locks from stalling each other.
    let victim = SiteId::new(2);
    procs.remove(&victim).expect("victim running"); // Drop kills -9.
    for k in 0..3u64 {
        let program = transfer_on(1, 2, 2 * k, 2 * k + 1, 5);
        let report = fed.run_transaction(&program).expect("absorbed outage");
        assert_eq!(
            report.outcome,
            TxnOutcome::Aborted,
            "{protocol:?}: a transfer through a dead site cannot commit"
        );
    }
    assert!(
        fed.pending_obligations() > 0,
        "{protocol:?}: the dead site is owed its aborts"
    );
    // Still down: nothing can be discharged.
    assert_eq!(fed.resolve_pending().expect("resolve while down"), 0);

    // Phase 3: restart in place — same port, same WAL directory.
    let addr = addrs[&victim];
    let revived = spawn_site(victim.raw(), protocol, &wal_dir, &addr.to_string());
    assert_eq!(revived.addr, addr, "restart must reuse the same port");
    let recovered = revived
        .recovered_line
        .as_deref()
        .expect("restart printed a recovery summary");
    assert!(
        recovered.contains("work entries restored"),
        "unexpected recovery line: {recovered}"
    );
    procs.insert(victim, revived);

    // Phase 4: the coordinator discharges every owed final-state message.
    for _ in 0..50 {
        if fed.pending_obligations() == 0 {
            break;
        }
        fed.resolve_pending().expect("resolve after restart");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        fed.pending_obligations(),
        0,
        "{protocol:?}: obligations never drained after restart"
    );

    // Phase 5: the revived site serves commits again.
    let after = drive(&fed, 200, 12);
    assert!(after > 0, "{protocol:?}: nothing committed after recovery");

    // The admin frame reports the replay: phase-1 commits were redone and
    // the journal survived the kill.
    match transport.admin(victim, AdminRequest::Recovery) {
        Ok(AdminReply::Recovery(Some(stats))) => {
            assert!(stats.committed > 0, "{protocol:?}: no replayed commits");
            assert!(
                stats.restored_entries > 0,
                "{protocol:?}: work journal did not survive"
            );
        }
        other => panic!("{protocol:?}: unexpected recovery reply {other:?}"),
    }

    // Atomicity through kill -9 + recovery: the global sum is conserved.
    assert_eq!(
        user_sum(&fed),
        i64::from(SITES) * OBJS as i64 * PER_OBJ,
        "{protocol:?}: global sum not conserved across the kill"
    );
    drop(procs);
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn two_phase_commit_survives_kill_9() {
    kill9_run(ProtocolKind::TwoPhaseCommit);
}

/// The fast-path acceptance pin: a site killed -9 while holding a
/// *piggybacked* prepare (`SubmitPrepare` applied + prepared, vote sent,
/// decision still pending) must recover identically to one holding a
/// classic prepare. The test plays coordinator itself over the raw
/// transport so the in-doubt window is deterministic, runs the same
/// transaction through both prepare flavours, and compares every
/// observable: the resurrected in-doubt count, the re-inquiry vote, and
/// the final committed state.
#[test]
fn killed_piggybacked_prepare_recovers_identically_to_classic() {
    use amc::net::Payload;
    use amc::types::{GlobalTxnId, GlobalVerdict, LocalVote};

    let protocol = ProtocolKind::TwoPhaseCommit;
    let site = SiteId::new(1);
    let gtx = GlobalTxnId::new(7);
    let ops = vec![Operation::Increment {
        obj: obj(1, 0),
        delta: 5,
    }];

    let ready = |p: &Payload| {
        matches!(
            p,
            Payload::Vote {
                vote: LocalVote::Ready,
                ..
            }
        )
    };
    let run_lane = |tag: &str, piggyback: bool| -> (u64, BTreeMap<ObjectId, Value>) {
        let wal_dir = fresh_dir(tag);
        let proc = spawn_site(site.raw(), protocol, &wal_dir, "127.0.0.1:0");
        let addrs = BTreeMap::from([(site, proc.addr)]);
        let transport = TcpTransport::new(addrs.clone(), fast_policy(), ObsSink::disabled());
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(1, i), Value::counter(PER_OBJ)))
            .collect();
        transport
            .admin(site, AdminRequest::Load(data))
            .expect("load");
        let vote = if piggyback {
            transport
                .call(
                    site,
                    Payload::SubmitPrepare {
                        gtx,
                        ops: ops.clone(),
                        solo: false,
                    },
                )
                .expect("submit-prepare")
        } else {
            let ack = transport
                .call(
                    site,
                    Payload::Submit {
                        gtx,
                        ops: ops.clone(),
                    },
                )
                .expect("submit");
            assert!(ready(&ack), "{tag}: work ack {ack:?}");
            transport
                .call(site, Payload::Prepare { gtx })
                .expect("prepare")
        };
        assert!(ready(&vote), "{tag}: vote {vote:?}");

        // kill -9 inside the in-doubt window, then restart in place.
        let addr = proc.addr;
        drop(proc);
        let revived = spawn_site(site.raw(), protocol, &wal_dir, &addr.to_string());
        assert_eq!(revived.addr, addr, "{tag}: restart must reuse the port");
        let transport = TcpTransport::new(addrs, fast_policy(), ObsSink::disabled());
        let stats = match transport.admin(site, AdminRequest::Recovery) {
            Ok(AdminReply::Recovery(Some(stats))) => stats,
            other => panic!("{tag}: unexpected recovery reply {other:?}"),
        };
        // The coordinator's re-inquiry lands on the resurrected prepare...
        let vote = transport
            .call(site, Payload::Prepare { gtx })
            .expect("re-inquiry");
        assert!(ready(&vote), "{tag}: post-recovery vote {vote:?}");
        // ...and the retransmitted decision completes the transaction.
        let fin = transport
            .call(
                site,
                Payload::Decision {
                    gtx,
                    verdict: GlobalVerdict::Commit,
                },
            )
            .expect("decision");
        assert!(matches!(fin, Payload::Finished { .. }), "{tag}: {fin:?}");
        let dump = match transport.admin(site, AdminRequest::Dump) {
            Ok(AdminReply::Dump(d)) => d,
            other => panic!("{tag}: unexpected dump reply {other:?}"),
        };
        drop(revived);
        let _ = std::fs::remove_dir_all(&wal_dir);
        (stats.in_doubt, dump)
    };

    let (fast_in_doubt, fast_dump) = run_lane("fastpath-kill", true);
    let (classic_in_doubt, classic_dump) = run_lane("classic-kill", false);
    assert_eq!(
        fast_in_doubt, 1,
        "the piggybacked prepare must be resurrected in doubt"
    );
    assert_eq!(fast_in_doubt, classic_in_doubt);
    assert_eq!(
        fast_dump, classic_dump,
        "recovery outcomes diverge between prepare flavours"
    );
    assert_eq!(
        fast_dump.get(&obj(1, 0)),
        Some(&Value::counter(PER_OBJ + 5))
    );
}

#[test]
fn commit_after_survives_kill_9() {
    kill9_run(ProtocolKind::CommitAfter);
}

#[test]
fn commit_before_survives_kill_9() {
    kill9_run(ProtocolKind::CommitBefore);
}

// --- durable-log properties ----------------------------------------------

/// Build a WAL: bulk-load three counters at 100, then one committed
/// increment per delta. Returns the log's bytes and frame boundaries.
fn build_log(dir: &Path, deltas: &[(u8, i64)]) -> (PathBuf, Vec<usize>, Vec<u8>) {
    let path = dir.join("engine.wal");
    {
        let (engine, report) =
            TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(1), &path).unwrap();
        assert_eq!(report.committed.len(), 0);
        engine
            .bulk_load(&[
                (ObjectId::new(0), Value::counter(PER_OBJ)),
                (ObjectId::new(1), Value::counter(PER_OBJ)),
                (ObjectId::new(2), Value::counter(PER_OBJ)),
            ])
            .unwrap();
        for (idx, delta) in deltas {
            let t = engine.begin().unwrap();
            engine
                .execute(
                    t,
                    &Operation::Increment {
                        obj: ObjectId::new(u64::from(idx % 3)),
                        delta: *delta,
                    },
                )
                .unwrap();
            engine.commit(t).unwrap();
        }
    }
    let opened = DurableFile::open(&path).unwrap();
    assert!(!opened.torn_truncated);
    let mut bounds = vec![0usize];
    for f in &opened.frames {
        bounds.push(bounds.last().unwrap() + f.len());
    }
    drop(opened);
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len(), *bounds.last().unwrap());
    (path, bounds, bytes)
}

/// The store a committed prefix must produce: the bulk load (commit #1)
/// then the first `c - 1` deltas; no commits at all ⇒ an empty store.
fn expected_after(deltas: &[(u8, i64)], commits: usize) -> BTreeMap<ObjectId, Value> {
    if commits == 0 {
        return BTreeMap::new();
    }
    let mut vals = [PER_OBJ, PER_OBJ, PER_OBJ];
    for (idx, delta) in deltas.iter().take(commits - 1) {
        vals[usize::from(idx % 3)] += delta;
    }
    (0u64..3)
        .map(|i| (ObjectId::new(i), Value::counter(vals[i as usize])))
        .collect()
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// Replaying any frame-boundary prefix of a durable log yields a
    /// consistent store: exactly the transactions whose commit record
    /// survived, in order; losers rolled back; no torn-tail report.
    #[test]
    fn any_frame_prefix_replays_to_a_consistent_store(
        deltas in proptest::collection::vec((any::<u8>(), -9i64..10), 1..16),
        cut in any::<u64>(),
    ) {
        let dir = fresh_dir("prefix");
        let (path, bounds, bytes) = build_log(&dir, &deltas);
        let keep = (cut as usize) % bounds.len();
        std::fs::write(&path, &bytes[..bounds[keep]]).unwrap();
        let (engine, report) =
            TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(1), &path).unwrap();
        prop_assert!(!report.torn_tail, "a frame-boundary cut is not torn");
        let commits = report.committed.len();
        prop_assert!(commits <= deltas.len() + 1);
        prop_assert_eq!(engine.dump().unwrap(), expected_after(&deltas, commits));
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn final frame — the crash landed mid-append — is truncated
    /// away and reported; the surviving prefix replays as usual.
    #[test]
    fn torn_final_frame_truncates_to_the_previous_boundary(
        deltas in proptest::collection::vec((any::<u8>(), -9i64..10), 1..16),
        cut in any::<u64>(),
        torn in any::<u64>(),
    ) {
        let dir = fresh_dir("torn");
        let (path, bounds, bytes) = build_log(&dir, &deltas);
        let keep = (cut as usize) % (bounds.len() - 1); // at least one frame cut
        let frame_len = bounds[keep + 1] - bounds[keep];
        let extra = 1 + (torn as usize) % (frame_len - 1); // strictly partial
        std::fs::write(&path, &bytes[..bounds[keep] + extra]).unwrap();
        let (engine, report) =
            TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(1), &path).unwrap();
        prop_assert!(report.torn_tail, "a partial final frame must be reported torn");
        let commits = report.committed.len();
        prop_assert_eq!(engine.dump().unwrap(), expected_after(&deltas, commits));
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corruption *before* the tail is not a crash artifact — it is data
    /// loss, and recovery must refuse rather than silently drop suffix
    /// transactions that were acknowledged as durable.
    #[test]
    fn mid_log_corruption_stays_fatal(
        deltas in proptest::collection::vec((any::<u8>(), -9i64..10), 1..16),
        pick in any::<u64>(),
    ) {
        let dir = fresh_dir("corrupt");
        let (path, bounds, mut bytes) = build_log(&dir, &deltas);
        let frames = bounds.len() - 1;
        prop_assert!(frames >= 2, "need a non-final frame to corrupt");
        let victim = (pick as usize) % (frames - 1); // never the last frame
        let frame_len = bounds[victim + 1] - bounds[victim];
        prop_assert!(frame_len > FRAME_HEADER, "records have payload");
        // Flip the frame's final payload byte: the checksum must catch it,
        // and a valid frame after it proves this is not a torn tail.
        bytes[bounds[victim + 1] - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let result = TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(1), &path);
        prop_assert!(result.is_err(), "mid-log corruption must refuse recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
