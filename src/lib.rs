//! # amc — Atomic Commitment for Integrated Database Systems
//!
//! A from-scratch Rust reproduction of Muth & Rakow (ICDE 1991): commit
//! protocols for federations of *unmodifiable* existing database systems,
//! and their combination with multi-level transactions. See the README for
//! the architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! ## One-minute tour
//!
//! ```
//! use amc::core::{Federation, FederationConfig, ProtocolKind, TxnOutcome};
//! use amc::types::{ObjectId, Operation, SiteId, Value};
//! use std::collections::BTreeMap;
//!
//! // Two sealed local engines + a central coordinator running the paper's
//! // commit-before protocol (§3.3).
//! let fed = Federation::new(FederationConfig::uniform(2, ProtocolKind::CommitBefore));
//!
//! // Objects are partitioned across sites; load one account per site.
//! let acct = |site: u32| ObjectId::new(u64::from(site) << 32);
//! for s in 1..=2u32 {
//!     fed.load_site(SiteId::new(s), &[(acct(s), Value::counter(100))]).unwrap();
//! }
//!
//! // A global transfer, decomposed per site (§2).
//! let program = BTreeMap::from([
//!     (SiteId::new(1), vec![Operation::Increment { obj: acct(1), delta: -25 }]),
//!     (SiteId::new(2), vec![Operation::Increment { obj: acct(2), delta: 25 }]),
//! ]);
//! let report = fed.run_transaction(&program).unwrap();
//! assert_eq!(report.outcome, TxnOutcome::Committed);
//! // The §3.3 commit path: one submit + one vote per participant, no
//! // decision round.
//! assert_eq!(report.messages, 4);
//!
//! let dumps = fed.dumps().unwrap();
//! assert_eq!(dumps[&SiteId::new(1)][&acct(1)], Value::counter(75));
//! assert_eq!(dumps[&SiteId::new(2)][&acct(2)], Value::counter(125));
//! ```
//!
//! Deterministic simulation with failures (§3.2/§3.3 crash handling):
//!
//! ```
//! use amc::core::{FederationConfig, ProtocolKind, SimConfig, SimFederation};
//! use amc::sim::FailurePlan;
//! use amc::types::*;
//! use std::collections::BTreeMap;
//!
//! let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::CommitBefore));
//! cfg.failures = FailurePlan::none().outage(
//!     SiteId::new(2),
//!     SimTime(100),
//!     SimDuration::from_millis(40),
//! );
//! let fed = SimFederation::new(cfg);
//! let acct = |site: u32| ObjectId::new(u64::from(site) << 32);
//! for s in 1..=2u32 {
//!     fed.load_site(SiteId::new(s), &[(acct(s), Value::counter(100))]);
//! }
//! let program = BTreeMap::from([
//!     (SiteId::new(1), vec![Operation::Increment { obj: acct(1), delta: -25 }]),
//!     (SiteId::new(2), vec![Operation::Increment { obj: acct(2), delta: 25 }]),
//! ]);
//! let report = fed.run(vec![(SimDuration::ZERO, program)]);
//! // The crash forced a global abort; atomicity held (nothing applied).
//! assert_eq!(report.outcomes[&GlobalTxnId::new(1)], GlobalVerdict::Abort);
//! assert!(report.unresolved.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use amc_core as core;
pub use amc_engine as engine;
pub use amc_lock as lock;
pub use amc_mlt as mlt;
pub use amc_net as net;
pub use amc_obs as obs;
pub use amc_paxos as paxos;
pub use amc_rpc as rpc;
pub use amc_shard as shard;
pub use amc_sim as sim;
pub use amc_storage as storage;
pub use amc_types as types;
pub use amc_verify as verify;
pub use amc_wal as wal;
pub use amc_workload as workload;
