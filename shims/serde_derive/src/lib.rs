//! Offline shim for `serde_derive`.
//!
//! The workspace annotates a few types with `#[derive(Serialize,
//! Deserialize)]` but never actually serializes them (no serde_json /
//! bincode anywhere), so these derives expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
///
/// Registers `serde` as a helper attribute so `#[serde(..)]` field and
/// container annotations keep compiling.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
