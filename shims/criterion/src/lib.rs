//! Offline shim for `criterion`.
//!
//! Benches compiled against this shim run each registered benchmark a
//! handful of iterations, time them with `std::time::Instant`, and print
//! one line per benchmark. There are no statistics, warm-ups, or HTML
//! reports — the point is that `cargo bench` keeps compiling and smoke-
//! running offline, not that the numbers are publication-grade.

// The shim mirrors criterion's public API surface, lint-compatible or not.
#![allow(
    clippy::should_implement_trait,
    clippy::new_without_default,
    clippy::manual_clamp
)]

use std::fmt;
use std::time::Instant;

/// Re-export of the standard optimizer barrier.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and parameter display value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Run `routine` `iters` times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    /// Run `routine` over fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (the shim runs `min(samples, 3)` iters).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let iters = self.sample_size.min(3).max(1) as u64;
        let mut b = Bencher { iters };
        let start = Instant::now();
        f(&mut b);
        let elapsed = start.elapsed();
        println!(
            "bench {}/{}: {} iters in {:?} (~{:?}/iter)",
            self.name,
            id,
            iters,
            elapsed,
            elapsed / iters as u32
        );
    }

    /// Register and smoke-run a benchmark.
    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, &mut f);
        self
    }

    /// Register and smoke-run a benchmark parameterized by `input`.
    pub fn bench_with_input<S: fmt::Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Build the default manager.
    pub fn default() -> Self {
        Criterion {}
    }

    /// Accept and ignore command-line configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            sample_size: 1,
        }
    }

    /// Register and smoke-run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Declare a group of benchmark functions (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function("plain", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::LargeInput)
        });
        group.finish();
        assert!(count > 0);
    }
}
