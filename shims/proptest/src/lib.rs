//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, integer-range and
//! tuple strategies, `.prop_map`, `Just`, `collection::{vec, btree_set,
//! btree_map}`, and `option::of`.
//!
//! Differences from upstream, deliberate for an offline build:
//! - **No shrinking.** A failing case reports the generated values via
//!   the assert message only.
//! - **Deterministic cases.** Each test's RNG is seeded from the test
//!   path and case index, so every run explores the same inputs —
//!   failures reproduce exactly without a persistence file.
//! - `prop_assert*` are plain `assert*` wrappers (they panic instead of
//!   returning `Err`, which is indistinguishable under `cargo test`).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: strategies
    /// generate final values directly and never shrink.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Box a strategy for storage in a heterogeneous arm list.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// A uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `arms`; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_set`, `btree_map`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicate draws collapse.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set whose elements come from `element`; up to `size` draws.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; duplicate keys collapse.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// A map with keys from `key`, values from `value`; up to `size` draws.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `option::of` — optional values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Bias toward Some so inner values get explored.
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` about a quarter of the time, otherwise `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Per-test configuration and the deterministic case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// A rejected or failed test case, carrying its reason.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Build a failure from any displayable reason.
        pub fn fail<R: std::fmt::Display>(reason: R) -> Self {
            TestCaseError {
                reason: reason.to_string(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type property-test bodies implicitly return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case RNG: seeded from the test path + case index.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `path`.
        pub fn for_case(path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // Bodies may use `?` with TestCaseError, like upstream.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
    )*};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniformly choose among strategies that yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_in_bounds(x in 3u64..9, y in -5i64..=5, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(a < 4);
            let _ = b;
        }

        fn combinators_compose(
            v in crate::collection::vec(0u32..10, 1..6),
            m in crate::collection::btree_map(0u64..4, any::<i64>(), 0..5),
            o in crate::option::of(any::<u32>().prop_map(|n| n % 7)),
            k in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(m.len() < 5);
            if let Some(n) = o {
                prop_assert!(n < 7);
            }
            prop_assert!((1..5).contains(&k));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let s = crate::collection::vec(0u64..1000, 0..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
