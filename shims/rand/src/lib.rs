//! Offline shim for `rand` 0.8.
//!
//! Implements the subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`,
//! `gen_range`, `gen_bool` — over xoshiro256++ seeded through SplitMix64
//! (the construction rand itself documents for `seed_from_u64`). The
//! stream differs from upstream rand's StdRng (ChaCha12), which is fine:
//! the workspace's determinism contract is "same seed, same stream",
//! never "the exact ChaCha bytes".

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw in `[0, n)` without modulo bias (Lemire rejection).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    // Rejection zone keeps the multiply-shift unbiased.
    let zone = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (n as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone || zone == 0 {
            return hi;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level drawing methods (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Uniform value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
