//! Offline shim for `parking_lot`.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the small API subset the workspace actually uses — `Mutex`,
//! `MutexGuard`, `Condvar`, `RwLock` — implemented over `std::sync`.
//! Semantics match parking_lot where the workspace depends on them:
//! `lock()` never returns a poison error (a poisoned std mutex is
//! recovered with `into_inner`, matching parking_lot's no-poisoning
//! behaviour), and `Condvar::wait*` take `&mut MutexGuard`.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar`] can temporarily take
/// it for a wait and put it back afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a timed condition-variable wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with the shim's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("RwLock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
