//! Offline shim for `bytes`.
//!
//! Provides the small `Bytes` subset the workspace uses: cheap-to-clone
//! immutable byte buffers backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of bytes.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::copy_from_slice(&[9]).len(), 1);
        assert!(Bytes::new().is_empty());
    }
}
