//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few types for
//! forward-compatibility but never serializes them, so the derives here
//! are no-ops re-exported from the shim `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};
