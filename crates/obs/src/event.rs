//! The event taxonomy: one typed variant per significant protocol
//! transition, stamped with virtual time and a global sequence number.

use amc_types::{GlobalTxnId, GlobalVerdict, LocalVote, ObjectId, SimTime, SiteId};
use std::fmt;

/// Why the router refused to deliver a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// The source or destination endpoint was crashed.
    EndpointDown,
    /// A directed partition covered the link.
    Partitioned,
    /// Random loss (configured probability or a nemesis loss burst).
    Loss,
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropCause::EndpointDown => "endpoint-down",
            DropCause::Partitioned => "partitioned",
            DropCause::Loss => "loss",
        })
    }
}

/// The typed payload of an observability [`Event`].
///
/// Variants mirror the transitions the paper reasons about in §3 and §5:
/// the vote/decide rounds of the three protocols, WAL forces, redo/undo
/// repetition, 2PC blocking windows, and the fault-plan events that
/// perturb them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The central system admitted a new global transaction.
    TxnStart,
    /// The router accepted a message for delivery.
    MsgSend {
        /// Payload label (e.g. `submit`, `vote`, `decision`).
        label: &'static str,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
    },
    /// The router dropped a message.
    MsgDrop {
        /// Payload label.
        label: &'static str,
        /// Sender.
        from: SiteId,
        /// Intended receiver.
        to: SiteId,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A message reached its destination site.
    MsgDeliver {
        /// Payload label.
        label: &'static str,
        /// Sender.
        from: SiteId,
    },
    /// The coordinator recorded a participant's vote.
    Vote {
        /// The participant that voted.
        from: SiteId,
        /// The vote itself.
        vote: LocalVote,
    },
    /// The coordinator reached a global decision.
    Decide {
        /// The verdict.
        verdict: GlobalVerdict,
    },
    /// The coordinator finished the protocol (all acks in).
    Done {
        /// The final verdict.
        verdict: GlobalVerdict,
    },
    /// The coordinator re-inquired a silent participant.
    Inquiry {
        /// The participant being probed.
        to: SiteId,
    },
    /// A restarted central system rebuilt this transaction's coordinator.
    Resume {
        /// The decision found in the central decision log; `None` means
        /// no decision record survived and the coordinator presumes abort.
        logged: Option<GlobalVerdict>,
    },
    /// A WAL force made the volatile tail stable.
    LogForce {
        /// Records made stable by this force.
        records: u64,
        /// Bytes made stable by this force.
        bytes: u64,
    },
    /// A group-commit leader forced the shared tail for a whole batch of
    /// committers (amortizing one physical force over `commits` acks).
    GroupForce {
        /// Commit acknowledgements this force covered.
        commits: u64,
        /// Records made stable by this force.
        records: u64,
        /// Bytes made stable by this force.
        bytes: u64,
    },
    /// One execution attempt of a commit-after redo transaction (§3.2).
    RedoRun {
        /// 1-based attempt number within this repetition chain.
        attempt: u64,
    },
    /// One execution attempt of a commit-before inverse transaction (§3.3).
    UndoRun {
        /// 1-based attempt number within this repetition chain.
        attempt: u64,
    },
    /// A 2PC participant entered the in-doubt window (prepared, vote sent,
    /// decision unknown) — the blocking the paper's §5 holds against 2PC.
    BlockEnter,
    /// The in-doubt window closed: the decision arrived and was applied.
    BlockExit {
        /// The decision that released the participant.
        verdict: GlobalVerdict,
    },
    /// An L1 (global) lock request was queued.
    LockWait {
        /// The object being locked.
        obj: ObjectId,
    },
    /// An L1 lock request resolved.
    LockGrant {
        /// The object being locked.
        obj: ObjectId,
        /// `true` if granted, `false` if rejected (timeout/deadlock).
        granted: bool,
    },
    /// A fault-plan crash hit this site (or the central system).
    Crash {
        /// Whether the crash tore the WAL tail mid-force.
        torn: bool,
    },
    /// A fault-plan restart recovered this site.
    Restart,
    /// An RPC request to a site failed (timeout, refused connection, bad
    /// reply) and the client is about to back off and try again.
    RpcRetry {
        /// The site being called.
        to: SiteId,
        /// 1-based attempt number that just failed.
        attempt: u32,
    },
    /// The RPC client discarded a broken connection and dialled a fresh
    /// one to the site.
    RpcReconnect {
        /// The site reconnected to.
        to: SiteId,
    },
    /// The site deliberately shed the request under load (`BufferExhausted`
    /// reply from an event-loop server past its in-flight cap). Distinct
    /// from [`EventKind::RpcRetry`]: the site is healthy and answered; the
    /// request was rejected as backpressure, not lost in transit.
    RpcShed {
        /// The site that shed the request.
        to: SiteId,
        /// 1-based attempt number that was shed.
        attempt: u32,
    },
    /// Restart recovery began replaying a durable log.
    RecoveryStart {
        /// Stable records found in the durable log at open.
        records: u64,
    },
    /// Recovery re-applied one durable log record to the store (redo or
    /// undo pass).
    ReplayedRecord {
        /// Log sequence number of the replayed record.
        lsn: u64,
    },
    /// A recovered in-doubt transaction learned its fate from the
    /// coordinator's final-state reply (§3.1's ready state resolving).
    InDoubtResolved {
        /// The verdict that settled the transaction.
        verdict: GlobalVerdict,
    },
}

impl EventKind {
    /// Short label for rendering and grouping.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TxnStart => "txn-start",
            EventKind::MsgSend { .. } => "msg-send",
            EventKind::MsgDrop { .. } => "msg-drop",
            EventKind::MsgDeliver { .. } => "msg-deliver",
            EventKind::Vote { .. } => "vote",
            EventKind::Decide { .. } => "decide",
            EventKind::Done { .. } => "done",
            EventKind::Inquiry { .. } => "inquiry",
            EventKind::Resume { .. } => "resume",
            EventKind::LogForce { .. } => "log-force",
            EventKind::GroupForce { .. } => "group-force",
            EventKind::RedoRun { .. } => "redo-run",
            EventKind::UndoRun { .. } => "undo-run",
            EventKind::BlockEnter => "block-enter",
            EventKind::BlockExit { .. } => "block-exit",
            EventKind::LockWait { .. } => "lock-wait",
            EventKind::LockGrant { .. } => "lock-grant",
            EventKind::Crash { .. } => "crash",
            EventKind::Restart => "restart",
            EventKind::RpcRetry { .. } => "rpc-retry",
            EventKind::RpcReconnect { .. } => "rpc-reconnect",
            EventKind::RpcShed { .. } => "rpc-shed",
            EventKind::RecoveryStart { .. } => "recovery-start",
            EventKind::ReplayedRecord { .. } => "replayed-record",
            EventKind::InDoubtResolved { .. } => "in-doubt-resolved",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::TxnStart => write!(f, "txn-start"),
            EventKind::MsgSend { label, from, to } => {
                write!(f, "msg-send {label}:{from}->{to}")
            }
            EventKind::MsgDrop {
                label,
                from,
                to,
                cause,
            } => write!(f, "msg-drop {label}:{from}->{to} ({cause})"),
            EventKind::MsgDeliver { label, from } => {
                write!(f, "msg-deliver {label} from {from}")
            }
            EventKind::Vote { from, vote } => write!(f, "vote {vote:?} from {from}"),
            EventKind::Decide { verdict } => write!(f, "decide {verdict}"),
            EventKind::Done { verdict } => write!(f, "done {verdict}"),
            EventKind::Inquiry { to } => write!(f, "inquiry -> {to}"),
            EventKind::Resume { logged: Some(v) } => {
                write!(f, "resume (decision log: {v})")
            }
            EventKind::Resume { logged: None } => {
                write!(f, "resume (no decision record: presume abort)")
            }
            EventKind::LogForce { records, bytes } => {
                write!(f, "log-force {records} records / {bytes} bytes")
            }
            EventKind::GroupForce {
                commits,
                records,
                bytes,
            } => {
                write!(
                    f,
                    "group-force {commits} commits / {records} records / {bytes} bytes"
                )
            }
            EventKind::RedoRun { attempt } => write!(f, "redo-run attempt {attempt}"),
            EventKind::UndoRun { attempt } => write!(f, "undo-run attempt {attempt}"),
            EventKind::BlockEnter => write!(f, "block-enter (in doubt)"),
            EventKind::BlockExit { verdict } => write!(f, "block-exit ({verdict})"),
            EventKind::LockWait { obj } => write!(f, "lock-wait {obj}"),
            EventKind::LockGrant { obj, granted: true } => write!(f, "lock-grant {obj}"),
            EventKind::LockGrant {
                obj,
                granted: false,
            } => write!(f, "lock-reject {obj}"),
            EventKind::Crash { torn: true } => write!(f, "crash (torn WAL tail)"),
            EventKind::Crash { torn: false } => write!(f, "crash"),
            EventKind::Restart => write!(f, "restart"),
            EventKind::RpcRetry { to, attempt } => {
                write!(f, "rpc-retry -> {to} (attempt {attempt} failed)")
            }
            EventKind::RpcReconnect { to } => write!(f, "rpc-reconnect -> {to}"),
            EventKind::RpcShed { to, attempt } => {
                write!(f, "rpc-shed -> {to} (attempt {attempt} load-shed)")
            }
            EventKind::RecoveryStart { records } => {
                write!(f, "recovery-start ({records} stable records)")
            }
            EventKind::ReplayedRecord { lsn } => write!(f, "replayed-record lsn {lsn}"),
            EventKind::InDoubtResolved { verdict } => {
                write!(f, "in-doubt-resolved ({verdict})")
            }
        }
    }
}

/// One observability event: *when* (virtual time + sequence number),
/// *who* (transaction, site), *what* ([`EventKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number, monotonically increasing per run. Breaks
    /// ties between events at the same virtual instant deterministically.
    pub seq: u64,
    /// Virtual time of the emission (`SimTime::ZERO` outside simulation).
    pub at: SimTime,
    /// The global transaction involved, if any (crashes/restarts have none).
    pub txn: Option<GlobalTxnId>,
    /// The site where the transition happened (`SiteId(0)` = central).
    pub site: SiteId,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let txn = match self.txn {
            Some(g) => g.to_string(),
            None => "-".to_string(),
        };
        write!(
            f,
            "[{:>5}] {:<12} {:<6} {:<7} {}",
            self.seq,
            self.at.to_string(),
            txn,
            self.site.to_string(),
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let e = Event {
            seq: 7,
            at: SimTime(1500),
            txn: Some(GlobalTxnId::new(3)),
            site: SiteId::new(0),
            kind: EventKind::Decide {
                verdict: GlobalVerdict::Commit,
            },
        };
        let s = e.to_string();
        assert!(s.contains("t+1500us"), "{s}");
        assert!(s.contains("G3"), "{s}");
        assert!(s.contains("decide commit"), "{s}");
    }

    #[test]
    fn labels_cover_all_kinds() {
        assert_eq!(EventKind::TxnStart.label(), "txn-start");
        assert_eq!(EventKind::BlockEnter.label(), "block-enter");
        assert_eq!(
            EventKind::Crash { torn: true }.label(),
            EventKind::Crash { torn: false }.label()
        );
        assert_eq!(
            EventKind::RpcRetry {
                to: SiteId::new(2),
                attempt: 3
            }
            .label(),
            "rpc-retry"
        );
        assert_eq!(
            EventKind::RpcReconnect { to: SiteId::new(1) }.label(),
            "rpc-reconnect"
        );
        assert_eq!(
            EventKind::RecoveryStart { records: 4 }.label(),
            "recovery-start"
        );
        assert_eq!(
            EventKind::ReplayedRecord { lsn: 9 }.label(),
            "replayed-record"
        );
        assert_eq!(
            EventKind::InDoubtResolved {
                verdict: GlobalVerdict::Commit
            }
            .label(),
            "in-doubt-resolved"
        );
    }
}
