//! A small deterministic histogram: exact samples, nearest-rank
//! percentiles, no floating-point accumulation order dependence.

use std::fmt;

/// An exact-sample histogram over `u64` values (microseconds, counts, …).
///
/// Percentiles use the nearest-rank definition on the sorted sample set,
/// so two runs that record the same multiset of values report identical
/// quantiles — the determinism the report tables assert on. Sample sets in
/// this workspace are small (at most a few thousand per run), so keeping
/// exact samples is cheaper than maintaining sketch buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, `None` when empty (never NaN).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&v| u128::from(v)).sum();
        Some(sum as f64 / self.samples.len() as f64)
    }

    /// Nearest-rank percentile, `p` in `0.0..=100.0`; `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, n) - 1])
    }

    /// Median (nearest rank).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 99th percentile (nearest rank).
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.p50(), self.p99(), self.max()) {
            (Some(p50), Some(p99), Some(max)) => {
                write!(f, "n={} p50={} p99={} max={}", self.n(), p50, p99, max)
            }
            _ => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_yields_none_not_nan() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut h = Histogram::new();
        for v in [15, 20, 35, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.percentile(30.0), Some(20));
        assert_eq!(h.p50(), Some(35));
        assert_eq!(h.percentile(100.0), Some(50));
        assert_eq!(h.p99(), Some(50));
        assert_eq!(h.mean(), Some(32.0));
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.p50(), Some(42));
        assert_eq!(h.p99(), Some(42));
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(42));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.n(), 2);
        assert_eq!(a.max(), Some(3));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 1, 9, 3] {
            a.record(v);
        }
        for v in [9, 3, 5, 1] {
            b.record(v);
        }
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p99(), b.p99());
        assert_eq!(a.mean(), b.mean());
    }
}
