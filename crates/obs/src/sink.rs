//! The shared emission handle every layer carries.

use crate::event::EventKind;
use crate::log::EventLog;
use amc_types::{GlobalTxnId, SimTime, SiteId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct SinkInner {
    /// The driver's virtual clock, mirrored here so layers without access
    /// to the event loop stamp events correctly. Microseconds.
    now: AtomicU64,
    log: Mutex<EventLog>,
}

/// A cheap-to-clone handle to one run's [`EventLog`].
///
/// Layers store an `ObsSink` unconditionally; the default
/// ([`ObsSink::disabled`]) holds no buffer and every [`ObsSink::emit`] is a
/// single branch. The discrete-event driver creates an enabled sink per
/// run, advances its clock with [`ObsSink::set_now`] as it pops events, and
/// snapshots the log into the run report at the end.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<SinkInner>>,
}

impl ObsSink {
    /// A no-op sink: emissions are discarded.
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// An active sink whose ring buffer holds at most `cap` events.
    pub fn enabled(cap: usize) -> Self {
        ObsSink {
            inner: Some(Arc::new(SinkInner {
                now: AtomicU64::new(0),
                log: Mutex::new(EventLog::new(cap)),
            })),
        }
    }

    /// Whether emissions are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the mirrored virtual clock (driver only).
    pub fn set_now(&self, at: SimTime) {
        if let Some(inner) = &self.inner {
            inner.now.store(at.micros(), Ordering::Relaxed);
        }
    }

    /// The mirrored virtual clock.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Some(inner) => SimTime(inner.now.load(Ordering::Relaxed)),
            None => SimTime::ZERO,
        }
    }

    /// Record one event, stamped with the mirrored clock.
    pub fn emit(&self, txn: Option<GlobalTxnId>, site: SiteId, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let at = SimTime(inner.now.load(Ordering::Relaxed));
            inner.log.lock().push(at, txn, site, kind);
        }
    }

    /// Clone the current log contents (the run report's snapshot).
    pub fn snapshot(&self) -> EventLog {
        match &self.inner {
            Some(inner) => inner.log.lock().clone(),
            None => EventLog::new(1),
        }
    }

    /// Run `f` against the live log; `None` when disabled.
    pub fn with_log<R>(&self, f: impl FnOnce(&EventLog) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.log.lock()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_sink_discards() {
        let sink = ObsSink::disabled();
        sink.emit(None, SiteId::new(1), EventKind::Restart);
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.with_log(|l| l.len()), None);
    }

    #[test]
    fn enabled_sink_stamps_with_mirrored_clock() {
        let sink = ObsSink::enabled(16);
        sink.set_now(SimTime(250));
        sink.emit(None, SiteId::new(2), EventKind::Crash { torn: false });
        sink.set_now(SimTime(900));
        sink.emit(None, SiteId::new(2), EventKind::Restart);
        let log = sink.snapshot();
        let at: Vec<SimTime> = log.events().map(|e| e.at).collect();
        assert_eq!(at, vec![SimTime(250), SimTime(900)]);
    }

    #[test]
    fn clones_share_one_log() {
        let sink = ObsSink::enabled(16);
        let clone = sink.clone();
        clone.emit(None, SiteId::new(1), EventKind::Restart);
        assert_eq!(sink.snapshot().len(), 1);
    }
}
