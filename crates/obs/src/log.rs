//! The per-run ring-buffered event log, per-transaction timelines, and
//! the histogram statistics derived from them.

use crate::event::{Event, EventKind};
use crate::hist::Histogram;
use amc_types::{GlobalTxnId, GlobalVerdict, SimTime, SiteId};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default ring capacity: generous for any single nemesis run (a 30 s
/// horizon with 5 ms retransmission produces a few tens of thousands of
/// events) while bounding memory across a 200-seed sweep.
pub const DEFAULT_EVENT_CAP: usize = 65_536;

/// A bounded, ordered log of [`Event`]s for one run.
///
/// When the ring is full the **oldest** events are evicted (and counted in
/// [`EventLog::evicted`]); sequence numbers keep increasing, so eviction is
/// detectable and the retained suffix remains deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    cap: usize,
    events: VecDeque<Event>,
    next_seq: u64,
    evicted: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    /// An empty log holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        EventLog {
            cap: cap.max(1),
            events: VecDeque::new(),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, at: SimTime, txn: Option<GlobalTxnId>, site: SiteId, kind: EventKind) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            at,
            txn,
            site,
            kind,
        });
        self.next_seq += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained events touching one transaction, oldest first.
    pub fn timeline(&self, gtx: GlobalTxnId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.txn == Some(gtx)).collect()
    }

    /// Render one transaction's timeline as text, one event per line.
    /// Empty string when the log holds nothing for that transaction.
    pub fn render_timeline(&self, gtx: GlobalTxnId) -> String {
        let mut out = String::new();
        for e in self.timeline(gtx) {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Render the full log as text (debugging aid).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Derive the histogram statistics the report tables print.
    ///
    /// Latencies pair each transaction's `TxnStart` with its `Done`;
    /// a transaction missing either endpoint simply contributes no sample:
    ///
    /// ```
    /// use amc_obs::{EventKind, EventLog};
    /// use amc_types::{GlobalTxnId, GlobalVerdict, SimTime, SiteId};
    ///
    /// let mut log = EventLog::new(1024);
    /// let (gtx, central) = (GlobalTxnId::new(1), SiteId::new(0));
    /// log.push(SimTime(10), Some(gtx), central, EventKind::TxnStart);
    /// log.push(
    ///     SimTime(260),
    ///     Some(gtx),
    ///     central,
    ///     EventKind::Done { verdict: GlobalVerdict::Commit },
    /// );
    ///
    /// let stats = log.derive();
    /// assert_eq!(stats.commit_latency_us.n(), 1);
    /// assert_eq!(stats.commit_latency_us.max(), Some(250));
    /// ```
    pub fn derive(&self) -> DerivedStats {
        let mut start: BTreeMap<GlobalTxnId, SimTime> = BTreeMap::new();
        let mut done: BTreeMap<GlobalTxnId, (SimTime, GlobalVerdict)> = BTreeMap::new();
        let mut block_open: BTreeMap<(GlobalTxnId, SiteId), SimTime> = BTreeMap::new();
        let mut redo_max: BTreeMap<GlobalTxnId, u64> = BTreeMap::new();
        let mut undo_max: BTreeMap<GlobalTxnId, u64> = BTreeMap::new();
        let mut msgs: BTreeMap<GlobalTxnId, u64> = BTreeMap::new();
        let mut stats = DerivedStats::default();

        for e in &self.events {
            match (&e.kind, e.txn) {
                (EventKind::TxnStart, Some(g)) => {
                    start.entry(g).or_insert(e.at);
                }
                (EventKind::Done { verdict }, Some(g)) => {
                    done.entry(g).or_insert((e.at, *verdict));
                }
                (EventKind::BlockEnter, Some(g)) => {
                    block_open.entry((g, e.site)).or_insert(e.at);
                }
                (EventKind::BlockExit { .. }, Some(g)) => {
                    if let Some(entered) = block_open.remove(&(g, e.site)) {
                        stats
                            .blocking_window_us
                            .record(e.at.since(entered).micros());
                    }
                }
                (EventKind::RedoRun { attempt }, Some(g)) => {
                    let m = redo_max.entry(g).or_insert(0);
                    *m = (*m).max(*attempt);
                }
                (EventKind::UndoRun { attempt }, Some(g)) => {
                    let m = undo_max.entry(g).or_insert(0);
                    *m = (*m).max(*attempt);
                }
                (EventKind::MsgSend { .. }, Some(g)) => {
                    *msgs.entry(g).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        for (g, (at, verdict)) in &done {
            if let Some(s) = start.get(g) {
                let us = at.since(*s).micros();
                stats.resolve_latency_us.record(us);
                if *verdict == GlobalVerdict::Commit {
                    stats.commit_latency_us.record(us);
                }
            }
        }
        for depth in redo_max.values() {
            stats.redo_depth.record(*depth);
        }
        for depth in undo_max.values() {
            stats.undo_depth.record(*depth);
        }
        for n in msgs.values() {
            stats.msgs_per_txn.record(*n);
        }
        stats
    }
}

/// Histogram statistics derived from one [`EventLog`].
///
/// All histograms are empty (never NaN) when the log lacks the relevant
/// events — e.g. `blocking_window_us` is empty for the two portable
/// protocols, which have no in-doubt window.
#[derive(Debug, Clone, Default)]
pub struct DerivedStats {
    /// `TxnStart` → `Done(commit)` per committed transaction, microseconds.
    pub commit_latency_us: Histogram,
    /// `TxnStart` → `Done(any)` per resolved transaction, microseconds.
    pub resolve_latency_us: Histogram,
    /// `BlockEnter` → `BlockExit` per (transaction, site) in-doubt window,
    /// microseconds (2PC only).
    pub blocking_window_us: Histogram,
    /// Deepest `RedoRun` attempt per transaction that redid at all.
    pub redo_depth: Histogram,
    /// Deepest `UndoRun` attempt per transaction that undid at all.
    pub undo_depth: Histogram,
    /// Router `MsgSend` count per transaction.
    pub msgs_per_txn: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::LocalVote;

    fn central() -> SiteId {
        SiteId::new(0)
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_monotonic() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(SimTime(i), None, central(), EventKind::Restart);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        assert_eq!(log.total_recorded(), 5);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn timeline_filters_by_txn() {
        let mut log = EventLog::default();
        let g1 = GlobalTxnId::new(1);
        let g2 = GlobalTxnId::new(2);
        log.push(SimTime(0), Some(g1), central(), EventKind::TxnStart);
        log.push(SimTime(5), Some(g2), central(), EventKind::TxnStart);
        log.push(
            SimTime(9),
            Some(g1),
            central(),
            EventKind::Done {
                verdict: GlobalVerdict::Commit,
            },
        );
        assert_eq!(log.timeline(g1).len(), 2);
        assert_eq!(log.timeline(g2).len(), 1);
        let text = log.render_timeline(g1);
        assert!(text.contains("txn-start"), "{text}");
        assert!(text.contains("done commit"), "{text}");
        assert!(!text.contains("G2"), "{text}");
    }

    #[test]
    fn derive_computes_latency_blocking_and_depth() {
        let mut log = EventLog::default();
        let g = GlobalTxnId::new(1);
        let s1 = SiteId::new(1);
        log.push(SimTime(100), Some(g), central(), EventKind::TxnStart);
        log.push(
            SimTime(150),
            Some(g),
            central(),
            EventKind::MsgSend {
                label: "submit",
                from: central(),
                to: s1,
            },
        );
        log.push(SimTime(200), Some(g), s1, EventKind::BlockEnter);
        log.push(
            SimTime(210),
            Some(g),
            central(),
            EventKind::Vote {
                from: s1,
                vote: LocalVote::Ready,
            },
        );
        log.push(SimTime(300), Some(g), s1, EventKind::RedoRun { attempt: 1 });
        log.push(SimTime(320), Some(g), s1, EventKind::RedoRun { attempt: 2 });
        log.push(
            SimTime(400),
            Some(g),
            s1,
            EventKind::BlockExit {
                verdict: GlobalVerdict::Commit,
            },
        );
        log.push(
            SimTime(600),
            Some(g),
            central(),
            EventKind::Done {
                verdict: GlobalVerdict::Commit,
            },
        );
        let d = log.derive();
        assert_eq!(d.commit_latency_us.p50(), Some(500));
        assert_eq!(d.resolve_latency_us.n(), 1);
        assert_eq!(d.blocking_window_us.p50(), Some(200));
        assert_eq!(d.redo_depth.max(), Some(2));
        assert!(d.undo_depth.is_empty());
        assert_eq!(d.msgs_per_txn.p50(), Some(1));
    }

    #[test]
    fn aborted_txns_count_in_resolve_but_not_commit_latency() {
        let mut log = EventLog::default();
        let g = GlobalTxnId::new(4);
        log.push(SimTime(0), Some(g), central(), EventKind::TxnStart);
        log.push(
            SimTime(70),
            Some(g),
            central(),
            EventKind::Done {
                verdict: GlobalVerdict::Abort,
            },
        );
        let d = log.derive();
        assert!(d.commit_latency_us.is_empty());
        assert_eq!(d.resolve_latency_us.p50(), Some(70));
    }
}
