//! # amc-obs — deterministic structured-event observability
//!
//! The paper's §5 comparison of the three commit protocols is entirely about
//! *where time and messages go*: blocking windows (2PC), repetition cost
//! (commit-after redo), inverse-transaction cost (commit-before undo). The
//! run-level totals in `RunMetrics` cannot answer those questions, so this
//! crate provides the missing layer: every significant protocol transition
//! (vote, decide, force, redo, undo, inquiry, block-enter/exit, lock
//! wait/grant, message send/drop/deliver, crash/restart) emits a typed
//! [`Event`] into a per-run ring-buffered [`EventLog`].
//!
//! ## Determinism contract
//!
//! Events are stamped with the **virtual** [`SimTime`](amc_types::SimTime) of the discrete-event
//! driver (never the wall clock) plus a monotonically increasing sequence
//! number, so for a given nemesis seed the full event sequence is
//! bit-for-bit reproducible. Threaded (wall-clock) runtimes may reuse the
//! same sink; their events carry `SimTime::ZERO` and only the *order* and
//! *counts* are meaningful there.
//!
//! From the log one derives:
//!
//! * per-transaction timelines ([`EventLog::timeline`],
//!   [`EventLog::render_timeline`]) — the `explain` binary's backbone;
//! * [`DerivedStats`] histograms ([`EventLog::derive`]): commit latency,
//!   blocking-window length, redo/undo chain depth, messages per
//!   transaction — the p50/p99 columns in the E1–E5 report tables.
//!
//! The [`ObsSink`] handle is a cheap-to-clone `Option<Arc<..>>`; a disabled
//! sink ([`ObsSink::disabled`]) costs one branch per emission site, so every
//! layer can carry one unconditionally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod event;
pub mod hist;
pub mod log;
pub mod sink;

pub use event::{DropCause, Event, EventKind};
pub use hist::Histogram;
pub use log::{DerivedStats, EventLog};
pub use sink::ObsSink;
