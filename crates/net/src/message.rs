//! Protocol messages.
//!
//! The names follow the paper's figures: `prepare`, `ready`/`abort` (here a
//! [`Payload::Vote`]), `commit`/`abort` (a [`Payload::Decision`]), `undo`
//! and `finished`. Two additions are implied but not drawn in the figures:
//! `Submit` ships the decomposed local transaction's operations to a site
//! (§2's decomposition step), and `Redo` retransmits them when a
//! commit-after repetition is needed after a site crash (§3.2's redo-log
//! kept "as a part of the global transaction manager").

use amc_types::{GlobalTxnId, GlobalVerdict, LocalVote, Operation, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a message says.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Central → local: execute these operations as one local transaction.
    /// `mode` is implied by the protocol the federation runs.
    Submit {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The decomposed local program.
        ops: Vec<Operation>,
    },
    /// Central → local: execute these operations **and** enter the ready
    /// state in one exchange — the 1PC vote piggyback (*To Vote Before
    /// Decide*): the site's reply doubles as its vote, so no separate
    /// `prepare` round is needed. With `solo` set the transaction touches
    /// only this site and the site commits locally with no global round at
    /// all; the reply then acknowledges a finished local commit.
    SubmitPrepare {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The decomposed local program.
        ops: Vec<Operation>,
        /// True when this site is the transaction's only participant:
        /// commit locally, skip the global decision round entirely.
        solo: bool,
    },
    /// Central → local: the `prepare` inquiry of Figs. 2/4/6.
    Prepare {
        /// Global transaction.
        gtx: GlobalTxnId,
    },
    /// Local → central: `ready` or `abort` (the paper's vote messages).
    Vote {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// Ready (can follow the decision) or aborted.
        vote: LocalVote,
    },
    /// Central → local: the global decision (`commit` / `abort`).
    Decision {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The verdict.
        verdict: GlobalVerdict,
    },
    /// Central → local (commit-after only): repeat the local transaction —
    /// carries the operations so a crashed site needs no local state.
    Redo {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// Operations to re-execute.
        ops: Vec<Operation>,
    },
    /// Central → local (commit-before only): undo the locally committed
    /// transaction by executing its inverse (§3.3).
    Undo {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The inverse operations, from the central undo-log.
        inverse_ops: Vec<Operation>,
    },
    /// Local → central: decision fully applied at this site.
    Finished {
        /// Global transaction.
        gtx: GlobalTxnId,
    },
    /// Central → acceptor: open this transaction's Paxos Commit instance
    /// set (Gray & Lamport's *BeginCommit*). The acceptor durably records
    /// the participant list so **any** coordinator replica can later
    /// enumerate and finish the transaction's per-site instances.
    PaxosRegister {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// Participant sites — one Paxos instance each.
        participants: Vec<SiteId>,
    },
    /// Acceptor → central: registration (or decision note) durably logged.
    PaxosAck {
        /// Global transaction.
        gtx: GlobalTxnId,
    },
    /// Central → acceptor: phase 1a — a recovery replica asks the
    /// acceptor to promise ballot `ballot` for every instance of `gtx`.
    PaxosP1a {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The ballot being opened (packed `round << 32 | replica`).
        ballot: u64,
    },
    /// Acceptor → central: phase 1b — the promise (or refusal), carrying
    /// everything the acceptor has accepted for `gtx` so the new leader
    /// can adopt the highest-ballot values.
    PaxosP1b {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The ballot this answers.
        ballot: u64,
        /// True when the acceptor promised `ballot`; false when it has
        /// already promised a higher one (carried back in `promised_up_to`).
        promised: bool,
        /// The highest ballot this acceptor has promised.
        promised_up_to: u64,
        /// Participant sites from the durable registration (empty when
        /// this acceptor never saw the registration).
        participants: Vec<SiteId>,
        /// Per-instance accepted values: `(site, accepted ballot,
        /// prepared?)`. Instances with no accepted value are omitted.
        accepted: Vec<(SiteId, u64, bool)>,
    },
    /// Central → acceptor: phase 2a — accept `prepared` as instance
    /// `site`'s value at `ballot`. With the co-location optimization the
    /// ballot-0 accept for a site's **own** instance never crosses the
    /// wire as a `PaxosP2a`: the site's vote message doubles as it.
    PaxosP2a {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The instance (one per participant site).
        site: SiteId,
        /// The ballot the value is proposed at.
        ballot: u64,
        /// The instance value: true = Prepared, false = Aborted.
        prepared: bool,
    },
    /// Central → acceptor: the global decision, for acceptors that are
    /// **not** participants of `gtx` (participant acceptors note the
    /// decision from the ordinary [`Payload::Decision`] they receive as
    /// sites). Closes the transaction's instances in the acceptor log so
    /// recovery replicas stop reporting it as open. Answered with a
    /// [`Payload::PaxosAck`].
    PaxosDecided {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The verdict.
        verdict: GlobalVerdict,
    },
    /// Acceptor → central: phase 2b — accepted (or refused because a
    /// higher ballot was promised).
    PaxosP2b {
        /// Global transaction.
        gtx: GlobalTxnId,
        /// The instance this answers.
        site: SiteId,
        /// The ballot this answers.
        ballot: u64,
        /// True when the value was durably accepted.
        accepted: bool,
    },
}

impl Payload {
    /// The global transaction this message belongs to.
    pub fn gtx(&self) -> GlobalTxnId {
        match self {
            Payload::Submit { gtx, .. }
            | Payload::SubmitPrepare { gtx, .. }
            | Payload::Prepare { gtx }
            | Payload::Vote { gtx, .. }
            | Payload::Decision { gtx, .. }
            | Payload::Redo { gtx, .. }
            | Payload::Undo { gtx, .. }
            | Payload::Finished { gtx }
            | Payload::PaxosRegister { gtx, .. }
            | Payload::PaxosAck { gtx }
            | Payload::PaxosP1a { gtx, .. }
            | Payload::PaxosP1b { gtx, .. }
            | Payload::PaxosP2a { gtx, .. }
            | Payload::PaxosDecided { gtx, .. }
            | Payload::PaxosP2b { gtx, .. } => *gtx,
        }
    }

    /// Short label for traces and E4 counters.
    pub fn label(&self) -> &'static str {
        match self {
            Payload::Submit { .. } => "submit",
            Payload::SubmitPrepare { solo: false, .. } => "submit-prepare",
            Payload::SubmitPrepare { solo: true, .. } => "submit-solo",
            Payload::Prepare { .. } => "prepare",
            Payload::Vote {
                vote: LocalVote::Ready,
                ..
            } => "ready",
            Payload::Vote {
                vote: LocalVote::ReadyReadOnly,
                ..
            } => "ready-ro",
            Payload::Vote {
                vote: LocalVote::Aborted,
                ..
            } => "abort-vote",
            Payload::Decision {
                verdict: GlobalVerdict::Commit,
                ..
            } => "commit",
            Payload::Decision {
                verdict: GlobalVerdict::Abort,
                ..
            } => "abort",
            Payload::Redo { .. } => "redo",
            Payload::Undo { .. } => "undo",
            Payload::Finished { .. } => "finished",
            Payload::PaxosRegister { .. } => "paxos-register",
            Payload::PaxosAck { .. } => "paxos-ack",
            Payload::PaxosP1a { .. } => "paxos-p1a",
            Payload::PaxosP1b { .. } => "paxos-p1b",
            Payload::PaxosP2a { .. } => "paxos-p2a",
            Payload::PaxosDecided { .. } => "paxos-decided",
            Payload::PaxosP2b { .. } => "paxos-p2b",
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.label(), self.gtx())
    }
}

/// A routed message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Content.
    pub payload: Payload,
}

impl Envelope {
    /// Construct.
    pub fn new(from: SiteId, to: SiteId, payload: Payload) -> Self {
        Envelope { from, to, payload }
    }

    /// The Fig. 1 invariant: every message involves the central system.
    pub fn respects_star_topology(&self) -> bool {
        (self.from.is_central() || self.to.is_central()) && self.from != self.to
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: {}", self.from, self.to, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(Payload::Prepare { gtx: gtx(1) }.label(), "prepare");
        assert_eq!(
            Payload::SubmitPrepare {
                gtx: gtx(1),
                ops: vec![],
                solo: false
            }
            .label(),
            "submit-prepare"
        );
        assert_eq!(
            Payload::SubmitPrepare {
                gtx: gtx(1),
                ops: vec![],
                solo: true
            }
            .label(),
            "submit-solo"
        );
        assert_eq!(
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
            .label(),
            "ready"
        );
        assert_eq!(
            Payload::Decision {
                gtx: gtx(1),
                verdict: GlobalVerdict::Commit
            }
            .label(),
            "commit"
        );
        assert_eq!(Payload::Finished { gtx: gtx(1) }.label(), "finished");
        assert_eq!(
            Payload::Undo {
                gtx: gtx(1),
                inverse_ops: vec![]
            }
            .label(),
            "undo"
        );
    }

    #[test]
    fn star_topology_invariant() {
        let c = SiteId::CENTRAL;
        let a = SiteId::new(1);
        let b = SiteId::new(2);
        let p = Payload::Prepare { gtx: gtx(1) };
        assert!(Envelope::new(c, a, p.clone()).respects_star_topology());
        assert!(Envelope::new(a, c, p.clone()).respects_star_topology());
        assert!(!Envelope::new(a, b, p.clone()).respects_star_topology());
        assert!(!Envelope::new(c, c, p).respects_star_topology());
    }

    #[test]
    fn display_is_readable() {
        let e = Envelope::new(
            SiteId::CENTRAL,
            SiteId::new(2),
            Payload::Prepare { gtx: gtx(7) },
        );
        assert_eq!(e.to_string(), "site-0 -> site-2: prepare(G7)");
    }

    #[test]
    fn gtx_accessor_covers_all_variants() {
        let variants = vec![
            Payload::Submit {
                gtx: gtx(3),
                ops: vec![],
            },
            Payload::SubmitPrepare {
                gtx: gtx(3),
                ops: vec![],
                solo: false,
            },
            Payload::Prepare { gtx: gtx(3) },
            Payload::Vote {
                gtx: gtx(3),
                vote: LocalVote::Aborted,
            },
            Payload::Decision {
                gtx: gtx(3),
                verdict: GlobalVerdict::Abort,
            },
            Payload::Redo {
                gtx: gtx(3),
                ops: vec![],
            },
            Payload::Undo {
                gtx: gtx(3),
                inverse_ops: vec![],
            },
            Payload::Finished { gtx: gtx(3) },
            Payload::PaxosRegister {
                gtx: gtx(3),
                participants: vec![],
            },
            Payload::PaxosAck { gtx: gtx(3) },
            Payload::PaxosP1a {
                gtx: gtx(3),
                ballot: 1,
            },
            Payload::PaxosP1b {
                gtx: gtx(3),
                ballot: 1,
                promised: true,
                promised_up_to: 1,
                participants: vec![],
                accepted: vec![],
            },
            Payload::PaxosP2a {
                gtx: gtx(3),
                site: SiteId::new(1),
                ballot: 1,
                prepared: true,
            },
            Payload::PaxosDecided {
                gtx: gtx(3),
                verdict: GlobalVerdict::Commit,
            },
            Payload::PaxosP2b {
                gtx: gtx(3),
                site: SiteId::new(1),
                ballot: 1,
                accepted: true,
            },
        ];
        for p in variants {
            assert_eq!(p.gtx(), gtx(3));
        }
    }
}
