//! Durable commit-propagation markers.
//!
//! §3.2/§3.3 demand that "committing the local transaction and propagating
//! the commit to the redo mechanism must be executed atomically", and offer
//! two implementations: write the log *into the existing database by the
//! local transaction* (an extra relation), or make redo/undo idempotent.
//! We implement the first: every redo-able (or undo) transaction also
//! inserts a **marker object** whose id is derived from the global
//! transaction id. The marker commits atomically with the transaction —
//! it *is* part of the transaction — so after any crash, "has the marker"
//! ⇔ "the transaction committed", and repetitions become exactly-once.
//!
//! Marker ids live in a reserved region (top bit set) so they can never
//! collide with workload objects, and the verification oracle can filter
//! them out of state comparisons.

use amc_types::{GlobalTxnId, ObjectId};

/// Top bit marks the reserved region.
const MARKER_BIT: u64 = 1 << 63;
/// Second-highest bit distinguishes undo markers from forward markers.
const UNDO_BIT: u64 = 1 << 62;
/// Within the reserved region, this bit marks shard-configuration
/// objects rather than per-transaction markers. Transaction ids stay far
/// below `1 << 61`, so the sub-regions cannot collide.
const EPOCH_BIT: u64 = 1 << 61;

/// The shard-epoch object: one reserved counter per site whose value is
/// the site's current shard-map epoch. An online reconfiguration bumps it
/// on every site of the new fleet **in one global transaction**, so the
/// epoch change commits (or aborts) atomically through the same machinery
/// as any workload transaction.
pub const EPOCH_OBJECT: ObjectId = ObjectId::new(MARKER_BIT | EPOCH_BIT);

/// Marker inserted by a forward (or redone) local transaction of `gtx`.
pub fn forward_marker(gtx: GlobalTxnId) -> ObjectId {
    ObjectId::new(MARKER_BIT | gtx.raw())
}

/// Marker inserted by the inverse (undo) transaction of `gtx`.
pub fn undo_marker(gtx: GlobalTxnId) -> ObjectId {
    ObjectId::new(MARKER_BIT | UNDO_BIT | gtx.raw())
}

/// True for any object in the reserved marker region.
pub fn is_marker(obj: ObjectId) -> bool {
    obj.raw() & MARKER_BIT != 0
}

/// Largest workload object id that avoids the reserved region.
pub const MAX_USER_OBJECT: u64 = (1 << 62) - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_are_distinct_and_reserved() {
        let g = GlobalTxnId::new(42);
        let f = forward_marker(g);
        let u = undo_marker(g);
        assert_ne!(f, u);
        assert!(is_marker(f));
        assert!(is_marker(u));
        assert!(!is_marker(ObjectId::new(MAX_USER_OBJECT)));
    }

    #[test]
    fn markers_are_injective_in_gtx() {
        let a = forward_marker(GlobalTxnId::new(1));
        let b = forward_marker(GlobalTxnId::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn gtx_recoverable_from_marker() {
        let g = GlobalTxnId::new(123_456);
        assert_eq!(forward_marker(g).raw() & MAX_USER_OBJECT, g.raw());
    }
}
