//! The federation transport abstraction.
//!
//! The coordinator's view of a local system is two request/reply surfaces:
//! the *protocol* surface (submit / prepare / decision / redo / undo, each
//! answered with a vote or a finished ack) and a small *admin* surface
//! (load, dump, counters) that experiments and tests use around runs. A
//! [`FederationTransport`] carries both. Two implementations exist:
//!
//! * [`InProcessTransport`] — the historical runtime: the manager lives in
//!   the same address space and a "message" is a function call, with
//!   `message_delay` slept on each leg to model the wire;
//! * `TcpTransport` (in `amc-rpc`) — each site is a separate TCP server
//!   and messages really cross the OS socket layer, with deadlines,
//!   retries, and reconnects.
//!
//! Both speak the same [`Payload`] vocabulary, so the deterministic
//! simulator, the threaded in-process federation, and the networked
//! runtime share one message grammar.

use crate::comm::{CommStats, LocalCommManager, SubmitMode};
use crate::journal::RecoveryStats;
use crate::message::Payload;
use amc_types::{AmcError, AmcResult, ObjectId, SiteId, Value};
use amc_wal::LogStats;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Out-of-band requests a driver sends to a site around protocol runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminRequest {
    /// Liveness probe.
    Ping,
    /// Bulk-load initial data into the site's engine.
    Load(Vec<(ObjectId, Value)>),
    /// Dump the committed state (markers included).
    Dump,
    /// Fetch the communication-manager counters.
    CommStats,
    /// Fetch the engine's WAL counters.
    LogStats,
    /// Fetch the stats of the site's last restart recovery pass.
    Recovery,
    /// Ask the site's co-located Paxos acceptor for every registered
    /// transaction that has no durably noted decision. A recovery replica
    /// unions these across a majority of acceptors to find the in-doubt
    /// transactions it must finish.
    PaxosOpen,
}

/// One in-doubt transaction reported by an acceptor's durable log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaxosOpenEntry {
    /// The registered transaction.
    pub gtx: amc_types::GlobalTxnId,
    /// Its participant sites (one Paxos instance each).
    pub participants: Vec<SiteId>,
}

/// Replies to [`AdminRequest`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminReply {
    /// The site is alive.
    Pong,
    /// The load completed.
    Loaded,
    /// The committed state.
    Dump(BTreeMap<ObjectId, Value>),
    /// Communication-manager counters.
    CommStats(CommStats),
    /// WAL counters.
    LogStats(LogStats),
    /// Stats of the last restart recovery pass (None if this site process
    /// started fresh rather than recovering from durable state).
    Recovery(Option<RecoveryStats>),
    /// The acceptor's registered-but-undecided transactions.
    PaxosOpen(Vec<PaxosOpenEntry>),
}

/// A bidirectional request/reply channel from the central system to every
/// site of the federation.
pub trait FederationTransport: Send + Sync {
    /// The sites reachable through this transport, ascending.
    fn sites(&self) -> Vec<SiteId>;

    /// Send one protocol message to `to` and wait for its reply.
    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload>;

    /// Send one admin request to `to` and wait for its reply.
    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply>;

    /// Whether concurrent [`FederationTransport::call`]s to *different*
    /// sites may overlap in flight. A coordinator may fan a message round
    /// out in parallel over a pipelining transport; over a
    /// non-pipelining one (notably the in-process transport, whose
    /// modelled delays assume serial delivery) it must keep the calls
    /// sequential. Defaults to `false` — serial — so a transport must
    /// opt in to concurrent dispatch.
    fn supports_pipelining(&self) -> bool {
        false
    }

    /// How many requests the sites answered with a load-shed
    /// (`BufferExhausted`) since this transport was created. The
    /// in-process transport never sheds; networked transports report
    /// their clients' counters so a run's backpressure is visible in the
    /// run-metric aggregates instead of being silently retried away.
    fn load_sheds(&self) -> u64 {
        0
    }
}

/// Run one protocol message against a local communication manager. This is
/// the single dispatch point shared by the in-process transport and the
/// TCP site server, so both runtimes interpret the vocabulary identically.
pub fn dispatch_to_manager(
    manager: &LocalCommManager,
    payload: Payload,
    mode: SubmitMode,
) -> AmcResult<Payload> {
    match payload {
        Payload::Submit { gtx, ops } => manager.handle_submit(gtx, ops, mode),
        Payload::SubmitPrepare { gtx, ops, solo } => {
            manager.handle_submit_prepare(gtx, ops, solo, mode)
        }
        Payload::Prepare { gtx } => manager.handle_prepare(gtx),
        Payload::Decision { gtx, verdict } => manager.handle_decision(gtx, verdict),
        Payload::Redo { gtx, ops } => manager.handle_redo(gtx, ops),
        Payload::Undo { gtx, inverse_ops } => manager.handle_undo(gtx, inverse_ops),
        Payload::Vote { .. } | Payload::Finished { .. } => {
            Err(AmcError::Protocol("central received its own reply".into()))
        }
        // Paxos messages address a site's co-located *acceptor*, not its
        // communication manager. Runtimes that host acceptors (the TCP
        // site server, the in-process acceptor decorator) intercept them
        // before this dispatch; reaching here means the site has none.
        Payload::PaxosRegister { .. }
        | Payload::PaxosP1a { .. }
        | Payload::PaxosP2a { .. }
        | Payload::PaxosDecided { .. } => {
            Err(AmcError::Protocol("site hosts no Paxos acceptor".into()))
        }
        Payload::PaxosAck { .. } | Payload::PaxosP1b { .. } | Payload::PaxosP2b { .. } => {
            Err(AmcError::Protocol("central received its own reply".into()))
        }
    }
}

/// Run one admin request against a local communication manager (shared by
/// the in-process transport and the TCP site server).
pub fn admin_to_manager(manager: &LocalCommManager, req: AdminRequest) -> AmcResult<AdminReply> {
    match req {
        AdminRequest::Ping => Ok(AdminReply::Pong),
        AdminRequest::Load(data) => {
            manager.handle().engine().bulk_load(&data)?;
            Ok(AdminReply::Loaded)
        }
        AdminRequest::Dump => Ok(AdminReply::Dump(manager.handle().engine().dump()?)),
        AdminRequest::CommStats => Ok(AdminReply::CommStats(manager.stats())),
        AdminRequest::LogStats => Ok(AdminReply::LogStats(manager.handle().engine().log_stats())),
        AdminRequest::Recovery => Ok(AdminReply::Recovery(manager.recovery_stats())),
        // As with the Paxos payloads above: answered by the acceptor host,
        // never by the bare communication manager.
        AdminRequest::PaxosOpen => Err(AmcError::Protocol("site hosts no Paxos acceptor".into())),
    }
}

/// The in-process transport: managers live in the same address space and a
/// message is a function call, with `message_delay` slept on each leg so a
/// `messages` count of *n* means *n* modelled hops.
pub struct InProcessTransport {
    managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
    mode: SubmitMode,
    message_delay: Duration,
}

impl InProcessTransport {
    /// Wrap `managers`; protocol submits will use `mode`.
    pub fn new(
        managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
        mode: SubmitMode,
        message_delay: Duration,
    ) -> Self {
        InProcessTransport {
            managers,
            mode,
            message_delay,
        }
    }

    fn manager(&self, site: SiteId) -> AmcResult<&Arc<LocalCommManager>> {
        self.managers.get(&site).ok_or(AmcError::SiteDown(site))
    }
}

impl FederationTransport for InProcessTransport {
    fn sites(&self) -> Vec<SiteId> {
        self.managers.keys().copied().collect()
    }

    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload> {
        let manager = self.manager(to)?;
        // Request leg.
        if !self.message_delay.is_zero() {
            std::thread::sleep(self.message_delay);
        }
        let reply = dispatch_to_manager(manager, payload, self.mode)?;
        // Reply leg: the model charges both directions of the exchange.
        if !self.message_delay.is_zero() {
            std::thread::sleep(self.message_delay);
        }
        Ok(reply)
    }

    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply> {
        admin_to_manager(self.manager(to)?, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::EngineHandle;
    use amc_engine::{TplConfig, TwoPLEngine};
    use amc_types::{GlobalTxnId, GlobalVerdict, Operation};

    fn transport(sites: u32) -> InProcessTransport {
        let managers = (1..=sites)
            .map(|s| {
                let site = SiteId::new(s);
                let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
                (
                    site,
                    Arc::new(LocalCommManager::new(
                        site,
                        EngineHandle::Preparable(engine),
                    )),
                )
            })
            .collect();
        InProcessTransport::new(managers, SubmitMode::CommitBefore, Duration::ZERO)
    }

    #[test]
    fn sites_are_ascending() {
        let t = transport(3);
        assert_eq!(
            t.sites(),
            vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]
        );
    }

    #[test]
    fn admin_load_then_dump_round_trips() {
        let t = transport(1);
        let site = SiteId::new(1);
        let data = vec![(ObjectId::new(7), Value::counter(42))];
        assert_eq!(
            t.admin(site, AdminRequest::Load(data)).unwrap(),
            AdminReply::Loaded
        );
        match t.admin(site, AdminRequest::Dump).unwrap() {
            AdminReply::Dump(d) => assert_eq!(d[&ObjectId::new(7)], Value::counter(42)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_runs_a_commit_before_submit_to_a_vote() {
        let t = transport(1);
        let site = SiteId::new(1);
        t.admin(
            site,
            AdminRequest::Load(vec![(ObjectId::new(1), Value::counter(10))]),
        )
        .unwrap();
        let gtx = GlobalTxnId::new(1);
        let reply = t
            .call(
                site,
                Payload::Submit {
                    gtx,
                    ops: vec![Operation::Increment {
                        obj: ObjectId::new(1),
                        delta: 5,
                    }],
                },
            )
            .unwrap();
        assert!(matches!(reply, Payload::Vote { vote, .. } if vote.is_yes()));
        let fin = t
            .call(
                site,
                Payload::Decision {
                    gtx,
                    verdict: GlobalVerdict::Commit,
                },
            )
            .unwrap();
        assert!(matches!(fin, Payload::Finished { .. }));
    }

    #[test]
    fn call_to_unknown_site_is_site_down() {
        let t = transport(1);
        let err = t
            .call(
                SiteId::new(9),
                Payload::Prepare {
                    gtx: GlobalTxnId::new(1),
                },
            )
            .unwrap_err();
        assert!(matches!(err, AmcError::SiteDown(s) if s == SiteId::new(9)));
    }

    #[test]
    fn reply_payloads_are_rejected_as_requests() {
        let t = transport(1);
        let err = t
            .call(
                SiteId::new(1),
                Payload::Finished {
                    gtx: GlobalTxnId::new(1),
                },
            )
            .unwrap_err();
        assert!(matches!(err, AmcError::Protocol(_)));
    }
}
