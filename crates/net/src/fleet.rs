//! A federation transport with **mutable site membership**.
//!
//! The historical [`InProcessTransport`](crate::transport::InProcessTransport)
//! freezes its manager map at construction — fine for a fixed fleet, useless
//! for online reconfiguration. [`FleetTransport`] keeps the same dispatch
//! semantics (a message is a function call with `message_delay` slept on
//! each leg) but puts the membership behind a lock so sites can be added
//! and removed *while coordinators are driving traffic*, and adds a
//! nemesis-style down-set so chaos tests can crash a site mid-migration
//! without tearing down its manager.
//!
//! Every coordinator of a sharded federation holds the **same**
//! `Arc<FleetTransport>`, so a membership change made by the reconfiguration
//! protocol is observed by all shards at once; transactions already past
//! the membership read (in flight on the old epoch) are exactly the ones
//! the router's drain gate waits out.

use crate::comm::{LocalCommManager, SubmitMode};
use crate::message::Payload;
use crate::transport::{
    admin_to_manager, dispatch_to_manager, AdminReply, AdminRequest, FederationTransport,
};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// An in-process transport whose site fleet can change while it is in use.
pub struct FleetTransport {
    members: RwLock<BTreeMap<SiteId, Arc<LocalCommManager>>>,
    /// Sites currently simulated as crashed: calls answer `SiteDown`
    /// without reaching the manager, exactly like a dead TCP peer.
    down: RwLock<BTreeSet<SiteId>>,
    mode: SubmitMode,
    message_delay: Duration,
}

impl FleetTransport {
    /// Wrap the initial fleet; protocol submits will use `mode`.
    pub fn new(
        managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
        mode: SubmitMode,
        message_delay: Duration,
    ) -> Self {
        FleetTransport {
            members: RwLock::new(managers),
            down: RwLock::new(BTreeSet::new()),
            mode,
            message_delay,
        }
    }

    /// Add `site` to the fleet (idempotent: re-adding replaces the manager).
    pub fn add_site(&self, site: SiteId, manager: Arc<LocalCommManager>) {
        self.members.write().insert(site, manager);
        self.down.write().remove(&site);
    }

    /// Remove `site` from the fleet, returning its manager if it was a
    /// member. Calls to a removed site fail with `SiteDown`.
    pub fn remove_site(&self, site: SiteId) -> Option<Arc<LocalCommManager>> {
        self.down.write().remove(&site);
        self.members.write().remove(&site)
    }

    /// Simulate a crash (`down = true`) or a recovery (`down = false`) of a
    /// member site. A down member stays in the fleet — its engine state is
    /// retained — but every call to it answers `SiteDown`.
    pub fn set_down(&self, site: SiteId, down: bool) {
        if down {
            self.down.write().insert(site);
        } else {
            self.down.write().remove(&site);
        }
    }

    /// Whether `site` is currently a fleet member (regardless of up/down).
    pub fn is_member(&self, site: SiteId) -> bool {
        self.members.read().contains_key(&site)
    }

    /// The manager of `site`, if it is a member and not simulated down.
    fn manager(&self, site: SiteId) -> AmcResult<Arc<LocalCommManager>> {
        if self.down.read().contains(&site) {
            return Err(AmcError::SiteDown(site));
        }
        self.members
            .read()
            .get(&site)
            .cloned()
            .ok_or(AmcError::SiteDown(site))
    }
}

impl FederationTransport for FleetTransport {
    fn sites(&self) -> Vec<SiteId> {
        self.members.read().keys().copied().collect()
    }

    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload> {
        let manager = self.manager(to)?;
        // Request leg.
        if !self.message_delay.is_zero() {
            std::thread::sleep(self.message_delay);
        }
        let reply = dispatch_to_manager(&manager, payload, self.mode)?;
        // Reply leg: the model charges both directions of the exchange.
        if !self.message_delay.is_zero() {
            std::thread::sleep(self.message_delay);
        }
        Ok(reply)
    }

    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply> {
        let manager = self.manager(to)?;
        admin_to_manager(&manager, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::EngineHandle;
    use amc_engine::{TplConfig, TwoPLEngine};
    use amc_types::{ObjectId, Value};

    fn manager(site: u32) -> Arc<LocalCommManager> {
        let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
        Arc::new(LocalCommManager::new(
            SiteId::new(site),
            EngineHandle::Preparable(engine),
        ))
    }

    fn fleet(sites: &[u32]) -> FleetTransport {
        let members = sites
            .iter()
            .map(|&s| (SiteId::new(s), manager(s)))
            .collect();
        FleetTransport::new(members, SubmitMode::CommitBefore, Duration::ZERO)
    }

    #[test]
    fn membership_changes_are_visible_in_sites() {
        let t = fleet(&[1, 2]);
        assert_eq!(t.sites(), vec![SiteId::new(1), SiteId::new(2)]);
        t.add_site(SiteId::new(3), manager(3));
        assert_eq!(
            t.sites(),
            vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)]
        );
        assert!(t.remove_site(SiteId::new(1)).is_some());
        assert_eq!(t.sites(), vec![SiteId::new(2), SiteId::new(3)]);
        assert!(!t.is_member(SiteId::new(1)));
    }

    #[test]
    fn removed_site_answers_site_down() {
        let t = fleet(&[1]);
        t.remove_site(SiteId::new(1));
        let err = t.admin(SiteId::new(1), AdminRequest::Ping).unwrap_err();
        assert!(matches!(err, AmcError::SiteDown(s) if s == SiteId::new(1)));
    }

    #[test]
    fn down_site_answers_site_down_but_keeps_state() {
        let t = fleet(&[1]);
        let site = SiteId::new(1);
        t.admin(
            site,
            AdminRequest::Load(vec![(ObjectId::new(5), Value::counter(9))]),
        )
        .unwrap();
        t.set_down(site, true);
        assert!(matches!(
            t.admin(site, AdminRequest::Ping),
            Err(AmcError::SiteDown(_))
        ));
        t.set_down(site, false);
        match t.admin(site, AdminRequest::Dump).unwrap() {
            AdminReply::Dump(d) => assert_eq!(d[&ObjectId::new(5)], Value::counter(9)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
