//! Durable work journal for the communication manager.
//!
//! §2 allows the components layered on top of the unmodifiable engines to
//! keep "recovery state of their own"; this module is that state made
//! explicit. The manager's `gtx → Work` map is exactly what a restarted
//! site needs to answer a coordinator's final-state inquiry:
//!
//! * **2PC** needs the `gtx ↔ ltx` mapping so a retransmitted decision can
//!   be matched against the in-doubt transaction the engine resurrected
//!   from its WAL;
//! * **commit-before** (§3.3) needs the captured *inverse operations*
//!   persisted **before** the local commit — a global abort arriving after
//!   a crash must still be able to run the inverse transaction;
//! * **commit-after** (§3.2) needs nothing: the coordinator re-ships the
//!   program in its `Redo` message and the markers make re-execution
//!   exactly-once.
//!
//! A [`WorkEntry`] is the serializable mirror of one work-map record. The
//! journal is append-only with last-record-per-`gtx` wins, so updating an
//! entry is just appending it again; `amc-rpc` stores entries in the same
//! CRC-framed on-disk format as the WAL.

use amc_types::{
    AmcError, AmcResult, GlobalTxnId, LocalTxnId, LocalVote, ObjectId, Operation, Value,
};

use crate::comm::SubmitMode;

/// One persisted work-map record: everything the manager must remember
/// about a global transaction across a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkEntry {
    /// The global transaction this entry belongs to.
    pub gtx: GlobalTxnId,
    /// Protocol flavour the submit ran under.
    pub mode: SubmitMode,
    /// The local transaction executing it (None for tombstones).
    pub ltx: Option<LocalTxnId>,
    /// Commit-before: the forward transaction committed locally. Across a
    /// restart this field is advisory only — the marker is authoritative.
    pub committed_locally: bool,
    /// The vote reported to the coordinator (None until voted).
    pub vote: Option<LocalVote>,
    /// The decomposed operations (empty for tombstones).
    pub ops: Vec<Operation>,
    /// Commit-before: inverse actions in forward order (§3.3 undo-log).
    pub inverse_ops: Vec<Operation>,
}

fn put_op(out: &mut Vec<u8>, op: &Operation) {
    match *op {
        Operation::Read { obj } => {
            out.push(0);
            out.extend_from_slice(&obj.raw().to_le_bytes());
        }
        Operation::Write { obj, value } => {
            out.push(1);
            out.extend_from_slice(&obj.raw().to_le_bytes());
            out.extend_from_slice(&value.to_bytes());
        }
        Operation::Increment { obj, delta } => {
            out.push(2);
            out.extend_from_slice(&obj.raw().to_le_bytes());
            out.extend_from_slice(&delta.to_le_bytes());
        }
        Operation::Insert { obj, value } => {
            out.push(3);
            out.extend_from_slice(&obj.raw().to_le_bytes());
            out.extend_from_slice(&value.to_bytes());
        }
        Operation::Delete { obj } => {
            out.push(4);
            out.extend_from_slice(&obj.raw().to_le_bytes());
        }
        Operation::Reserve { obj, amount } => {
            out.push(5);
            out.extend_from_slice(&obj.raw().to_le_bytes());
            out.extend_from_slice(&amount.to_le_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> AmcResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(AmcError::Corruption("work journal entry truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> AmcResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> AmcResult<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> AmcResult<i64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(b))
    }

    fn value(&mut self) -> AmcResult<Value> {
        let mut b = [0u8; 12];
        b.copy_from_slice(self.take(12)?);
        Ok(Value::from_bytes(&b))
    }

    fn op(&mut self) -> AmcResult<Operation> {
        let tag = self.u8()?;
        let obj = ObjectId::new(self.u64()?);
        Ok(match tag {
            0 => Operation::Read { obj },
            1 => Operation::Write {
                obj,
                value: self.value()?,
            },
            2 => Operation::Increment {
                obj,
                delta: self.i64()?,
            },
            3 => Operation::Insert {
                obj,
                value: self.value()?,
            },
            4 => Operation::Delete { obj },
            5 => Operation::Reserve {
                obj,
                amount: self.u64()?,
            },
            t => {
                return Err(AmcError::Corruption(format!(
                    "work journal: unknown operation tag {t}"
                )))
            }
        })
    }
}

fn put_ops(out: &mut Vec<u8>, ops: &[Operation]) {
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        put_op(out, op);
    }
}

fn get_ops(c: &mut Cursor<'_>) -> AmcResult<Vec<Operation>> {
    let mut b = [0u8; 4];
    b.copy_from_slice(c.take(4)?);
    let n = u32::from_le_bytes(b) as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ops.push(c.op()?);
    }
    Ok(ops)
}

impl WorkEntry {
    /// Serialize to the journal's self-describing binary layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 32 * (self.ops.len() + self.inverse_ops.len()));
        out.extend_from_slice(&self.gtx.raw().to_le_bytes());
        out.push(match self.mode {
            SubmitMode::TwoPhase => 0,
            SubmitMode::CommitAfter => 1,
            SubmitMode::CommitBefore => 2,
        });
        match self.ltx {
            Some(l) => {
                out.push(1);
                out.extend_from_slice(&l.raw().to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.push(u8::from(self.committed_locally));
        out.push(match self.vote {
            None => 0,
            Some(LocalVote::Ready) => 1,
            Some(LocalVote::ReadyReadOnly) => 2,
            Some(LocalVote::Aborted) => 3,
        });
        put_ops(&mut out, &self.ops);
        put_ops(&mut out, &self.inverse_ops);
        out
    }

    /// Decode an entry previously produced by [`WorkEntry::encode`].
    pub fn decode(buf: &[u8]) -> AmcResult<WorkEntry> {
        let mut c = Cursor { buf, pos: 0 };
        let gtx = GlobalTxnId::new(c.u64()?);
        let mode = match c.u8()? {
            0 => SubmitMode::TwoPhase,
            1 => SubmitMode::CommitAfter,
            2 => SubmitMode::CommitBefore,
            t => {
                return Err(AmcError::Corruption(format!(
                    "work journal: unknown submit mode {t}"
                )))
            }
        };
        let has_ltx = c.u8()? != 0;
        let raw_ltx = c.u64()?;
        let ltx = has_ltx.then(|| LocalTxnId::new(raw_ltx));
        let committed_locally = c.u8()? != 0;
        let vote = match c.u8()? {
            0 => None,
            1 => Some(LocalVote::Ready),
            2 => Some(LocalVote::ReadyReadOnly),
            3 => Some(LocalVote::Aborted),
            t => {
                return Err(AmcError::Corruption(format!(
                    "work journal: unknown vote tag {t}"
                )))
            }
        };
        let ops = get_ops(&mut c)?;
        let inverse_ops = get_ops(&mut c)?;
        if c.pos != buf.len() {
            return Err(AmcError::Corruption(
                "work journal: trailing bytes after entry".into(),
            ));
        }
        Ok(WorkEntry {
            gtx,
            mode,
            ltx,
            committed_locally,
            vote,
            ops,
            inverse_ops,
        })
    }
}

/// A sink that persists [`WorkEntry`] records as they change.
///
/// The manager calls [`WorkJournal::record`] at every point where losing
/// the in-memory work map would lose protocol obligations: after a submit
/// completes (all modes), **before** the commit-before local commit (so
/// the inverse operations are stable first), and when a tombstone is laid
/// down. Implementations must be crash-consistent: a record call returns
/// only once the entry is durable.
pub trait WorkJournal: Send + Sync {
    /// Persist `entry`, superseding any earlier record for the same `gtx`.
    fn record(&self, entry: &WorkEntry);
}

/// Summary of one site-recovery pass, reported over the admin channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Local transactions whose commit record was replayed from the WAL.
    pub committed: u64,
    /// Loser transactions rolled back during restart (undo pass).
    pub rolled_back: u64,
    /// Prepared transactions resurrected in doubt, awaiting the
    /// coordinator's final state (§3.1's blocking window).
    pub in_doubt: u64,
    /// WAL records replayed (redo + undo applications).
    pub replayed: u64,
    /// Work-map entries restored from the work journal.
    pub restored_entries: u64,
    /// Whether a torn tail was truncated from the WAL at open.
    pub torn_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> WorkEntry {
        WorkEntry {
            gtx: GlobalTxnId::new(42),
            mode: SubmitMode::CommitBefore,
            ltx: Some(LocalTxnId::new(7)),
            committed_locally: true,
            vote: Some(LocalVote::Ready),
            ops: vec![
                Operation::Increment {
                    obj: ObjectId::new(1),
                    delta: -5,
                },
                Operation::Write {
                    obj: ObjectId::new(2),
                    value: Value::tagged(9, 3),
                },
                Operation::Reserve {
                    obj: ObjectId::new(3),
                    amount: 2,
                },
            ],
            inverse_ops: vec![Operation::Increment {
                obj: ObjectId::new(1),
                delta: 5,
            }],
        }
    }

    #[test]
    fn roundtrip_full_entry() {
        let e = entry();
        assert_eq!(WorkEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn roundtrip_tombstone_shape() {
        let e = WorkEntry {
            gtx: GlobalTxnId::new(1),
            mode: SubmitMode::TwoPhase,
            ltx: None,
            committed_locally: false,
            vote: Some(LocalVote::Aborted),
            ops: Vec::new(),
            inverse_ops: Vec::new(),
        };
        assert_eq!(WorkEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn roundtrip_every_operation_kind() {
        let obj = ObjectId::new(9);
        for op in [
            Operation::Read { obj },
            Operation::Write {
                obj,
                value: Value::counter(-1),
            },
            Operation::Increment {
                obj,
                delta: i64::MIN,
            },
            Operation::Insert {
                obj,
                value: Value::ZERO,
            },
            Operation::Delete { obj },
            Operation::Reserve {
                obj,
                amount: u64::MAX,
            },
        ] {
            let e = WorkEntry {
                ops: vec![op],
                ..entry()
            };
            assert_eq!(WorkEntry::decode(&e.encode()).unwrap(), e);
        }
    }

    #[test]
    fn truncated_entry_is_corruption() {
        let bytes = entry().encode();
        for cut in [0, 5, 12, bytes.len() - 1] {
            assert!(matches!(
                WorkEntry::decode(&bytes[..cut]),
                Err(AmcError::Corruption(_))
            ));
        }
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut bytes = entry().encode();
        bytes.push(0);
        assert!(matches!(
            WorkEntry::decode(&bytes),
            Err(AmcError::Corruption(_))
        ));
    }

    #[test]
    fn unknown_tags_are_corruption() {
        let mut bytes = entry().encode();
        bytes[8] = 9; // mode byte
        assert!(matches!(
            WorkEntry::decode(&bytes),
            Err(AmcError::Corruption(_))
        ));
    }
}
