//! The deterministic simulated network.
//!
//! The router owns no event queue: the simulation driver asks it to *admit*
//! a message and gets back either `Deliver(after)` — schedule delivery
//! `after` later — or `Dropped` (destination down, or loss injected). This
//! keeps the router reusable: the DES driver schedules real events, unit
//! tests just inspect decisions.
//!
//! Invariants enforced here:
//! * star topology (Fig. 1) — non-central ↔ non-central traffic is a bug,
//!   not a droppable condition;
//! * messages *to* a down site vanish (its communication manager is dead);
//! * messages *from* a down site cannot be sent (the driver shouldn't ask,
//!   but a defensive drop keeps crash races honest);
//! * messages crossing a **severed link** vanish while both endpoints stay
//!   live — the partition fault the nemesis composes with crashes. Links
//!   are directed, so an asymmetric partition (site hears the central, the
//!   central never hears the site) is expressible.

use crate::message::Envelope;
use amc_obs::{DropCause, EventKind, ObsSink};
use amc_sim::{LatencyModel, SimRng};
use amc_types::{SimDuration, SiteId};
use std::collections::HashSet;

/// Router behaviour knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Latency applied to every delivered message.
    pub latency: LatencyModel,
    /// Independent loss probability per message.
    pub loss_probability: f64,
    /// Probability a delivered message is *duplicated* (at-least-once
    /// delivery — retransmitting transports do this; the protocols must
    /// tolerate it, which is what the markers and tombstones are for).
    pub duplicate_probability: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            latency: LatencyModel::Fixed(SimDuration::from_micros(500)),
            loss_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

/// The router's verdict on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Deliver after this delay.
    Deliver(SimDuration),
    /// Deliver twice, after each delay (duplication injected).
    DeliverTwice(SimDuration, SimDuration),
    /// Silently dropped (loss or down destination).
    Dropped,
}

/// Network traffic accounting, per router lifetime.
///
/// Replaces the old `(sent, dropped)` tuple so new drop causes can be
/// accounted without breaking every caller again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages admitted (including ones subsequently dropped).
    pub sent: u64,
    /// Messages dropped for any reason (down endpoint, severed link, loss).
    pub dropped: u64,
    /// Messages delivered twice (duplication injected).
    pub duplicated: u64,
    /// Subset of `dropped` caused by a severed link (partition), as opposed
    /// to a down endpoint or random loss.
    pub partitioned_drops: u64,
}

impl NetStats {
    /// Counter-wise difference `self - earlier` (saturating): the traffic
    /// since an earlier [`Router::stats`] snapshot. Multi-run sweeps that
    /// reuse one router take a snapshot per run and diff, instead of
    /// reporting lifetime totals as if they were per-run.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            sent: self.sent.saturating_sub(earlier.sent),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            partitioned_drops: self
                .partitioned_drops
                .saturating_sub(earlier.partitioned_drops),
        }
    }
}

/// Deterministic star network.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    rng: SimRng,
    down: HashSet<SiteId>,
    /// Severed directed links: a message `from -> to` listed here vanishes
    /// even though both endpoints are live.
    partitioned: HashSet<(SiteId, SiteId)>,
    /// While set, overrides `cfg.loss_probability` (a nemesis loss burst).
    burst_loss: Option<f64>,
    stats: NetStats,
    obs: ObsSink,
}

impl Router {
    /// New router with its own RNG stream.
    pub fn new(cfg: RouterConfig, rng: SimRng) -> Self {
        Router {
            cfg,
            rng,
            down: HashSet::new(),
            partitioned: HashSet::new(),
            burst_loss: None,
            stats: NetStats::default(),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink; every admitted message emits a
    /// `MsgSend` (or `MsgDrop` with its cause) event.
    pub fn attach_obs(&mut self, sink: ObsSink) {
        self.obs = sink;
    }

    /// Mark a site down (crash).
    pub fn site_down(&mut self, site: SiteId) {
        self.down.insert(site);
    }

    /// Mark a site up again (restart).
    pub fn site_up(&mut self, site: SiteId) {
        self.down.remove(&site);
    }

    /// Whether a site is currently down.
    pub fn is_down(&self, site: SiteId) -> bool {
        self.down.contains(&site)
    }

    /// Sever the directed link `from -> to`: messages in that direction are
    /// dropped while both endpoints stay live. Idempotent.
    pub fn partition(&mut self, from: SiteId, to: SiteId) {
        self.partitioned.insert((from, to));
    }

    /// Heal the directed link `from -> to`. Idempotent.
    pub fn heal(&mut self, from: SiteId, to: SiteId) {
        self.partitioned.remove(&(from, to));
    }

    /// Sever both directions between `a` and `b`.
    pub fn partition_both(&mut self, a: SiteId, b: SiteId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Heal both directions between `a` and `b`.
    pub fn heal_both(&mut self, a: SiteId, b: SiteId) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Whether the directed link `from -> to` is currently severed.
    pub fn is_partitioned(&self, from: SiteId, to: SiteId) -> bool {
        self.partitioned.contains(&(from, to))
    }

    /// Begin a loss burst: until [`Router::clear_loss_burst`], every message
    /// is lost with `probability` instead of the configured baseline.
    pub fn set_loss_burst(&mut self, probability: f64) {
        self.burst_loss = Some(probability.clamp(0.0, 1.0));
    }

    /// End a loss burst, restoring the configured loss probability.
    pub fn clear_loss_burst(&mut self) {
        self.burst_loss = None;
    }

    /// Decide what happens to `env`.
    ///
    /// # Panics
    /// On a star-topology violation — that is a protocol bug, never a
    /// runtime condition.
    pub fn route(&mut self, env: &Envelope) -> Routing {
        assert!(
            env.respects_star_topology(),
            "star topology violated: {env}"
        );
        self.stats.sent += 1;
        if self.down.contains(&env.from) || self.down.contains(&env.to) {
            self.stats.dropped += 1;
            self.emit_drop(env, DropCause::EndpointDown);
            return Routing::Dropped;
        }
        if self.partitioned.contains(&(env.from, env.to)) {
            self.stats.dropped += 1;
            self.stats.partitioned_drops += 1;
            self.emit_drop(env, DropCause::Partitioned);
            return Routing::Dropped;
        }
        let loss = self.burst_loss.unwrap_or(self.cfg.loss_probability);
        if loss > 0.0 && self.rng.chance(loss) {
            self.stats.dropped += 1;
            self.emit_drop(env, DropCause::Loss);
            return Routing::Dropped;
        }
        if self.obs.is_enabled() {
            self.obs.emit(
                Some(env.payload.gtx()),
                env.from,
                EventKind::MsgSend {
                    label: env.payload.label(),
                    from: env.from,
                    to: env.to,
                },
            );
        }
        let first = self.cfg.latency.sample(&mut self.rng);
        if self.cfg.duplicate_probability > 0.0 && self.rng.chance(self.cfg.duplicate_probability) {
            self.stats.duplicated += 1;
            let second = self.cfg.latency.sample(&mut self.rng);
            return Routing::DeliverTwice(first, second);
        }
        Routing::Deliver(first)
    }

    fn emit_drop(&self, env: &Envelope, cause: DropCause) {
        if self.obs.is_enabled() {
            self.obs.emit(
                Some(env.payload.gtx()),
                env.from,
                EventKind::MsgDrop {
                    label: env.payload.label(),
                    from: env.from,
                    to: env.to,
                    cause,
                },
            );
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zero the traffic counters. A sweep that reuses one router across
    /// runs calls this between them so each run reports its own traffic
    /// (the alternative is diffing snapshots via [`NetStats::since`]).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.stats.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use amc_types::GlobalTxnId;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope::new(
            SiteId::new(from),
            SiteId::new(to),
            Payload::Prepare {
                gtx: GlobalTxnId::new(1),
            },
        )
    }

    #[test]
    fn fixed_latency_delivery() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        assert_eq!(
            r.route(&env(0, 1)),
            Routing::Deliver(SimDuration::from_micros(500))
        );
        assert_eq!(
            r.stats(),
            NetStats {
                sent: 1,
                ..NetStats::default()
            }
        );
    }

    #[test]
    fn down_destination_drops() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.site_down(SiteId::new(1));
        assert_eq!(r.route(&env(0, 1)), Routing::Dropped);
        assert!(r.is_down(SiteId::new(1)));
        r.site_up(SiteId::new(1));
        assert!(matches!(r.route(&env(0, 1)), Routing::Deliver(_)));
        let s = r.stats();
        assert_eq!((s.sent, s.dropped), (2, 1));
        assert_eq!(s.partitioned_drops, 0, "down endpoint is not a partition");
    }

    #[test]
    fn down_sender_drops() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.site_down(SiteId::new(1));
        assert_eq!(r.route(&env(1, 0)), Routing::Dropped);
    }

    #[test]
    #[should_panic(expected = "star topology")]
    fn local_to_local_panics() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.route(&env(1, 2));
    }

    #[test]
    fn loss_probability_drops_some() {
        let mut r = Router::new(
            RouterConfig {
                loss_probability: 0.5,
                ..RouterConfig::default()
            },
            SimRng::new(7),
        );
        let mut delivered = 0;
        for _ in 0..200 {
            if matches!(r.route(&env(0, 1)), Routing::Deliver(_)) {
                delivered += 1;
            }
        }
        assert!((50..150).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut r = Router::new(
            RouterConfig {
                duplicate_probability: 1.0,
                ..RouterConfig::default()
            },
            SimRng::new(3),
        );
        assert!(matches!(r.route(&env(0, 1)), Routing::DeliverTwice(_, _)));
        assert_eq!(r.duplicated(), 1);
    }

    #[test]
    fn severed_link_drops_one_direction_only() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.partition(SiteId::new(1), SiteId::new(0));
        assert_eq!(r.route(&env(1, 0)), Routing::Dropped, "severed direction");
        assert!(
            matches!(r.route(&env(0, 1)), Routing::Deliver(_)),
            "reverse link intact"
        );
        assert!(r.is_partitioned(SiteId::new(1), SiteId::new(0)));
        assert!(!r.is_partitioned(SiteId::new(0), SiteId::new(1)));
        let s = r.stats();
        assert_eq!(s.partitioned_drops, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn heal_restores_the_link() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.partition_both(SiteId::new(0), SiteId::new(2));
        assert_eq!(r.route(&env(0, 2)), Routing::Dropped);
        assert_eq!(r.route(&env(2, 0)), Routing::Dropped);
        r.heal_both(SiteId::new(0), SiteId::new(2));
        assert!(matches!(r.route(&env(0, 2)), Routing::Deliver(_)));
        assert!(matches!(r.route(&env(2, 0)), Routing::Deliver(_)));
        assert_eq!(r.stats().partitioned_drops, 2);
    }

    #[test]
    fn loss_burst_overrides_baseline_and_clears() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(9));
        r.set_loss_burst(1.0);
        for _ in 0..10 {
            assert_eq!(r.route(&env(0, 1)), Routing::Dropped);
        }
        r.clear_loss_burst();
        assert!(matches!(r.route(&env(0, 1)), Routing::Deliver(_)));
        let s = r.stats();
        assert_eq!((s.sent, s.dropped), (11, 10));
        assert_eq!(s.partitioned_drops, 0, "burst loss is not a partition");
    }

    #[test]
    fn reused_router_does_not_carry_counters_across_runs() {
        // Regression: a sweep reusing one router must not attribute run 1's
        // traffic to run 2 — either reset between runs or diff snapshots.
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.site_down(SiteId::new(1));
        r.route(&env(0, 1)); // run 1: one send, one drop
        let run1 = r.stats();
        assert_eq!((run1.sent, run1.dropped), (1, 1));

        // Snapshot-delta view of run 2.
        r.site_up(SiteId::new(1));
        r.route(&env(0, 1));
        let run2 = r.stats().since(&run1);
        assert_eq!((run2.sent, run2.dropped), (1, 0), "delta is per-run");

        // Reset view of run 3.
        r.reset_stats();
        assert_eq!(r.stats(), NetStats::default());
        r.route(&env(0, 1));
        let run3 = r.stats();
        assert_eq!((run3.sent, run3.dropped), (1, 0), "reset is per-run");
    }

    #[test]
    fn obs_sink_sees_sends_and_drop_causes() {
        let sink = amc_obs::ObsSink::enabled(16);
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.attach_obs(sink.clone());
        r.route(&env(0, 1));
        r.partition(SiteId::new(0), SiteId::new(1));
        r.route(&env(0, 1));
        r.site_down(SiteId::new(1));
        r.route(&env(0, 1));
        let log = sink.snapshot();
        let kinds: Vec<&'static str> = log.events().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, vec!["msg-send", "msg-drop", "msg-drop"]);
        let causes: Vec<DropCause> = log
            .events()
            .filter_map(|e| match e.kind {
                EventKind::MsgDrop { cause, .. } => Some(cause),
                _ => None,
            })
            .collect();
        assert_eq!(
            causes,
            vec![DropCause::Partitioned, DropCause::EndpointDown]
        );
        assert!(log.events().all(|e| e.txn == Some(GlobalTxnId::new(1))));
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = RouterConfig {
            loss_probability: 0.3,
            latency: LatencyModel::Uniform(SimDuration(100), SimDuration(900)),
            duplicate_probability: 0.2,
        };
        let mut a = Router::new(cfg.clone(), SimRng::new(5));
        let mut b = Router::new(cfg, SimRng::new(5));
        for _ in 0..100 {
            assert_eq!(a.route(&env(0, 1)), b.route(&env(0, 1)));
        }
    }
}
