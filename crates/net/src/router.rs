//! The deterministic simulated network.
//!
//! The router owns no event queue: the simulation driver asks it to *admit*
//! a message and gets back either `Deliver(after)` — schedule delivery
//! `after` later — or `Dropped` (destination down, or loss injected). This
//! keeps the router reusable: the DES driver schedules real events, unit
//! tests just inspect decisions.
//!
//! Invariants enforced here:
//! * star topology (Fig. 1) — non-central ↔ non-central traffic is a bug,
//!   not a droppable condition;
//! * messages *to* a down site vanish (its communication manager is dead);
//! * messages *from* a down site cannot be sent (the driver shouldn't ask,
//!   but a defensive drop keeps crash races honest).

use crate::message::Envelope;
use amc_sim::{LatencyModel, SimRng};
use amc_types::{SimDuration, SiteId};
use std::collections::HashSet;

/// Router behaviour knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Latency applied to every delivered message.
    pub latency: LatencyModel,
    /// Independent loss probability per message.
    pub loss_probability: f64,
    /// Probability a delivered message is *duplicated* (at-least-once
    /// delivery — retransmitting transports do this; the protocols must
    /// tolerate it, which is what the markers and tombstones are for).
    pub duplicate_probability: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            latency: LatencyModel::Fixed(SimDuration::from_micros(500)),
            loss_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

/// The router's verdict on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Deliver after this delay.
    Deliver(SimDuration),
    /// Deliver twice, after each delay (duplication injected).
    DeliverTwice(SimDuration, SimDuration),
    /// Silently dropped (loss or down destination).
    Dropped,
}

/// Deterministic star network.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    rng: SimRng,
    down: HashSet<SiteId>,
    sent: u64,
    dropped: u64,
    duplicated: u64,
}

impl Router {
    /// New router with its own RNG stream.
    pub fn new(cfg: RouterConfig, rng: SimRng) -> Self {
        Router {
            cfg,
            rng,
            down: HashSet::new(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Mark a site down (crash).
    pub fn site_down(&mut self, site: SiteId) {
        self.down.insert(site);
    }

    /// Mark a site up again (restart).
    pub fn site_up(&mut self, site: SiteId) {
        self.down.remove(&site);
    }

    /// Whether a site is currently down.
    pub fn is_down(&self, site: SiteId) -> bool {
        self.down.contains(&site)
    }

    /// Decide what happens to `env`.
    ///
    /// # Panics
    /// On a star-topology violation — that is a protocol bug, never a
    /// runtime condition.
    pub fn route(&mut self, env: &Envelope) -> Routing {
        assert!(
            env.respects_star_topology(),
            "star topology violated: {env}"
        );
        self.sent += 1;
        if self.down.contains(&env.from) || self.down.contains(&env.to) {
            self.dropped += 1;
            return Routing::Dropped;
        }
        if self.cfg.loss_probability > 0.0 && self.rng.chance(self.cfg.loss_probability) {
            self.dropped += 1;
            return Routing::Dropped;
        }
        let first = self.cfg.latency.sample(&mut self.rng);
        if self.cfg.duplicate_probability > 0.0 && self.rng.chance(self.cfg.duplicate_probability)
        {
            self.duplicated += 1;
            let second = self.cfg.latency.sample(&mut self.rng);
            return Routing::DeliverTwice(first, second);
        }
        Routing::Deliver(first)
    }

    /// `(sent, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }

    /// Messages delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use amc_types::GlobalTxnId;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope::new(
            SiteId::new(from),
            SiteId::new(to),
            Payload::Prepare {
                gtx: GlobalTxnId::new(1),
            },
        )
    }

    #[test]
    fn fixed_latency_delivery() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        assert_eq!(
            r.route(&env(0, 1)),
            Routing::Deliver(SimDuration::from_micros(500))
        );
        assert_eq!(r.stats(), (1, 0));
    }

    #[test]
    fn down_destination_drops() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.site_down(SiteId::new(1));
        assert_eq!(r.route(&env(0, 1)), Routing::Dropped);
        assert!(r.is_down(SiteId::new(1)));
        r.site_up(SiteId::new(1));
        assert!(matches!(r.route(&env(0, 1)), Routing::Deliver(_)));
        assert_eq!(r.stats(), (2, 1));
    }

    #[test]
    fn down_sender_drops() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.site_down(SiteId::new(1));
        assert_eq!(r.route(&env(1, 0)), Routing::Dropped);
    }

    #[test]
    #[should_panic(expected = "star topology")]
    fn local_to_local_panics() {
        let mut r = Router::new(RouterConfig::default(), SimRng::new(1));
        r.route(&env(1, 2));
    }

    #[test]
    fn loss_probability_drops_some() {
        let mut r = Router::new(
            RouterConfig {
                loss_probability: 0.5,
                ..RouterConfig::default()
            },
            SimRng::new(7),
        );
        let mut delivered = 0;
        for _ in 0..200 {
            if matches!(r.route(&env(0, 1)), Routing::Deliver(_)) {
                delivered += 1;
            }
        }
        assert!((50..150).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut r = Router::new(
            RouterConfig {
                duplicate_probability: 1.0,
                ..RouterConfig::default()
            },
            SimRng::new(3),
        );
        assert!(matches!(r.route(&env(0, 1)), Routing::DeliverTwice(_, _)));
        assert_eq!(r.duplicated(), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = RouterConfig {
            loss_probability: 0.3,
            latency: LatencyModel::Uniform(SimDuration(100), SimDuration(900)),
            duplicate_probability: 0.2,
        };
        let mut a = Router::new(cfg.clone(), SimRng::new(5));
        let mut b = Router::new(cfg, SimRng::new(5));
        for _ in 0..100 {
            assert_eq!(a.route(&env(0, 1)), b.route(&env(0, 1)));
        }
    }
}
