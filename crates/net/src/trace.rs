//! Message tracing.
//!
//! Every experiment records its protocol traffic here. Two consumers:
//! golden-trace tests (reproducing the message sequences of Figs. 2/4/6)
//! and experiment E4 (message counts per protocol per transaction).

use crate::message::Envelope;
use amc_types::{GlobalTxnId, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual send time (SimTime::ZERO under the threaded driver).
    pub at: SimTime,
    /// The message.
    pub envelope: Envelope,
}

/// Default retention bound: far above any single run's traffic (the golden
/// traces are tens of messages, a worst-case 30 s nemesis run a few tens of
/// thousands) while keeping memory flat across a 200-seed sweep.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// A bounded message trace.
///
/// When the bound is hit the **oldest half** of the retained entries is
/// evicted in one batch (amortized O(1) per record) and counted in
/// [`MessageTrace::evicted`]. Eviction is deterministic, so per-seed trace
/// comparisons remain exact even when a pathological run overflows.
#[derive(Debug, Clone)]
pub struct MessageTrace {
    entries: Vec<TraceEntry>,
    cap: usize,
    evicted: u64,
}

impl Default for MessageTrace {
    fn default() -> Self {
        Self::bounded(DEFAULT_TRACE_CAP)
    }
}

impl MessageTrace {
    /// Empty trace with the default retention bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty trace retaining at most `cap` entries (clamped to ≥ 2).
    pub fn bounded(cap: usize) -> Self {
        MessageTrace {
            entries: Vec::new(),
            cap: cap.max(2),
            evicted: 0,
        }
    }

    /// Record a message.
    pub fn record(&mut self, at: SimTime, envelope: Envelope) {
        if self.entries.len() >= self.cap {
            let drop = self.cap / 2;
            self.entries.drain(..drop);
            self.evicted += drop as u64;
        }
        self.entries.push(TraceEntry { at, envelope });
    }

    /// Retained entries in record order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Retained messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted to honour the retention bound (0 in normal runs).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Messages belonging to one global transaction, as `label@from->to`
    /// strings — the golden-trace format.
    pub fn labels_for(&self, gtx: GlobalTxnId) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.envelope.payload.gtx() == gtx)
            .map(|e| {
                format!(
                    "{}:{}->{}",
                    e.envelope.payload.label(),
                    e.envelope.from.raw(),
                    e.envelope.to.raw()
                )
            })
            .collect()
    }

    /// Message counts per payload label (E4).
    pub fn counts_by_label(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.envelope.payload.label()).or_insert(0) += 1;
        }
        out
    }

    /// Messages per global transaction (E4 normalisation).
    pub fn counts_by_gtx(&self) -> BTreeMap<GlobalTxnId, u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.envelope.payload.gtx()).or_insert(0) += 1;
        }
        out
    }

    /// Render a human-readable transcript (used in example output and
    /// docs).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "[{}] {}", e.at, e.envelope);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use amc_types::{LocalVote, SiteId};

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    fn sample() -> MessageTrace {
        let mut t = MessageTrace::new();
        t.record(
            SimTime(1),
            Envelope::new(
                SiteId::CENTRAL,
                SiteId::new(1),
                Payload::Prepare { gtx: gtx(1) },
            ),
        );
        t.record(
            SimTime(2),
            Envelope::new(
                SiteId::new(1),
                SiteId::CENTRAL,
                Payload::Vote {
                    gtx: gtx(1),
                    vote: LocalVote::Ready,
                },
            ),
        );
        t.record(
            SimTime(3),
            Envelope::new(
                SiteId::CENTRAL,
                SiteId::new(2),
                Payload::Prepare { gtx: gtx(2) },
            ),
        );
        t
    }

    #[test]
    fn labels_filter_by_gtx() {
        let t = sample();
        assert_eq!(t.labels_for(gtx(1)), vec!["prepare:0->1", "ready:1->0"]);
        assert_eq!(t.labels_for(gtx(2)), vec!["prepare:0->2"]);
        assert!(t.labels_for(gtx(9)).is_empty());
    }

    #[test]
    fn counts_by_label_and_gtx() {
        let t = sample();
        let by_label = t.counts_by_label();
        assert_eq!(by_label.get("prepare"), Some(&2));
        assert_eq!(by_label.get("ready"), Some(&1));
        let by_gtx = t.counts_by_gtx();
        assert_eq!(by_gtx.get(&gtx(1)), Some(&2));
        assert_eq!(by_gtx.get(&gtx(2)), Some(&1));
    }

    #[test]
    fn render_is_line_per_message() {
        let t = sample();
        let text = t.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("site-0 -> site-1: prepare(G1)"));
    }

    #[test]
    fn bounded_trace_evicts_oldest_batch() {
        let mut t = MessageTrace::bounded(4);
        for i in 1..=6u64 {
            t.record(
                SimTime(i),
                Envelope::new(
                    SiteId::CENTRAL,
                    SiteId::new(1),
                    Payload::Prepare { gtx: gtx(i) },
                ),
            );
        }
        // Hitting the cap at entry 5 dropped the oldest half (entries 1–2).
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.len(), 4);
        let first = t.entries().first().unwrap().at;
        assert_eq!(first, SimTime(3), "oldest retained entry");
        assert!(t.labels_for(gtx(1)).is_empty(), "evicted entries are gone");
        assert_eq!(t.labels_for(gtx(6)), vec!["prepare:0->1"]);
    }

    #[test]
    fn default_cap_never_bites_small_traces() {
        let t = sample();
        assert_eq!(t.evicted(), 0);
        assert_eq!(t.len(), 3);
    }
}
