//! # amc-net
//!
//! The communication layer of Fig. 1: a **star topology** in which every
//! existing database system is connected to the central system and local
//! systems never talk to each other. The crate provides
//!
//! * [`message`] — the protocol vocabulary (submit / vote / decision / redo
//!   / undo / finished envelopes);
//! * [`router`] — a deterministic simulated network: per-message latency
//!   from a seeded model, messages to a crashed site are dropped, and the
//!   star invariant is enforced on every send;
//! * [`trace`] — a recorder producing the golden message traces that
//!   reproduce Figs. 2, 4 and 6, plus per-kind counters for experiment E4;
//! * [`comm`] — the **local communication manager** of §2: the component
//!   "on top of" each unmodifiable engine that listens for global calls and
//!   implements the redo (§3.2) and undo (§3.3) mechanics, including the
//!   commit-propagation markers that make both idempotent across crashes
//!   (experiment E8);
//! * [`journal`] — the manager's durable work journal: serializable
//!   work-map entries plus the [`WorkJournal`] sink trait the networked
//!   runtime uses to restore protocol obligations after a site restart;
//! * [`marker`] — reserved object ids used as durable commit markers (the
//!   paper's "redo-log ... written into the existing database by the local
//!   transaction, e.g. as an additional relation");
//! * [`transport`] — the [`FederationTransport`] abstraction over *how* a
//!   coordinator message reaches a site: in-process function calls (the
//!   historical runtime) or real TCP sockets (`amc-rpc`);
//! * [`fleet`] — an in-process transport whose site membership can change
//!   *while coordinators drive traffic*, the substrate for `amc-shard`'s
//!   online add/remove/replace reconfiguration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod fleet;
pub mod journal;
pub mod marker;
pub mod message;
pub mod router;
pub mod trace;
pub mod transport;

pub use comm::{CommStats, EngineHandle, LocalCommManager, SubmitMode};
pub use fleet::FleetTransport;
pub use journal::{RecoveryStats, WorkEntry, WorkJournal};
pub use message::{Envelope, Payload};
pub use router::{NetStats, Router, RouterConfig};
pub use trace::{MessageTrace, TraceEntry};
pub use transport::{
    AdminReply, AdminRequest, FederationTransport, InProcessTransport, PaxosOpenEntry,
};
