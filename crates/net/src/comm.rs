//! The local communication manager (§2, Fig. 1).
//!
//! One of these sits on top of each existing database system. It "listens
//! on the net for global calls and passes them to the existing database
//! system" — and, crucially, it is where the two portable commit protocols
//! put the machinery the unmodified engine lacks:
//!
//! * **commit-after** (§3.2): answer `prepare` with *ready* while the local
//!   transaction is still in the *running* state; on a post-ready erroneous
//!   abort, **repeat** the local transaction until it commits;
//! * **commit-before** (§3.3): commit the local transaction immediately
//!   after its last action; on a global abort, run the **inverse
//!   transaction** until it commits.
//!
//! Both repetition loops are made exactly-once across crashes by the
//! [`crate::marker`] scheme: every repeatable transaction also inserts a
//! marker object, so "marker present" ⇔ "transaction committed" — the
//! paper's "redo-log written into the existing database by the local
//! transaction".
//!
//! **Durability of the manager's own state.** The `gtx → (ops, ltx)` map is
//! treated as the communication manager's stable metadata log (the paper
//! allows these components "implemented on top of the existing systems" to
//! keep recovery state of their own). A site crash wipes the *engine's*
//! volatile state — transactions die, the lock table empties — but the
//! manager still remembers which global transactions it was serving; what it
//! can no longer trust is whether their local transactions survived, and for
//! that it consults the engine and the markers.

use crate::journal::{RecoveryStats, WorkEntry, WorkJournal};
use crate::marker::{forward_marker, undo_marker};
use crate::message::Payload;
use amc_engine::{LocalEngine, PreparableEngine};
use amc_mlt::{inverse_of, needs_before_image};
use amc_obs::{EventKind, ObsSink};
use amc_types::{
    AbortReason, AmcError, AmcResult, GlobalTxnId, LocalRunState, LocalTxnId, LocalVote, ObjectId,
    Operation, SiteId, Value,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic injector for post-ready erroneous aborts (experiment E2).
///
/// §3.2's hazard is an engine aborting a local transaction *after* the
/// ready vote was sent. In the wild this comes from timeouts, deadlock
/// victims or validation failures; the injector makes the probability a
/// controlled knob: after a commit-after manager votes ready, it aborts
/// the engine transaction with probability `p`, using a seeded counter
/// sequence so runs are reproducible.
#[derive(Debug)]
struct AbortInjector {
    p: f64,
    /// Deterministic low-discrepancy sequence (Weyl) — avoids dragging a
    /// full RNG into the manager.
    state: u64,
}

impl AbortInjector {
    fn fire(&mut self) -> bool {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        u < self.p
    }
}

/// Which protocol flavour a submit runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// 2PC baseline: run the operations, leave the transaction running,
    /// wait for `prepare`. No marker (the ready state is durable instead).
    TwoPhase,
    /// Commit-after: run the operations (plus marker), leave running, vote
    /// ready immediately — the §3.2 "answer prepare immediately after the
    /// last action".
    CommitAfter,
    /// Commit-before: run the operations (plus marker) and commit at once;
    /// the vote reports the commit outcome (§3.3).
    CommitBefore,
}

/// Counters for E2/E4/E8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Submits handled.
    pub submits: u64,
    /// Ready votes sent.
    pub votes_ready: u64,
    /// Abort votes sent.
    pub votes_aborted: u64,
    /// Full re-executions in the commit-after redo loop.
    pub redo_runs: u64,
    /// Inverse-transaction executions in the commit-before undo loop.
    pub undo_runs: u64,
    /// Pre-vote retries after erroneous aborts.
    pub pre_vote_retries: u64,
    /// Marker lookups performed.
    pub marker_checks: u64,
}

#[derive(Debug, Clone)]
struct Work {
    ops: Vec<Operation>,
    mode: SubmitMode,
    ltx: Option<LocalTxnId>,
    /// Commit-before: the forward transaction committed locally.
    committed_locally: bool,
    /// The vote this manager reported (None until voted).
    vote: Option<LocalVote>,
    /// Commit-before: inverse actions captured at execution time, in
    /// forward order (the local half of the §3.3 undo-log).
    inverse_ops: Vec<Operation>,
    /// Restored from the work journal after a site restart; the next
    /// final-state message resolves the in-doubt window and is reported
    /// as an `InDoubtResolved` event.
    recovered: bool,
}

impl Work {
    /// A presumed-abort tombstone: the coordinator already treats this
    /// transaction as aborted, so a late `Submit` must not execute.
    fn tombstone(mode: SubmitMode) -> Work {
        Work {
            ops: Vec::new(),
            mode,
            ltx: None,
            committed_locally: false,
            vote: Some(LocalVote::Aborted),
            inverse_ops: Vec::new(),
            recovered: false,
        }
    }

    fn is_tombstone(&self) -> bool {
        self.ltx.is_none() && !self.committed_locally && self.vote == Some(LocalVote::Aborted)
    }
}

/// Handle to a sealed engine, optionally with the 2PC-only prepare
/// extension.
#[derive(Clone)]
pub enum EngineHandle {
    /// An unmodifiable engine (the integration reality).
    Plain(Arc<dyn LocalEngine>),
    /// A "modified" engine exposing the ready state (2PC baseline only).
    Preparable(Arc<dyn PreparableEngine>),
}

impl EngineHandle {
    /// The engine as the universal sealed interface.
    pub fn engine(&self) -> &dyn LocalEngine {
        match self {
            EngineHandle::Plain(e) => e.as_ref(),
            EngineHandle::Preparable(e) => e.as_ref(),
        }
    }

    /// The prepare extension, when the engine was "modified".
    pub fn preparable(&self) -> Option<&dyn PreparableEngine> {
        match self {
            EngineHandle::Plain(_) => None,
            EngineHandle::Preparable(e) => Some(e.as_ref()),
        }
    }
}

/// The per-site communication manager.
pub struct LocalCommManager {
    site: SiteId,
    handle: EngineHandle,
    work: Mutex<HashMap<GlobalTxnId, Work>>,
    stats: Mutex<CommStats>,
    /// Repetition bound — the paper argues repetitions terminate; we bound
    /// them anyway so a sick test fails loudly instead of spinning.
    max_attempts: u32,
    /// Pre-vote retry bound. Deliberately small: a submit that keeps
    /// hitting erroneous aborts may be one leg of a *distributed* lock
    /// cycle with another transaction's mandatory redo — and before the
    /// vote nothing has been promised, so giving up (voting abort) is
    /// always safe and breaks the cycle. This is the paper's "aborted by
    /// the local transaction manager, e.g. because of time out".
    pre_vote_retries: u32,
    injector: Mutex<Option<AbortInjector>>,
    /// Durable work journal (None for the in-process runtime, where the
    /// manager's memory *is* the stable metadata — see module docs).
    journal: Option<Box<dyn WorkJournal>>,
    /// Stats from the last restart recovery pass, for the admin channel.
    recovery: Mutex<Option<RecoveryStats>>,
    /// Weyl counter feeding the retry-backoff jitter.
    backoff_seed: std::sync::atomic::AtomicU64,
    /// Observability sink (disabled unless a driver attaches one).
    obs: ObsSink,
}

impl LocalCommManager {
    /// Manager for `site` over `handle`.
    pub fn new(site: SiteId, handle: EngineHandle) -> Self {
        LocalCommManager {
            site,
            handle,
            work: Mutex::new(HashMap::new()),
            stats: Mutex::new(CommStats::default()),
            max_attempts: 100,
            pre_vote_retries: 5,
            injector: Mutex::new(None),
            journal: None,
            recovery: Mutex::new(None),
            backoff_seed: std::sync::atomic::AtomicU64::new(site.raw() as u64 * 7919),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink; redo/undo attempts and the 2PC
    /// in-doubt window emit events attributed to this site. Also forwarded
    /// to the engine's WAL so log forces are attributed correctly.
    pub fn set_obs(&mut self, sink: ObsSink) {
        self.handle.engine().attach_obs(sink.clone(), self.site);
        self.obs = sink;
    }

    /// Attach a durable work journal. From now on every work-map mutation
    /// that carries protocol obligations is persisted through it; in
    /// particular, commit-before submits persist their captured inverse
    /// operations **before** the local commit (§3.3's undo-log ordering).
    pub fn set_journal(&mut self, journal: Box<dyn WorkJournal>) {
        self.journal = Some(journal);
    }

    /// Record stats from a restart recovery pass (served over the admin
    /// channel as the `Recovery` reply).
    pub fn set_recovery_stats(&self, stats: RecoveryStats) {
        *self.recovery.lock() = Some(stats);
    }

    /// Stats from the last restart recovery pass, if this process went
    /// through one.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        *self.recovery.lock()
    }

    /// Persist the current shape of `gtx`'s work record (no-op without a
    /// journal attached).
    fn journal_record(&self, gtx: GlobalTxnId, w: &Work) {
        if let Some(j) = &self.journal {
            j.record(&WorkEntry {
                gtx,
                mode: w.mode,
                ltx: w.ltx,
                committed_locally: w.committed_locally,
                vote: w.vote,
                ops: w.ops.clone(),
                inverse_ops: w.inverse_ops.clone(),
            });
        }
    }

    /// Rebuild the work map from journal entries after a process restart.
    ///
    /// Entries must already be deduplicated to the last record per global
    /// transaction. The journal is advisory where the database itself can
    /// answer: for commit-before work with updates, the forward marker —
    /// not the journaled flag — decides whether the local transaction
    /// committed (§3.3: the marker is "written into the existing database
    /// by the local transaction" precisely so recovery can consult it).
    /// Restored entries are flagged so the message that finally resolves
    /// them emits an `InDoubtResolved` event.
    ///
    /// Returns the number of entries restored.
    pub fn restore_work(&self, entries: Vec<WorkEntry>) -> AmcResult<u64> {
        let mut restored = 0u64;
        for e in entries {
            let mut w = Work {
                ops: e.ops,
                mode: e.mode,
                ltx: e.ltx,
                committed_locally: e.committed_locally,
                vote: e.vote,
                inverse_ops: e.inverse_ops,
                recovered: false,
            };
            if w.mode == SubmitMode::CommitBefore
                && !w.is_tombstone()
                && w.ops.iter().any(|op| op.is_update())
            {
                // The crash may have raced either side of the local commit;
                // only the marker knows which side won.
                let committed = self.marker_present(forward_marker(e.gtx))?;
                w.committed_locally = committed;
                w.vote = Some(if committed {
                    LocalVote::Ready
                } else {
                    LocalVote::Aborted
                });
                if !committed {
                    // The forward transaction died with the engine: the
                    // entry degenerates to a presumed-abort tombstone and
                    // the captured inverses are for a run that never was.
                    w.ltx = None;
                    w.inverse_ops.clear();
                }
            }
            w.recovered = !w.is_tombstone();
            self.work.lock().insert(e.gtx, w);
            restored += 1;
        }
        Ok(restored)
    }

    /// If `gtx` was restored from the journal, this message resolved its
    /// in-doubt window: emit the event once and clear the flag.
    fn resolve_recovered(&self, gtx: GlobalTxnId, verdict: amc_types::GlobalVerdict) {
        let was_recovered = {
            let mut work = self.work.lock();
            match work.get_mut(&gtx) {
                Some(w) if w.recovered => {
                    w.recovered = false;
                    true
                }
                _ => false,
            }
        };
        if was_recovered {
            self.obs
                .emit(Some(gtx), self.site, EventKind::InDoubtResolved { verdict });
        }
    }

    /// Jittered backoff between repetition attempts. Retries restart with a
    /// *fresh* local transaction id, which makes them the youngest — and
    /// therefore the preferred deadlock victim — every time; without
    /// spacing, two colliding repetition loops can victimise each other
    /// indefinitely.
    fn backoff(&self, attempt: u32) {
        if attempt == 0 {
            return;
        }
        let weyl = self
            .backoff_seed
            .fetch_add(0x9e37_79b9_7f4a_7c15, std::sync::atomic::Ordering::Relaxed);
        let jitter_us = (weyl >> 48) % 700; // 0..700 µs
        let base_us = u64::from(attempt.min(20)) * 200;
        std::thread::sleep(std::time::Duration::from_micros(base_us + jitter_us));
    }

    /// Bound the redo/undo/retry loops (simulation configs use small
    /// bounds so probe transactions fail fast instead of spinning).
    pub fn set_max_attempts(&mut self, n: u32) {
        self.max_attempts = n.max(1);
    }

    /// Arm the E2 injector: after each commit-after ready vote, the local
    /// transaction is erroneously aborted with probability `p` (seeded,
    /// deterministic). Pass `0.0` to disarm.
    pub fn inject_post_ready_aborts(&self, p: f64, seed: u64) {
        *self.injector.lock() = (p > 0.0).then_some(AbortInjector { p, state: seed });
    }

    /// This manager's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The underlying engine handle.
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }

    /// Counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.lock()
    }

    /// The local transaction currently associated with `gtx`.
    pub fn local_txn_of(&self, gtx: GlobalTxnId) -> Option<LocalTxnId> {
        self.work.lock().get(&gtx).and_then(|w| w.ltx)
    }

    fn marker_op(gtx: GlobalTxnId, ltx: LocalTxnId, undo: bool) -> Operation {
        let obj = if undo {
            undo_marker(gtx)
        } else {
            forward_marker(gtx)
        };
        Operation::Insert {
            obj,
            value: Value::counter(ltx.raw() as i64),
        }
    }

    /// Check whether a marker committed, via a small read-only transaction.
    /// Retries erroneous aborts (the check itself can be a deadlock victim).
    fn marker_present(&self, obj: ObjectId) -> AmcResult<bool> {
        self.stats.lock().marker_checks += 1;
        let engine = self.handle.engine();
        for attempt in 0..self.max_attempts {
            self.backoff(attempt);
            let t = engine.begin()?;
            match engine.execute(t, &Operation::Read { obj }) {
                Ok(_) => {
                    engine.commit(t)?;
                    return Ok(true);
                }
                Err(AmcError::NotFound(_)) => {
                    engine.commit(t)?;
                    return Ok(false);
                }
                Err(AmcError::Aborted(r)) if r.is_erroneous() => continue,
                Err(e) => {
                    let _ = engine.abort(t, AbortReason::Intended);
                    return Err(e);
                }
            }
        }
        Err(AmcError::Protocol("marker check never succeeded".into()))
    }

    /// Execute `ops` inside a fresh local transaction, leaving it in the
    /// state `commit_now` dictates. Returns the local txn id on success, or
    /// the abort classification.
    ///
    /// With `capture_inverses`, every update is preceded (where necessary)
    /// by a read capturing the before image, and the op's inverse action is
    /// appended to the vector — the undo information of §3.3. Commutative
    /// increments need no capture read, which is the MLT cost advantage the
    /// E7 ablation measures.
    fn run_ops(
        &self,
        ops: &[Operation],
        commit_now: bool,
        mut capture_inverses: Option<&mut Vec<Operation>>,
    ) -> AmcResult<Result<LocalTxnId, AbortReason>> {
        let engine = self.handle.engine();
        let ltx = engine.begin()?;
        for op in ops {
            let before = if capture_inverses.is_some() && needs_before_image(op) {
                match engine.execute(ltx, &Operation::Read { obj: op.object() }) {
                    Ok(r) => r.value(),
                    Err(AmcError::NotFound(_)) => None,
                    Err(AmcError::Aborted(r)) => return Ok(Err(r)),
                    Err(AmcError::SiteDown(s)) => return Err(AmcError::SiteDown(s)),
                    Err(e) => {
                        engine.abort(ltx, AbortReason::Intended)?;
                        return Err(e);
                    }
                }
            } else {
                None
            };
            match engine.execute(ltx, op) {
                Ok(_) => {
                    if let Some(inverses) = capture_inverses.as_deref_mut() {
                        if let Some(inv) = inverse_of(op, before) {
                            inverses.push(inv);
                        }
                    }
                }
                Err(AmcError::Aborted(r)) => return Ok(Err(r)), // already rolled back
                Err(AmcError::SiteDown(s)) => return Err(AmcError::SiteDown(s)),
                Err(_logical) => {
                    // NotFound / AlreadyExists etc.: transaction logic says
                    // no — an *intended* abort (§3.2's distinction).
                    engine.abort(ltx, AbortReason::Intended)?;
                    return Ok(Err(AbortReason::Intended));
                }
            }
        }
        if commit_now {
            match engine.commit(ltx) {
                Ok(()) => {}
                Err(AmcError::Aborted(r)) => return Ok(Err(r)), // e.g. OCC validation
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(ltx))
    }

    /// Handle a `Submit`: run the decomposed local transaction and vote.
    pub fn handle_submit(
        &self,
        gtx: GlobalTxnId,
        ops: Vec<Operation>,
        mode: SubmitMode,
    ) -> AmcResult<Payload> {
        self.stats.lock().submits += 1;
        // Duplicate or superseded submits must not execute again:
        //
        // * a tombstone means the coordinator already presumed this
        //   transaction aborted (an abort decision or post-crash inquiry
        //   beat the submit here) — executing now would resurrect dead
        //   work;
        // * an existing vote means an earlier copy of this submit already
        //   ran (at-least-once delivery) — re-executing would collide with
        //   the running original (or double-commit); answer idempotently.
        if let Some(w) = self.work.lock().get(&gtx) {
            if let Some(vote) = w.vote {
                let vote = if w.is_tombstone() {
                    LocalVote::Aborted
                } else {
                    vote
                };
                let mut stats = self.stats.lock();
                match vote {
                    LocalVote::Ready | LocalVote::ReadyReadOnly => stats.votes_ready += 1,
                    LocalVote::Aborted => stats.votes_aborted += 1,
                }
                return Ok(Payload::Vote { gtx, vote });
            }
        }
        // Read-only optimization (cf. the derived 2PC protocols of §5): a
        // local transaction with no updates has nothing to redo or undo —
        // under the portable protocols it commits right here (releasing its
        // read locks) and drops out of the decision round. 2PC applies the
        // same optimization at prepare time instead.
        let read_only = ops.iter().all(|op| !op.is_update());
        // The marker participates in the transaction for the two portable
        // protocols (see module docs) — read-only transactions skip it
        // (nothing to repeat, nothing to invert).
        let with_marker = mode != SubmitMode::TwoPhase && !read_only;
        let commit_now =
            mode == SubmitMode::CommitBefore || (mode == SubmitMode::CommitAfter && read_only);

        // With a journal attached, commit-before splits its "commit at
        // once" into run → journal → commit, so the captured inverse
        // operations are durable before the local commit they would have
        // to compensate (§3.3: a global abort arriving after a crash must
        // still find the undo-log).
        let split_commit = self.journal.is_some() && mode == SubmitMode::CommitBefore && !read_only;
        let mut outcome: Result<LocalTxnId, AbortReason> = Err(AbortReason::Injected);
        let mut inverse_ops = Vec::new();
        for attempt in 0..=self.pre_vote_retries {
            let mut all_ops = ops.clone();
            if with_marker {
                // The ltx id inside the marker is informational; use a
                // placeholder first, the real id is not known before begin.
                all_ops.push(Self::marker_op(gtx, LocalTxnId::new(0), false));
            }
            inverse_ops.clear();
            let capture = (mode == SubmitMode::CommitBefore).then_some(&mut inverse_ops);
            outcome = self.run_ops(&all_ops, commit_now && !split_commit, capture)?;
            if split_commit {
                if let Ok(ltx) = outcome {
                    self.journal_record(
                        gtx,
                        &Work {
                            ops: ops.clone(),
                            mode,
                            ltx: Some(ltx),
                            committed_locally: false,
                            vote: None,
                            inverse_ops: inverse_ops.clone(),
                            recovered: false,
                        },
                    );
                    match self.handle.engine().commit(ltx) {
                        Ok(()) => {}
                        Err(AmcError::Aborted(r)) => outcome = Err(r),
                        Err(e) => return Err(e),
                    }
                }
            }
            match outcome {
                Ok(_) => break,
                Err(ref r) if r.is_erroneous() && attempt < self.pre_vote_retries => {
                    // Pre-vote retry: nothing has been promised yet.
                    self.stats.lock().pre_vote_retries += 1;
                    self.backoff(attempt + 1);
                    continue;
                }
                Err(_) => break,
            }
        }

        let (vote, ltx, committed) = match outcome {
            Ok(ltx) if read_only && mode != SubmitMode::TwoPhase => {
                (LocalVote::ReadyReadOnly, Some(ltx), commit_now)
            }
            Ok(ltx) => (LocalVote::Ready, Some(ltx), commit_now),
            Err(_) => (LocalVote::Aborted, None, false),
        };
        if !committed {
            inverse_ops.clear();
        }
        let w = Work {
            ops,
            mode,
            ltx,
            committed_locally: committed,
            vote: Some(vote),
            inverse_ops,
            recovered: false,
        };
        self.journal_record(gtx, &w);
        self.work.lock().insert(gtx, w);
        {
            let mut stats = self.stats.lock();
            match vote {
                LocalVote::Ready | LocalVote::ReadyReadOnly => stats.votes_ready += 1,
                LocalVote::Aborted => stats.votes_aborted += 1,
            }
        }
        // E2 injection: the §3.2 hazard — an erroneous abort strikes the
        // still-running transaction *after* the ready vote.
        if mode == SubmitMode::CommitAfter && vote == LocalVote::Ready {
            let fire = self
                .injector
                .lock()
                .as_mut()
                .is_some_and(AbortInjector::fire);
            if fire {
                if let Some(l) = ltx {
                    let _ = self.handle.engine().abort(l, AbortReason::LockTimeout);
                }
            }
        }
        Ok(Payload::Vote { gtx, vote })
    }

    /// Handle a `SubmitPrepare` — the 1PC fast path: the final op dispatch
    /// carries the prepare, so this reply doubles as the site's vote.
    ///
    /// * `solo`: the transaction touches only this site — commit locally
    ///   with no global round. The commit-before machinery (forward marker,
    ///   captured inverses, journal ordering) is reused verbatim, so a lost
    ///   reply is safe: the coordinator presumes abort and its `Undo`
    ///   obligation finds the inverse program and the exactly-once markers.
    /// * piggyback under 2PC: run the ops **and** drive the engine to the
    ///   ready state in one [`PreparableEngine::apply_and_prepare`] call —
    ///   op records and the prepare record share one group-commit force,
    ///   and recovery resurrects the prepare exactly like a classic one.
    /// * piggyback under the portable protocols: their vote already rides
    ///   the submit reply, so the ordinary submit path *is* the fast path.
    pub fn handle_submit_prepare(
        &self,
        gtx: GlobalTxnId,
        ops: Vec<Operation>,
        solo: bool,
        mode: SubmitMode,
    ) -> AmcResult<Payload> {
        if solo || mode != SubmitMode::TwoPhase {
            let mode = if solo { SubmitMode::CommitBefore } else { mode };
            return self.handle_submit(gtx, ops, mode);
        }
        self.stats.lock().submits += 1;
        // Same duplicate/tombstone guard as `handle_submit`: a prior copy
        // of this dispatch (at-least-once delivery) or a presumed abort
        // answers idempotently without re-executing.
        if let Some(w) = self.work.lock().get(&gtx) {
            if let Some(vote) = w.vote {
                let vote = if w.is_tombstone() {
                    LocalVote::Aborted
                } else {
                    vote
                };
                let mut stats = self.stats.lock();
                match vote {
                    LocalVote::Ready | LocalVote::ReadyReadOnly => stats.votes_ready += 1,
                    LocalVote::Aborted => stats.votes_aborted += 1,
                }
                return Ok(Payload::Vote { gtx, vote });
            }
        }
        let Some(prep) = self.handle.preparable() else {
            return Err(AmcError::Protocol(format!(
                "{} runs a non-preparable engine under 2PC",
                self.site
            )));
        };
        // Read-only optimization, applied at the combined dispatch: nothing
        // to prepare — commit now and drop out of the decision round.
        let read_only = ops.iter().all(|op| !op.is_update());
        let engine = self.handle.engine();
        let mut outcome: Result<LocalTxnId, AbortReason> = Err(AbortReason::Injected);
        for attempt in 0..=self.pre_vote_retries {
            if read_only {
                outcome = self.run_ops(&ops, true, None)?;
            } else {
                let ltx = engine.begin()?;
                outcome = match prep.apply_and_prepare(ltx, &ops) {
                    Ok(_) => Ok(ltx),
                    Err(AmcError::Aborted(r)) => Err(r), // already rolled back
                    Err(AmcError::SiteDown(s)) => return Err(AmcError::SiteDown(s)),
                    Err(_logical) => {
                        // NotFound / AlreadyExists etc.: an intended abort.
                        engine.abort(ltx, AbortReason::Intended)?;
                        Err(AbortReason::Intended)
                    }
                };
            }
            match outcome {
                Ok(_) => break,
                Err(ref r) if r.is_erroneous() && attempt < self.pre_vote_retries => {
                    // Pre-vote retry: no vote has been cast yet.
                    self.stats.lock().pre_vote_retries += 1;
                    self.backoff(attempt + 1);
                    continue;
                }
                Err(_) => break,
            }
        }
        let (vote, ltx, committed) = match outcome {
            Ok(ltx) if read_only => (LocalVote::ReadyReadOnly, Some(ltx), true),
            Ok(ltx) => (LocalVote::Ready, Some(ltx), false),
            Err(_) => (LocalVote::Aborted, None, false),
        };
        let w = Work {
            ops,
            mode,
            ltx,
            committed_locally: committed,
            vote: Some(vote),
            inverse_ops: Vec::new(),
            recovered: false,
        };
        self.journal_record(gtx, &w);
        self.work.lock().insert(gtx, w);
        {
            let mut stats = self.stats.lock();
            match vote {
                LocalVote::Ready | LocalVote::ReadyReadOnly => stats.votes_ready += 1,
                LocalVote::Aborted => stats.votes_aborted += 1,
            }
        }
        if vote == LocalVote::Ready {
            // The §5 blocking hazard starts at the piggybacked prepare too.
            self.obs.emit(Some(gtx), self.site, EventKind::BlockEnter);
        }
        Ok(Payload::Vote { gtx, vote })
    }

    /// Handle a `Prepare` inquiry.
    ///
    /// * 2PC: drive the engine to the ready state (requires a preparable
    ///   engine — a plain engine here is a federation configuration error).
    /// * commit-after / commit-before: report the current knowledge; after
    ///   a crash the markers are the source of truth (§3.3: "after the
    ///   local recovery is finished ... the answer to the prepare message
    ///   is abort" — unless the commit survived).
    pub fn handle_prepare(&self, gtx: GlobalTxnId) -> AmcResult<Payload> {
        let work_snapshot = self.work.lock().get(&gtx).cloned();
        let vote = match work_snapshot {
            Some(w) => match w.mode {
                SubmitMode::TwoPhase => {
                    let Some(prep) = self.handle.preparable() else {
                        return Err(AmcError::Protocol(format!(
                            "{} runs a non-preparable engine under 2PC",
                            self.site
                        )));
                    };
                    let read_only = w.ops.iter().all(|op| !op.is_update());
                    match w.ltx {
                        Some(ltx)
                            if self.handle.engine().state_of(ltx) == Some(LocalRunState::Ready) =>
                        {
                            // Re-inquiry of an already-prepared transaction.
                            LocalVote::Ready
                        }
                        Some(ltx)
                            if read_only
                                && self.handle.engine().state_of(ltx)
                                    == Some(LocalRunState::Running) =>
                        {
                            // Read-only optimization: commit now, drop out
                            // of the decision round.
                            match self.handle.engine().commit(ltx) {
                                Ok(()) => LocalVote::ReadyReadOnly,
                                Err(_) => LocalVote::Aborted,
                            }
                        }
                        Some(ltx)
                            if read_only
                                && self.handle.engine().state_of(ltx)
                                    == Some(LocalRunState::Committed) =>
                        {
                            // Duplicate prepare after the read-only commit.
                            LocalVote::ReadyReadOnly
                        }
                        Some(ltx) => match prep.prepare(ltx) {
                            Ok(()) => {
                                // The §5 blocking hazard starts here: the
                                // participant is in doubt until a decision
                                // arrives.
                                self.obs.emit(Some(gtx), self.site, EventKind::BlockEnter);
                                LocalVote::Ready
                            }
                            Err(_) => LocalVote::Aborted,
                        },
                        None => LocalVote::Aborted,
                    }
                }
                SubmitMode::CommitAfter => match w.ltx {
                    // Voted ready and the transaction still exists in some
                    // live form (running, or already committed via redo).
                    Some(ltx) => match self.handle.engine().state_of(ltx) {
                        Some(LocalRunState::Running) | Some(LocalRunState::Committed) => {
                            LocalVote::Ready
                        }
                        // Erroneously aborted after ready: *still ready* —
                        // the redo mechanism guarantees eventual commit
                        // (§3.2). Intended aborts voted Aborted at submit.
                        _ if w.vote == Some(LocalVote::Ready) => LocalVote::Ready,
                        _ => LocalVote::Aborted,
                    },
                    None => LocalVote::Aborted,
                },
                SubmitMode::CommitBefore => {
                    if w.committed_locally {
                        LocalVote::Ready
                    } else if self.marker_present(forward_marker(gtx))? {
                        // Crash raced the bookkeeping: the commit survived.
                        LocalVote::Ready
                    } else {
                        LocalVote::Aborted
                    }
                }
            },
            // Unknown transaction: the submit never reached us, or our
            // engine crashed before anything durable happened — unless a
            // marker proves a commit-before transaction made it. A no-marker
            // answer leaves a tombstone so a late submit cannot resurrect
            // the transaction after we reported it aborted.
            None => {
                if self.marker_present(forward_marker(gtx))? {
                    LocalVote::Ready
                } else {
                    let mut work = self.work.lock();
                    work.entry(gtx).or_insert_with(|| {
                        let t = Work::tombstone(SubmitMode::CommitBefore);
                        self.journal_record(gtx, &t);
                        t
                    });
                    LocalVote::Aborted
                }
            }
        };
        let mut stats = self.stats.lock();
        match vote {
            LocalVote::Ready | LocalVote::ReadyReadOnly => stats.votes_ready += 1,
            LocalVote::Aborted => stats.votes_aborted += 1,
        }
        Ok(Payload::Vote { gtx, vote })
    }

    /// The commit-after redo loop (§3.2, Fig. 4's double arrow): repeat the
    /// local transaction until its marker proves a commit.
    ///
    /// Fast path first: when the *original* local transaction is still
    /// running (e.g. the commit decision was lost in transit and arrives
    /// again as a `Redo`), simply commit it — repetition is only for
    /// transactions that no longer exist.
    fn redo_until_committed(&self, gtx: GlobalTxnId, ops: &[Operation]) -> AmcResult<()> {
        let live_ltx = self.work.lock().get(&gtx).and_then(|w| w.ltx);
        if let Some(ltx) = live_ltx {
            if self.handle.engine().state_of(ltx) == Some(LocalRunState::Running)
                && self.handle.engine().commit(ltx).is_ok()
            {
                if let Some(w) = self.work.lock().get_mut(&gtx) {
                    w.committed_locally = true;
                }
                return Ok(());
            }
        }
        for attempt in 0..self.max_attempts {
            self.backoff(attempt);
            if self.marker_present(forward_marker(gtx))? {
                return Ok(());
            }
            self.stats.lock().redo_runs += 1;
            self.obs.emit(
                Some(gtx),
                self.site,
                EventKind::RedoRun {
                    attempt: u64::from(attempt) + 1,
                },
            );
            let mut all_ops = ops.to_vec();
            all_ops.push(Self::marker_op(gtx, LocalTxnId::new(0), false));
            match self.run_ops(&all_ops, true, None)? {
                Ok(ltx) => {
                    if let Some(w) = self.work.lock().get_mut(&gtx) {
                        w.ltx = Some(ltx);
                        w.committed_locally = true;
                    }
                    return Ok(());
                }
                Err(r) if r.is_erroneous() => continue,
                Err(r) => {
                    // §3.2's termination argument: the first run finished
                    // all actions, so a repetition cannot fail for logical
                    // reasons. If it does, a protocol invariant is broken.
                    return Err(AmcError::Protocol(format!(
                        "redo of {gtx} failed with intended abort ({r})"
                    )));
                }
            }
        }
        Err(AmcError::Protocol(format!(
            "redo of {gtx} exceeded {} attempts",
            self.max_attempts
        )))
    }

    /// Handle a `Decision`.
    pub fn handle_decision(
        &self,
        gtx: GlobalTxnId,
        verdict: amc_types::GlobalVerdict,
    ) -> AmcResult<Payload> {
        use amc_types::GlobalVerdict;
        let work_snapshot = self.work.lock().get(&gtx).cloned();
        let engine = self.handle.engine();
        match work_snapshot {
            // A commit decision can never legitimately follow a presumed
            // abort: the coordinator decided commit only on unanimous ready
            // votes, and a tombstone means we never voted ready.
            Some(w) if w.is_tombstone() && verdict == GlobalVerdict::Commit => {
                return Err(AmcError::Protocol(format!(
                    "commit decision for presumed-aborted {gtx} at {}",
                    self.site
                )));
            }
            Some(w) => match (w.mode, verdict) {
                (SubmitMode::TwoPhase, GlobalVerdict::Commit) => {
                    let ltx = w.ltx.ok_or_else(|| {
                        AmcError::Protocol(format!("commit decision for unstarted {gtx}"))
                    })?;
                    match engine.state_of(ltx) {
                        Some(LocalRunState::Committed) => {} // duplicate decision
                        _ => engine.commit(ltx)?,
                    }
                    self.obs
                        .emit(Some(gtx), self.site, EventKind::BlockExit { verdict });
                }
                (SubmitMode::TwoPhase, GlobalVerdict::Abort) => {
                    if let Some(ltx) = w.ltx {
                        match engine.state_of(ltx) {
                            Some(LocalRunState::Aborted) | None => {}
                            // Read-only participant: it committed at its
                            // vote and dropped out of the decision round.
                            // The coordinator can still ship us the abort
                            // when our ReadyReadOnly raced another site's
                            // no vote — a read-only commit wrote nothing,
                            // so the global abort needs no local work.
                            Some(LocalRunState::Committed) if w.committed_locally => {}
                            _ => engine.abort(ltx, AbortReason::GlobalDecision)?,
                        }
                    }
                    self.obs
                        .emit(Some(gtx), self.site, EventKind::BlockExit { verdict });
                }
                (SubmitMode::CommitAfter, GlobalVerdict::Commit) => {
                    if w.committed_locally {
                        // Read-only participant: already committed at
                        // submit; a stray decision needs no work.
                        self.resolve_recovered(gtx, verdict);
                        return Ok(Payload::Finished { gtx });
                    }
                    // Fast path: the original transaction is still running.
                    let fast_committed = match w.ltx {
                        Some(ltx) => engine.commit(ltx).is_ok(),
                        None => false,
                    };
                    if fast_committed {
                        if let Some(work) = self.work.lock().get_mut(&gtx) {
                            work.committed_locally = true;
                        }
                    } else {
                        // Erroneous abort after ready (or crash): repeat
                        // until committed.
                        self.redo_until_committed(gtx, &w.ops)?;
                    }
                }
                (SubmitMode::CommitAfter, GlobalVerdict::Abort) => {
                    if let Some(ltx) = w.ltx {
                        // Anything but Running is already gone; nothing
                        // committed, nothing to do.
                        if let Some(LocalRunState::Running) = engine.state_of(ltx) {
                            engine.abort(ltx, AbortReason::GlobalDecision)?;
                        }
                    }
                }
                (SubmitMode::CommitBefore, GlobalVerdict::Commit) => {
                    // Already committed locally; the decision is a no-op
                    // (§3.3: "the global transaction manager does not need
                    // to start further actions").
                }
                (SubmitMode::CommitBefore, GlobalVerdict::Abort) => {
                    // Abort of a *not-committed* local: nothing to do (it
                    // aborted on its own). Undo of committed locals travels
                    // in a separate `Undo` message carrying inverse ops.
                    if let Some(ltx) = w.ltx {
                        if engine.state_of(ltx) == Some(LocalRunState::Running) {
                            engine.abort(ltx, AbortReason::GlobalDecision)?;
                        }
                    }
                }
            },
            None => {
                // Unknown gtx: tolerate duplicate/late abort decisions —
                // the protocols retransmit — but leave a tombstone so a
                // late submit cannot start work the coordinator already
                // aborted. Commit decisions for work we never saw are a
                // protocol bug.
                if verdict == GlobalVerdict::Commit {
                    return Err(AmcError::Protocol(format!(
                        "commit decision for unknown {gtx} at {}",
                        self.site
                    )));
                }
                let mut work = self.work.lock();
                work.entry(gtx).or_insert_with(|| {
                    let t = Work::tombstone(SubmitMode::CommitAfter);
                    self.journal_record(gtx, &t);
                    t
                });
            }
        }
        self.resolve_recovered(gtx, verdict);
        Ok(Payload::Finished { gtx })
    }

    /// Handle a `Redo` retransmission (commit-after, after a site crash).
    pub fn handle_redo(&self, gtx: GlobalTxnId, ops: Vec<Operation>) -> AmcResult<Payload> {
        // Adopt the shipped ops if the submit predates our knowledge.
        {
            let mut work = self.work.lock();
            work.entry(gtx).or_insert(Work {
                ops: ops.clone(),
                mode: SubmitMode::CommitAfter,
                ltx: None,
                committed_locally: false,
                vote: Some(LocalVote::Ready),
                inverse_ops: Vec::new(),
                recovered: false,
            });
        }
        self.redo_until_committed(gtx, &ops)?;
        self.resolve_recovered(gtx, amc_types::GlobalVerdict::Commit);
        Ok(Payload::Finished { gtx })
    }

    /// Handle an `Undo` (commit-before, §3.3): run the inverse transaction
    /// until it commits; the undo marker makes it exactly-once.
    ///
    /// When `inverse_ops` is empty, the manager's own undo-log (captured at
    /// submit time) supplies the inverse program — the "implemented on top
    /// of the existing systems" placement of §3.3; a non-empty argument is
    /// the "in the global system" placement.
    pub fn handle_undo(&self, gtx: GlobalTxnId, inverse_ops: Vec<Operation>) -> AmcResult<Payload> {
        let inverse_ops = if inverse_ops.is_empty() {
            let work = self.work.lock();
            match work.get(&gtx) {
                Some(w) => {
                    // Captured forward-order; undo runs newest-first.
                    let mut inv = w.inverse_ops.clone();
                    inv.reverse();
                    inv
                }
                None => Vec::new(),
            }
        } else {
            inverse_ops
        };
        for attempt in 0..self.max_attempts {
            self.backoff(attempt);
            if self.marker_present(undo_marker(gtx))? {
                self.resolve_recovered(gtx, amc_types::GlobalVerdict::Abort);
                return Ok(Payload::Finished { gtx });
            }
            self.stats.lock().undo_runs += 1;
            self.obs.emit(
                Some(gtx),
                self.site,
                EventKind::UndoRun {
                    attempt: u64::from(attempt) + 1,
                },
            );
            let mut all_ops = inverse_ops.clone();
            all_ops.push(Self::marker_op(gtx, LocalTxnId::new(0), true));
            match self.run_ops(&all_ops, true, None)? {
                Ok(_) => {
                    self.resolve_recovered(gtx, amc_types::GlobalVerdict::Abort);
                    return Ok(Payload::Finished { gtx });
                }
                Err(r) if r.is_erroneous() => continue, // Fig. 6: repeat inverse
                Err(r) => {
                    return Err(AmcError::Protocol(format!(
                        "inverse transaction of {gtx} failed with intended abort ({r})"
                    )))
                }
            }
        }
        Err(AmcError::Protocol(format!(
            "undo of {gtx} exceeded {} attempts",
            self.max_attempts
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_engine::{TplConfig, TwoPLEngine};
    use amc_types::{GlobalVerdict, Operation as Op};

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }
    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    fn manager_with(data: &[(u64, i64)]) -> (LocalCommManager, Arc<TwoPLEngine>) {
        let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
        engine
            .load(data.iter().map(|&(o, val)| (obj(o), v(val))))
            .unwrap();
        let mgr = LocalCommManager::new(SiteId::new(1), EngineHandle::Preparable(engine.clone()));
        (mgr, engine)
    }

    #[test]
    fn commit_before_submit_commits_immediately() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit(
                gtx(1),
                vec![Op::Increment {
                    obj: obj(1),
                    delta: 5,
                }],
                SubmitMode::CommitBefore,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        // Durably committed, marker included.
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        assert!(mgr.marker_present(forward_marker(gtx(1))).unwrap());
    }

    #[test]
    fn commit_after_submit_leaves_running() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit(
                gtx(1),
                vec![Op::Increment {
                    obj: obj(1),
                    delta: 5,
                }],
                SubmitMode::CommitAfter,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Running));
        // Decision commit completes it.
        let f = mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(f, Payload::Finished { gtx: gtx(1) });
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
    }

    #[test]
    fn intended_failure_votes_abort() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit(
                gtx(1),
                vec![Op::Read { obj: obj(99) }], // does not exist
                SubmitMode::CommitBefore,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Aborted
            }
        );
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
        // No marker: nothing committed.
        assert!(!mgr.marker_present(forward_marker(gtx(1))).unwrap());
    }

    #[test]
    fn redo_after_erroneous_abort_commits_eventually() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
            SubmitMode::CommitAfter,
        )
        .unwrap();
        // Simulate the §3.2 hazard: the engine erroneously aborts the
        // running transaction after the ready vote.
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        engine.abort(ltx, AbortReason::LockTimeout).unwrap();
        // The decision still succeeds via the redo loop.
        mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        assert_eq!(mgr.stats().redo_runs, 1);
    }

    #[test]
    fn redo_is_exactly_once_across_crash() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
            SubmitMode::CommitAfter,
        )
        .unwrap();
        mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        // Site crashes *after* the commit; the retransmitted Redo must not
        // double-apply (E8).
        engine.crash();
        engine.recover().unwrap();
        mgr.handle_redo(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        assert_eq!(mgr.stats().redo_runs, 0, "marker short-circuits the redo");
    }

    #[test]
    fn redo_after_crash_before_commit_applies_once() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
            SubmitMode::CommitAfter,
        )
        .unwrap();
        // Crash while still running: the local transaction evaporates.
        engine.crash();
        engine.recover().unwrap();
        mgr.handle_redo(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        assert_eq!(mgr.stats().redo_runs, 1);
        // A duplicate redo changes nothing.
        mgr.handle_redo(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
    }

    #[test]
    fn undo_reverses_committed_work_exactly_once() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
            SubmitMode::CommitBefore,
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        // Global abort: run the inverse.
        mgr.handle_undo(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: -5,
            }],
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
        assert_eq!(mgr.stats().undo_runs, 1);
        // Duplicate undo (retransmission): marker stops it (E8).
        mgr.handle_undo(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: -5,
            }],
        )
        .unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
        assert_eq!(mgr.stats().undo_runs, 1);
    }

    #[test]
    fn undo_with_empty_ops_uses_local_undo_log() {
        // The comm manager captured inverses at submit time (§3.3's
        // undo-log "implemented on top of the existing systems").
        let (mgr, engine) = manager_with(&[(1, 10), (2, 20)]);
        mgr.handle_submit(
            gtx(1),
            vec![
                Op::Write {
                    obj: obj(1),
                    value: v(111),
                },
                Op::Increment {
                    obj: obj(2),
                    delta: 7,
                },
                Op::Insert {
                    obj: obj(3),
                    value: v(3),
                },
            ],
            SubmitMode::CommitBefore,
        )
        .unwrap();
        let d = engine.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(111)));
        assert_eq!(d.get(&obj(2)), Some(&v(27)));
        assert_eq!(d.get(&obj(3)), Some(&v(3)));
        // Global abort with an empty payload: local inverses must restore
        // everything.
        mgr.handle_undo(gtx(1), vec![]).unwrap();
        let d = engine.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(10)));
        assert_eq!(d.get(&obj(2)), Some(&v(20)));
        assert_eq!(d.get(&obj(3)), None);
    }

    #[test]
    fn prepare_after_crash_answers_from_markers() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        // Committed-before transaction, then crash.
        mgr.handle_submit(
            gtx(1),
            vec![Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
            SubmitMode::CommitBefore,
        )
        .unwrap();
        engine.crash();
        engine.recover().unwrap();
        // §3.3: after recovery the answer comes from durable state.
        let p = mgr.handle_prepare(gtx(1)).unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        // And for a transaction that never committed:
        let p = mgr.handle_prepare(gtx(99)).unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(99),
                vote: LocalVote::Aborted
            }
        );
    }

    #[test]
    fn two_phase_prepare_then_commit() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Write {
                obj: obj(1),
                value: v(42),
            }],
            SubmitMode::TwoPhase,
        )
        .unwrap();
        let p = mgr.handle_prepare(gtx(1)).unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Ready));
        mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(42)));
    }

    #[test]
    fn two_phase_on_plain_engine_is_a_config_error() {
        let engine = Arc::new(TwoPLEngine::with_defaults());
        engine.load([(obj(1), v(1))]).unwrap();
        // Wrap as *plain* — the integration reality.
        let mgr = LocalCommManager::new(SiteId::new(1), EngineHandle::Plain(engine));
        mgr.handle_submit(gtx(1), vec![Op::Read { obj: obj(1) }], SubmitMode::TwoPhase)
            .unwrap();
        assert!(matches!(
            mgr.handle_prepare(gtx(1)),
            Err(AmcError::Protocol(_))
        ));
    }

    #[test]
    fn decision_abort_rolls_back_running_work() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit(
            gtx(1),
            vec![Op::Write {
                obj: obj(1),
                value: v(42),
            }],
            SubmitMode::CommitAfter,
        )
        .unwrap();
        mgr.handle_decision(gtx(1), GlobalVerdict::Abort).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn submit_prepare_piggybacks_the_vote_in_one_exchange() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit_prepare(
                gtx(1),
                vec![Op::Increment {
                    obj: obj(1),
                    delta: 5,
                }],
                false,
                SubmitMode::TwoPhase,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        // The engine is already in the ready state — no Prepare round needed.
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Ready));
        // A late Prepare inquiry (retransmission) answers idempotently.
        let p = mgr.handle_prepare(gtx(1)).unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
    }

    #[test]
    fn submit_prepare_duplicate_answers_idempotently() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let ops = vec![Op::Increment {
            obj: obj(1),
            delta: 5,
        }];
        let first = mgr
            .handle_submit_prepare(gtx(1), ops.clone(), false, SubmitMode::TwoPhase)
            .unwrap();
        let second = mgr
            .handle_submit_prepare(gtx(1), ops, false, SubmitMode::TwoPhase)
            .unwrap();
        assert_eq!(first, second);
        mgr.handle_decision(gtx(1), GlobalVerdict::Commit).unwrap();
        assert_eq!(
            engine.dump().unwrap().get(&obj(1)),
            Some(&v(15)),
            "applied exactly once"
        );
    }

    #[test]
    fn submit_prepare_solo_commits_locally_with_undo_obligations() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit_prepare(
                gtx(1),
                vec![Op::Increment {
                    obj: obj(1),
                    delta: 5,
                }],
                true,
                SubmitMode::TwoPhase,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Ready
            }
        );
        // Committed at once, marker written — no global round needed.
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(15)));
        assert!(mgr.marker_present(forward_marker(gtx(1))).unwrap());
        // If the reply had been lost, the coordinator's presumed-abort
        // obligation still finds the captured inverse program.
        mgr.handle_undo(gtx(1), vec![]).unwrap();
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn submit_prepare_intended_failure_votes_abort() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit_prepare(
                gtx(1),
                vec![Op::Read { obj: obj(99) }],
                false,
                SubmitMode::TwoPhase,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::Aborted
            }
        );
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn submit_prepare_read_only_commits_and_drops_out() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        let p = mgr
            .handle_submit_prepare(
                gtx(1),
                vec![Op::Read { obj: obj(1) }],
                false,
                SubmitMode::TwoPhase,
            )
            .unwrap();
        assert_eq!(
            p,
            Payload::Vote {
                gtx: gtx(1),
                vote: LocalVote::ReadyReadOnly
            }
        );
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Committed));
    }

    /// A read-only 2PC participant commits at its vote; if another site
    /// then votes no, the coordinator can still ship us the global abort
    /// (our ReadyReadOnly may not have reached it before it decided). A
    /// read-only commit wrote nothing, so the abort must be a no-op — not
    /// an `UnknownTxn` error from aborting a terminated transaction.
    #[test]
    fn abort_decision_after_read_only_local_commit_is_a_no_op() {
        let (mgr, engine) = manager_with(&[(1, 10)]);
        mgr.handle_submit_prepare(
            gtx(1),
            vec![Op::Read { obj: obj(1) }],
            false,
            SubmitMode::TwoPhase,
        )
        .unwrap();
        let ltx = mgr.local_txn_of(gtx(1)).unwrap();
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Committed));
        let p = mgr.handle_decision(gtx(1), GlobalVerdict::Abort).unwrap();
        assert_eq!(p, Payload::Finished { gtx: gtx(1) });
        assert_eq!(engine.state_of(ltx), Some(LocalRunState::Committed));
        assert_eq!(engine.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn late_abort_decision_for_unknown_gtx_is_tolerated() {
        let (mgr, _) = manager_with(&[]);
        let p = mgr.handle_decision(gtx(9), GlobalVerdict::Abort).unwrap();
        assert_eq!(p, Payload::Finished { gtx: gtx(9) });
        assert!(matches!(
            mgr.handle_decision(gtx(9), GlobalVerdict::Commit),
            Err(AmcError::Protocol(_))
        ));
    }
}
