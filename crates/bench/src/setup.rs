//! Shared experiment setup: build loaded federations and program batches.

use amc_core::{Federation, FederationConfig, ProtocolKind};
use amc_engine::TplConfig;
use amc_mlt::ConflictPolicy;
use amc_types::{Operation, SiteId};
use amc_wal::GroupCommitConfig;
use amc_workload::{GlobalProgram, MixGen, MixKind, MixSpec, WorkloadGen, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A program batch in the form `run_concurrent` consumes.
pub type ProgramBatch = Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)>;

/// The benchmark tuning every throughput experiment shares: short lock
/// timeouts so contention resolves quickly, modelled 1991-scale service
/// and message costs so protocol lock tenure matters. Factored out so
/// E15 can apply identical tuning to `MixSpec`-driven federations.
pub fn tuned_config(sites: u32, protocol: ProtocolKind, policy: ConflictPolicy) -> FederationConfig {
    let mut cfg = FederationConfig::uniform(sites, protocol);
    cfg.policy = policy;
    cfg.tpl = TplConfig {
        buckets: 128,
        pool_frames: 256,
        // Short: timed-out waiters retry or give up quickly, so the rare
        // cross-site lock cycle between a mandatory redo and a pre-vote
        // submit resolves in milliseconds.
        lock_timeout: Duration::from_millis(100),
        deadlock_check: Duration::from_millis(1),
        // Local work is not free in 1991: ~50 µs per operation, so a
        // repeated execution (redo) has a visible cost.
        op_service_time: Duration::from_micros(50),
        // Commit-record forces cost a modelled ~0.5 ms of "disk" (a 1991
        // fsync is not free either), and leaders linger briefly so
        // concurrent committers share one force — the group-commit
        // amortization E9 measures.
        group_commit: GroupCommitConfig {
            force_latency: Duration::from_micros(500),
            max_wait: Duration::from_micros(200),
            ..GroupCommitConfig::default()
        },
    };
    cfg.l1_timeout = Duration::from_millis(500);
    // One coordinator<->site exchange costs ~0.15 ms *per leg* (the delay
    // applies to the request and the reply symmetrically, so a round trip
    // is ~0.3 ms) — the 1991-scale ratio of communication to local work
    // that makes lock tenure matter.
    cfg.message_delay = Duration::from_micros(150);
    cfg
}

/// Build a federation for `protocol` with `policy`, engines tuned for
/// benchmarking ([`tuned_config`]), and every site pre-loaded with the
/// spec's initial data.
pub fn build_federation(
    protocol: ProtocolKind,
    policy: ConflictPolicy,
    spec: &WorkloadSpec,
) -> Arc<Federation> {
    let cfg = tuned_config(spec.sites, protocol, policy);
    let mut fed = Federation::new(cfg);
    // Benchmarks skip the oracle bookkeeping; correctness runs (E6)
    // re-enable it explicitly.
    fed.set_recording(false, false);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }
    Arc::new(fed)
}

/// Same, with recording on (oracle experiments).
pub fn build_recording_federation(
    protocol: ProtocolKind,
    policy: ConflictPolicy,
    spec: &WorkloadSpec,
) -> Arc<Federation> {
    let mut cfg = FederationConfig::uniform(spec.sites, protocol);
    cfg.policy = policy;
    cfg.l1_timeout = Duration::from_millis(500);
    cfg.tpl.lock_timeout = Duration::from_millis(500);
    let fed = Federation::new(cfg);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }
    Arc::new(fed)
}

/// Generate `n` programs as a batch.
pub fn program_batch(spec: &WorkloadSpec, seed: u64, n: usize) -> ProgramBatch {
    let mut gen = WorkloadGen::new(spec.clone(), seed);
    gen.programs(n)
        .into_iter()
        .map(|p: GlobalProgram| (p.per_site, p.intends_abort))
        .collect()
}

/// Generate `n` programs of a contention-aware mix as a batch (E15).
pub fn mix_batch(kind: MixKind, spec: &MixSpec, seed: u64, n: usize) -> ProgramBatch {
    let mut gen = MixGen::new(kind, spec.clone(), seed);
    gen.programs(n)
        .into_iter()
        .map(|p: GlobalProgram| (p.per_site, p.intends_abort))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_run_smoke() {
        let spec = WorkloadSpec {
            sites: 2,
            objects_per_site: 50,
            ops_per_txn: 4,
            ..WorkloadSpec::default()
        };
        let fed = build_federation(ProtocolKind::CommitBefore, ConflictPolicy::Semantic, &spec);
        let batch = program_batch(&spec, 1, 10);
        assert_eq!(batch.len(), 10);
        let metrics = fed.run_concurrent(batch, 2);
        assert!(metrics.committed > 0);
    }
}
