//! Plain-text table rendering for the `report` binary.

use std::fmt::Write as _;

/// A fixed-column text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "| {:<width$} ", cell, width = widths[i]);
            }
            s.push('|');
            s
        };
        let header = line(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format an optional statistic with 2 decimals. An absent value (the
/// underlying sample count was zero) renders as `n=0` — never NaN, never a
/// fabricated 0.00.
pub fn opt2(x: Option<f64>) -> String {
    x.map_or_else(|| "n=0".to_string(), f2)
}

/// Format an optional statistic with 3 decimals (rates/fractions), with
/// the same `n=0` convention as [`opt2`].
pub fn opt3(x: Option<f64>) -> String {
    x.map_or_else(|| "n=0".to_string(), f3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100000".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn arity_is_checked() {
        let mut t = TextTable::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(opt2(Some(1.2345)), "1.23");
        assert_eq!(opt2(None), "n=0");
        assert_eq!(opt3(Some(0.1239)), "0.124");
        assert_eq!(opt3(None), "n=0");
    }
}
