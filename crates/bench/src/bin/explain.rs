//! Trace explainer: reproduce a seeded nemesis chaos run and print the
//! causal event timeline of one (or every) global transaction.
//!
//! ```text
//! cargo run -p amc-bench --bin explain -- --seed 7
//! cargo run -p amc-bench --bin explain -- --seed 7 --txn 3 --protocol 2pc
//! cargo run -p amc-bench --bin explain -- --seed 5 --protocol commit-after --skip-decision-log
//! ```
//!
//! The run is the E5c scenario: two sites, five staggered disjoint
//! transfers, and a generated fault schedule (crashes with torn WAL tails,
//! directed partitions, loss bursts) — all derived deterministically from
//! `--seed`, so the printed timeline is bit-for-bit reproducible. The
//! `--skip-decision-log` knob disables the central decision-log force (the
//! injected atomicity bug the chaos harness hunts); the timeline then shows
//! the causal chain of the violation: `decide commit` → central `crash` →
//! `resume (no decision record: presume abort)`.
//!
//! Networked runs are explained from an event dump instead of a seed:
//!
//! ```text
//! amc-loadgen --sites ... --events-out /tmp/run.tsv
//! cargo run -p amc-bench --bin explain -- --events /tmp/run.tsv --txn 3
//! ```
//!
//! The dump is the loadgen's client-side observability log (`seq  at_us
//! txn  site  event`, one line per event — rpc retries, load-sheds and
//! reconnects included); `--txn` filters it to one global transaction.
//! Sharded-mode dumps (`amc-loadgen --coordinators`) carry `C<k>` in the
//! site column, and `--coordinator <k>` filters to that shard slot's
//! traffic.
//!
//! Exits non-zero when the requested timeline is empty.

use amc_core::{FederationConfig, SimConfig, SimFederation};
use amc_sim::{generate_faults, NemesisConfig};
use amc_types::{
    GlobalTxnId, ObjectId, Operation, ProtocolKind, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const OBJS: u64 = 5;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

struct Args {
    seed: Option<u64>,
    events: Option<String>,
    txn: Option<u64>,
    coordinator: Option<u32>,
    protocol: ProtocolKind,
    skip_decision_log: bool,
}

/// The seed-mode arguments once an `--events` dump has been ruled out.
struct SimArgs {
    seed: u64,
    txn: Option<u64>,
    protocol: ProtocolKind,
    skip_decision_log: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: explain --seed <u64> [--txn <1..={OBJS}>] \
         [--protocol 2pc|commit-after|commit-before] [--skip-decision-log]\n\
         \x20      explain --events <dump.tsv> [--txn <gtx>] [--coordinator <k>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut seed = None;
    let mut events = None;
    let mut txn = None;
    let mut coordinator = None;
    let mut protocol = ProtocolKind::CommitBefore;
    let mut skip_decision_log = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok());
                if seed.is_none() {
                    usage();
                }
            }
            "--events" => {
                events = it.next();
                if events.is_none() {
                    usage();
                }
            }
            "--txn" => {
                txn = it.next().and_then(|v| v.parse().ok());
                if txn.is_none() {
                    usage();
                }
            }
            "--coordinator" => {
                coordinator = it.next().and_then(|v| v.parse().ok());
                if coordinator.is_none() {
                    usage();
                }
            }
            "--protocol" => {
                let label = it.next().unwrap_or_default();
                match ProtocolKind::ALL.iter().find(|p| p.label() == label) {
                    Some(p) => protocol = *p,
                    None => usage(),
                }
            }
            "--skip-decision-log" => skip_decision_log = true,
            _ => usage(),
        }
    }
    if seed.is_none() && events.is_none() {
        usage();
    }
    if coordinator.is_some() && events.is_none() {
        // The coordinator filter only makes sense on a sharded dump.
        usage();
    }
    Args {
        seed,
        events,
        txn,
        coordinator,
        protocol,
        skip_decision_log,
    }
}

/// Explain a networked run from a loadgen `--events-out` TSV dump:
/// `seq  at_us  txn  site  event`, txn rendered as `G<n>` (or `-`) in
/// site-server dumps and as the raw gtx in sharded dumps (where the site
/// column is `C<slot>`).
fn explain_dump(path: &str, txn: Option<u64>, coordinator: Option<u32>) -> ExitCode {
    let Ok(raw) = std::fs::read_to_string(path) else {
        eprintln!("cannot read {path}");
        return ExitCode::FAILURE;
    };
    // Sharded dumps carry the bare gtx; site-server dumps render `G<n>`.
    let wanted = txn.map(|t| [format!("G{t}"), t.to_string()]);
    let wanted_coord = coordinator.map(|k| format!("C{k}"));
    let mut shown = 0usize;
    let mut total = 0usize;
    let mut txns: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for line in raw.lines() {
        let mut cols = line.splitn(5, '\t');
        let (Some(seq), Some(_at), Some(t), Some(site), Some(kind)) = (
            cols.next(),
            cols.next(),
            cols.next(),
            cols.next(),
            cols.next(),
        ) else {
            continue;
        };
        total += 1;
        if t != "-" {
            txns.insert(t.to_string());
        }
        if let Some(w) = &wanted {
            if !w.iter().any(|w| t == w) {
                continue;
            }
        }
        if let Some(w) = &wanted_coord {
            if site != w {
                continue;
            }
        }
        println!("[{seq:>6}] {t:<6} site {site:<3} {kind}");
        shown += 1;
    }
    eprintln!();
    eprintln!(
        "{shown} of {total} events shown, {} transactions in dump",
        txns.len()
    );
    if shown == 0 {
        if let Some(w) = wanted {
            eprintln!(
                "(no events for {} — transaction never reached the wire?)",
                w[0]
            );
        }
        if let Some(w) = wanted_coord {
            eprintln!("(no events routed to coordinator {w})");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.events {
        return explain_dump(path, args.txn, args.coordinator);
    }
    let Some(seed) = args.seed else { usage() };
    let args = SimArgs {
        seed,
        txn: args.txn,
        protocol: args.protocol,
        skip_decision_log: args.skip_decision_log,
    };
    // Same schedule shape as the E5c sweep: the transfers all land in the
    // first ~100 ms of virtual time, so the fault horizon is squeezed onto
    // that span — a seed's plan perturbs live transactions, not idle air.
    let nemesis = NemesisConfig {
        fault_horizon: SimTime(120_000),
        max_hold: SimDuration::from_micros(60_000),
        ..NemesisConfig::default()
    };
    let plan = generate_faults(&nemesis, args.seed);
    let mut cfg = SimConfig::new(FederationConfig::uniform(2, args.protocol));
    cfg.seed = args.seed;
    cfg.faults = plan.clone();
    cfg.retransmit_every = SimDuration::from_millis(5);
    cfg.horizon = SimDuration::from_millis(30_000);
    cfg.unsafe_skip_decision_log = args.skip_decision_log;
    let fed = SimFederation::new(cfg);
    for s in 1..=2u32 {
        let data: Vec<(ObjectId, Value)> = (0..OBJS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data);
    }
    let programs: Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)> = (0..OBJS)
        .map(|i| {
            (
                SimDuration::from_millis(i * 20),
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i),
                            delta: -10,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i),
                            delta: 10,
                        }],
                    ),
                ]),
            )
        })
        .collect();
    let report = fed.run(programs);

    println!(
        "nemesis run: seed {} protocol {} faults {} ({} events recorded, {} evicted)",
        args.seed,
        args.protocol.label(),
        plan.len(),
        report.events.total_recorded(),
        report.events.evicted(),
    );
    if args.skip_decision_log {
        println!("decision-log force DISABLED (--skip-decision-log): expect atomicity damage");
    }
    println!();

    let txns: Vec<u64> = match args.txn {
        Some(t) => vec![t],
        None => (1..=OBJS).collect(),
    };
    let mut empty = false;
    for t in txns {
        let gtx = GlobalTxnId::new(t);
        let verdict = report
            .outcomes
            .get(&gtx)
            .map_or("UNRESOLVED".to_string(), |v| v.to_string());
        println!("=== {gtx}: verdict {verdict} ===");
        let timeline = report.events.render_timeline(gtx);
        if timeline.is_empty() {
            println!("(no events — transaction never started?)");
            empty = true;
        } else {
            print!("{timeline}");
        }
        println!();
    }

    let derived = report.events.derive();
    println!("derived (all transactions):");
    println!("  commit latency us   {}", derived.commit_latency_us);
    println!("  resolve latency us  {}", derived.resolve_latency_us);
    println!("  blocking window us  {}", derived.blocking_window_us);
    println!("  redo chain depth    {}", derived.redo_depth);
    println!("  undo chain depth    {}", derived.undo_depth);
    println!("  messages per txn    {}", derived.msgs_per_txn);

    if empty {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
