//! Regenerate the experiment tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p amc-bench --bin report            # everything
//! cargo run --release -p amc-bench --bin report -- e1 e4   # a subset
//! cargo run --release -p amc-bench --bin report -- quick   # reduced sizes
//! ```

use amc_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let wants = |id: &str| {
        args.is_empty() || args.iter().all(|a| a == "quick") || args.iter().any(|a| a == id)
    };
    // Sizes: full vs quick.
    let (txns, threads) = if quick { (60, 4) } else { (240, 6) };

    println!("atomic commitment for integrated database systems — experiment report");
    println!("(reproduction of Muth & Rakow, ICDE 1991; shapes, not 1991 hardware numbers)");
    println!();

    if wants("e1") {
        let thetas = if quick {
            vec![0.0, 0.99]
        } else {
            vec![0.0, 0.6, 0.9, 0.99]
        };
        let rows = e1_concurrency::run(txns, threads, &thetas);
        print!("{}", e1_concurrency::table(&rows).render());
        for v in e1_concurrency::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e2") {
        let ps = if quick {
            vec![0.0, 0.3]
        } else {
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        };
        let rows = e2_redo::run(txns, threads, &ps);
        print!("{}", e2_redo::table(&rows).render());
        for v in e2_redo::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e3") {
        let rates = if quick {
            vec![0.0, 0.4]
        } else {
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        };
        let rows = e3_abort_cost::run(txns, threads, &rates);
        print!("{}", e3_abort_cost::table(&rows).render());
        for v in e3_abort_cost::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e4") {
        let rows = e4_complexity::run(if quick { 10 } else { 50 });
        print!("{}", e4_complexity::table(&rows).render());
        for v in e4_complexity::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e5") {
        let crash_times = if quick {
            vec![100, 1_500]
        } else {
            vec![100, 400, 800, 1_200, 1_600, 2_400]
        };
        let rows = e5_crash::run(&crash_times, 40);
        print!("{}", e5_crash::table(&rows).render());
        for v in e5_crash::verdicts(&rows) {
            println!("{v}");
        }
        println!();
        let rows = e5_crash::run_central(&crash_times, 40);
        print!("{}", e5_crash::central_table(&rows).render());
        for v in e5_crash::central_verdicts(&rows) {
            println!("{v}");
        }
        println!();
        let seeds: Vec<u64> = if quick {
            (0..4).collect()
        } else {
            (0..20).collect()
        };
        let rows = e5_crash::run_nemesis(&seeds);
        print!("{}", e5_crash::nemesis_table(&rows).render());
        for v in e5_crash::nemesis_verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e6") {
        let seeds = if quick { vec![1] } else { vec![1, 2, 3] };
        let rows = e6_correctness::run(&seeds, if quick { 40 } else { 120 }, threads);
        print!("{}", e6_correctness::table(&rows).render());
        for v in e6_correctness::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e7") {
        let thetas = if quick {
            vec![0.99]
        } else {
            vec![0.0, 0.9, 0.99]
        };
        let rows = e7_ablation::run(txns, threads, &thetas);
        print!("{}", e7_ablation::table(&rows).render());
        for v in e7_ablation::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e9") {
        let thread_counts = [1usize, 2, 4, 8];
        let rows = e9_threaded::run(if quick { 60 } else { 200 }, &thread_counts);
        print!("{}", e9_threaded::table(&rows).render());
        for v in e9_threaded::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e10") {
        let client_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
        let rows = e10_rpc::run(if quick { 80 } else { 240 }, client_counts);
        print!("{}", e10_rpc::table(&rows).render());
        for v in e10_rpc::verdicts(&rows) {
            println!("{v}");
        }
        // High-concurrency profile: hundreds of driver threads, every
        // server-runtime × client-flavour combination.
        let hc = e10_rpc::run_high_concurrency(if quick { 400 } else { 1000 }, 200);
        print!("{}", e10_rpc::hc_table(&hc).render());
        for v in e10_rpc::hc_verdicts(&hc) {
            println!("{v}");
        }
        println!();
    }

    if wants("e11") {
        let lengths: &[usize] = if quick {
            &[100, 1000]
        } else {
            &[200, 1000, 4000]
        };
        let lingers: &[u64] = if quick {
            &[0, 2000]
        } else {
            &[0, 100, 500, 2000]
        };
        let (recovery, fsync) = e11_recovery::run(lengths, lingers, if quick { 400 } else { 1600 });
        print!("{}", e11_recovery::recovery_table(&recovery).render());
        print!("{}", e11_recovery::fsync_table(&fsync).render());
        for v in e11_recovery::verdicts(&recovery, &fsync) {
            println!("{v}");
        }
        println!();
    }

    if wants("e12") {
        let outages: &[u64] = if quick { &[25, 200] } else { &[25, 100, 400] };
        let (windows, costs) = e12_paxos::run(outages, if quick { 60 } else { 200 });
        print!("{}", e12_paxos::window_table(&windows).render());
        print!("{}", e12_paxos::cost_table(&costs).render());
        for v in e12_paxos::verdicts(&windows, &costs) {
            println!("{v}");
        }
        let linger = e12_paxos::run_linger(if quick { 25 } else { 60 }, 8);
        print!("{}", e12_paxos::linger_table(&linger).render());
        for v in e12_paxos::linger_verdicts(&linger) {
            println!("{v}");
        }
        println!();
    }

    if wants("e13") {
        let rows = e13_fastpath::run(if quick { 100 } else { 300 }, threads);
        print!("{}", e13_fastpath::table(&rows).render());
        for v in e13_fastpath::verdicts(&rows) {
            println!("{v}");
        }
        println!();
    }

    if wants("e14") {
        let scale = e14_shard::run_scaling(if quick { 30 } else { 80 }, &[1, 2, 4, 8]);
        print!("{}", e14_shard::scaling_table(&scale).render());
        let reconfig = e14_shard::run_reconfig(if quick { 80 } else { 200 });
        print!("{}", e14_shard::reconfig_table(&reconfig).render());
        let tcp = e14_shard::run_tcp(if quick { 120 } else { 400 }, 4);
        print!("{}", e14_shard::tcp_table(&tcp).render());
        for v in e14_shard::verdicts(&scale, &reconfig, &tcp) {
            println!("{v}");
        }
        println!();
    }

    if wants("e15") {
        let (n, clients) = if quick { (40, 4) } else { (160, 6) };
        let contention = e15_regime::run_contention(n, clients);
        print!(
            "{}",
            e15_regime::table(
                "E15 — regime map, contention lane (hotkey mix, 48 hot counters/site)",
                "theta",
                &contention,
            )
            .render()
        );
        let fanout = e15_regime::run_fanout(n, clients);
        print!(
            "{}",
            e15_regime::table(
                "E15 — regime map, fan-out lane (tpcc-lite NewOrder, theta 0.6)",
                "fan-out",
                &fanout,
            )
            .render()
        );
        let aborts = e15_regime::run_aborts(n, clients);
        print!(
            "{}",
            e15_regime::table(
                "E15 — regime map, intended-abort lane (zipf mix, theta 0.6)",
                "abort dial",
                &aborts,
            )
            .render()
        );
        let wire = e15_regime::run_wire(if quick { 40 } else { 120 }, clients);
        let wire_rows: Vec<e15_regime::Row> = wire.iter().map(|w| w.row.clone()).collect();
        print!(
            "{}",
            e15_regime::table(
                "E15 — regime map, wire lane (tpcc-lite escrow reserves, theta 0.9)",
                "wire",
                &wire_rows,
            )
            .render()
        );
        for lane in [
            ("contention", &contention),
            ("fan-out", &fanout),
            ("aborts", &aborts),
            ("wire", &wire_rows),
        ] {
            for w in e15_regime::winners(lane.0, lane.1) {
                println!("{w}");
            }
        }
        for v in e15_regime::verdicts(&contention, &fanout, &aborts, &wire) {
            println!("{v}");
        }
        println!();
    }
}
