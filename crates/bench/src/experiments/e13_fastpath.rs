//! **E13 — the fast-path commit layer: vote piggyback + single-site
//! bypass** (amc-core).
//!
//! Sweep the single-site fraction of a disjoint transfer workload from 0%
//! to 100% and run each point through four commit layers: fast-path 2PC
//! (the tentpole: `SubmitPrepare` piggybacks the vote on the final op
//! dispatch, and single-site transactions bypass the global round
//! entirely) against the three baselines — classic 2PC, commit-after and
//! commit-before — on both wires (in-process dispatch and loopback TCP).
//!
//! The claimed shapes:
//!
//! * the piggyback saves one round trip per multi-site transaction —
//!   fast-path msgs/txn sits below classic 2PC at **every** sweep point
//!   (8 vs 12 for a pure 2-site mix), and the gap is at least the two
//!   messages of the folded prepare round;
//! * a 100%-single-site mix commits with **zero** global rounds — the
//!   solo dispatch and its reply are the only messages (2/txn, against
//!   classic 2PC's 6).

use crate::setup::ProgramBatch;
use crate::table::{opt2, TextTable};
use amc_core::{submit_mode_for, Federation, FederationConfig};
use amc_engine::{TplConfig, TwoPLEngine};
use amc_mlt::ConflictPolicy;
use amc_net::comm::EngineHandle;
use amc_net::transport::{FederationTransport, InProcessTransport};
use amc_net::LocalCommManager;
use amc_obs::ObsSink;
use amc_rpc::{RetryPolicy, SiteServer, TcpTransport};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

pub use super::e10_rpc::Wire;

const SITES: u32 = 2;
const PER_OBJ: i64 = 100;

/// The commit layer a cell runs: the fast path or one of its baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// 2PC with the fast path on: vote piggyback + single-site bypass.
    FastPath,
    /// Classic 2PC — explicit work, prepare and decision rounds.
    Classic2pc,
    /// Commit-after (redo recovery), the paper's §3.2 baseline.
    CommitAfter,
    /// Commit-before (undo recovery), the paper's §3.3 baseline.
    CommitBefore,
}

impl Layer {
    /// Every layer, fast path first.
    pub const ALL: [Layer; 4] = [
        Layer::FastPath,
        Layer::Classic2pc,
        Layer::CommitAfter,
        Layer::CommitBefore,
    ];

    /// Short label for the table.
    pub fn label(self) -> &'static str {
        match self {
            Layer::FastPath => "2pc+fast-path",
            Layer::Classic2pc => "2pc",
            Layer::CommitAfter => "commit-after",
            Layer::CommitBefore => "commit-before",
        }
    }

    fn protocol(self) -> ProtocolKind {
        match self {
            Layer::FastPath | Layer::Classic2pc => ProtocolKind::TwoPhaseCommit,
            Layer::CommitAfter => ProtocolKind::CommitAfter,
            Layer::CommitBefore => ProtocolKind::CommitBefore,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Percentage of single-site transactions in the mix.
    pub pct_single: usize,
    /// Commit layer under test.
    pub layer: Layer,
    /// Transport under test.
    pub wire: Wire,
    /// Commits achieved.
    pub committed: u64,
    /// Protocol messages per committed transaction.
    pub msgs_per_txn: Option<f64>,
    /// Median commit latency, ms.
    pub p50_ms: Option<f64>,
    /// Tail commit latency, ms.
    pub p99_ms: Option<f64>,
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Disjoint sum-neutral programs: transaction *i* touches only its own
/// objects, so the measured cost is the message path, not lock queueing.
/// `pct_single` percent of the mix (interleaved, not front-loaded) are
/// single-site two-op updates; the rest are 2-site transfers.
fn programs(txns: usize, pct_single: usize) -> ProgramBatch {
    (0..txns)
        .map(|i| {
            let i_u = i as u64;
            let per_site = if (i % 100) < pct_single {
                let s = (i as u32 % SITES) + 1;
                BTreeMap::from([(
                    SiteId::new(s),
                    vec![
                        Operation::Increment {
                            obj: obj(s, i_u),
                            delta: 3,
                        },
                        Operation::Increment {
                            obj: obj(s, txns as u64 + i_u),
                            delta: -3,
                        },
                    ],
                )])
            } else {
                BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i_u),
                            delta: -3,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i_u),
                            delta: 3,
                        }],
                    ),
                ])
            };
            (per_site, false)
        })
        .collect()
}

/// Engines with no modelled delays, as in E10: the fast path's win is
/// fewer message rounds, so nothing synthetic is added on either wire.
fn managers() -> BTreeMap<SiteId, Arc<LocalCommManager>> {
    (1..=SITES)
        .map(|s| {
            let site = SiteId::new(s);
            let cfg = TplConfig {
                lock_timeout: Duration::from_millis(100),
                deadlock_check: Duration::from_millis(1),
                ..TplConfig::default()
            };
            let engine = Arc::new(TwoPLEngine::new(cfg));
            (
                site,
                Arc::new(LocalCommManager::new(
                    site,
                    EngineHandle::Preparable(engine),
                )),
            )
        })
        .collect()
}

/// Run one (layer, wire, single-site fraction) cell and return its row.
fn run_cell(layer: Layer, wire: Wire, pct_single: usize, txns: usize, clients: usize) -> Row {
    let protocol = layer.protocol();
    let mode = submit_mode_for(protocol);
    let managers = managers();

    let mut servers: Vec<SiteServer> = Vec::new();
    let transport: Arc<dyn FederationTransport> = match wire {
        Wire::InProcess => Arc::new(InProcessTransport::new(
            managers.clone(),
            mode,
            Duration::ZERO,
        )),
        Wire::TcpLoopback => {
            let mut addrs = BTreeMap::new();
            for (&site, manager) in &managers {
                let srv = SiteServer::spawn(
                    site,
                    Arc::clone(manager),
                    mode,
                    "127.0.0.1:0",
                    ObsSink::disabled(),
                )
                .expect("bind loopback");
                addrs.insert(site, srv.addr());
                servers.push(srv);
            }
            Arc::new(TcpTransport::new(
                addrs,
                RetryPolicy::default(),
                ObsSink::disabled(),
            ))
        }
    };

    let mut cfg = FederationConfig::uniform(SITES, protocol);
    if layer == Layer::FastPath {
        cfg = cfg.with_fast_path();
    }
    cfg.policy = ConflictPolicy::Semantic;
    cfg.l1_timeout = Duration::from_millis(500);
    let mut fed = Federation::with_transport(cfg, transport);
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..2 * txns as u64)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }

    let m = fed.run_concurrent(programs(txns, pct_single), clients);
    drop(fed);
    for srv in servers {
        srv.shutdown();
    }
    Row {
        pct_single,
        layer,
        wire,
        committed: m.committed,
        msgs_per_txn: m.messages_per_commit(),
        p50_ms: m.latency_p50_ms(),
        p99_ms: m.latency_p99_ms(),
    }
}

/// The sweep points: single-site fraction 0% → 100%.
pub const SWEEP: [usize; 5] = [0, 25, 50, 75, 100];

/// Run the sweep.
pub fn run(txns: usize, clients: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for wire in [Wire::InProcess, Wire::TcpLoopback] {
        for pct in SWEEP {
            for layer in Layer::ALL {
                rows.push(run_cell(layer, wire, pct, txns, clients));
            }
        }
    }
    rows
}

/// Render as the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E13 — fast-path commit layer: vote piggyback + single-site bypass",
        &[
            "single %", "layer", "wire", "commits", "msg/txn", "p50 ms", "p99 ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.pct_single.to_string(),
            r.layer.label().to_string(),
            r.wire.label().to_string(),
            r.committed.to_string(),
            opt2(r.msgs_per_txn),
            opt2(r.p50_ms),
            opt2(r.p99_ms),
        ]);
    }
    t
}

/// The shape checks for this experiment.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let cell = |layer: Layer, wire: Wire, pct: usize| {
        rows.iter()
            .find(|r| r.layer == layer && r.wire == wire && r.pct_single == pct)
    };

    // E13-1: every (layer, wire, fraction) cell commits.
    let all_commit = rows.iter().all(|r| r.committed > 0);
    out.push(format!(
        "[{}] E13-1: every (layer, wire, fraction) cell commits transactions ({} cells)",
        if all_commit { "PASS" } else { "FAIL" },
        rows.len(),
    ));

    // E13-2: the piggyback saves at least one round trip per multi-site
    // transaction — fast-path msgs/txn < classic 2PC at EVERY sweep
    // point on both wires, by >= 2 messages whenever the mix has
    // multi-site transactions.
    let mut points = 0;
    let mut saved = 0;
    for wire in [Wire::InProcess, Wire::TcpLoopback] {
        for pct in SWEEP {
            let (fast, classic) = (
                cell(Layer::FastPath, wire, pct).and_then(|r| r.msgs_per_txn),
                cell(Layer::Classic2pc, wire, pct).and_then(|r| r.msgs_per_txn),
            );
            if let (Some(f), Some(c)) = (fast, classic) {
                points += 1;
                let margin = if pct < 100 { 2.0 } else { 0.0 };
                if f < c && c - f >= margin {
                    saved += 1;
                }
            }
        }
    }
    out.push(format!(
        "[{}] E13-2: fast-path msgs/txn < classic 2pc at every sweep point ({saved}/{points})",
        if points == 10 && saved == points {
            "PASS"
        } else {
            "FAIL"
        },
    ));

    // E13-3: a 100%-single-site mix commits with zero global rounds —
    // the solo dispatch and its reply are the only messages.
    let mut solo_ok = true;
    for wire in [Wire::InProcess, Wire::TcpLoopback] {
        match cell(Layer::FastPath, wire, 100).and_then(|r| r.msgs_per_txn) {
            Some(m) if m <= 2.0 + 1e-9 => {}
            _ => solo_ok = false,
        }
    }
    out.push(format!(
        "[{}] E13-3: 100% single-site commits at 2 msgs/txn — no global round ({} / {})",
        if solo_ok { "PASS" } else { "FAIL" },
        opt2(cell(Layer::FastPath, Wire::InProcess, 100).and_then(|r| r.msgs_per_txn)),
        opt2(cell(Layer::FastPath, Wire::TcpLoopback, 100).and_then(|r| r.msgs_per_txn)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_pins_the_fast_path_shapes() {
        let rows = run(40, 4);
        assert_eq!(rows.len(), 2 * SWEEP.len() * Layer::ALL.len());
        for v in verdicts(&rows) {
            assert!(v.starts_with("[PASS]"), "{v}");
        }
        // The exact failure-free message counts: a pure 2-site mix costs
        // the fast path 8 msgs/txn against classic 2PC's 12; a pure
        // single-site mix costs 2 against 6.
        let cell = |layer: Layer, pct: usize| {
            rows.iter()
                .find(|r| r.layer == layer && r.wire == Wire::InProcess && r.pct_single == pct)
                .and_then(|r| r.msgs_per_txn)
                .unwrap()
        };
        assert_eq!(cell(Layer::FastPath, 0), 8.0);
        assert_eq!(cell(Layer::Classic2pc, 0), 12.0);
        assert_eq!(cell(Layer::FastPath, 100), 2.0);
        assert_eq!(cell(Layer::Classic2pc, 100), 6.0);
    }
}
