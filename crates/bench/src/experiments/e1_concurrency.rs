//! **E1 — degree of concurrency** (§4.3 / claim C2, Fig. 8).
//!
//! Sweep contention (Zipf θ over a hot object set) and measure, per
//! protocol: committed-transaction throughput and the mean L0 lock tenure
//! (first submit → local lock release). The paper's claim: commit-before +
//! MLT releases L0 locks at local commit, so its tenure stays flat and its
//! throughput degrades least as contention rises; 2PC and commit-after
//! hold L0 locks to the global end and lose the multi-level advantage.

use crate::setup::{build_federation, program_batch};
use crate::table::{f2, opt2, TextTable};
use amc_mlt::ConflictPolicy;
use amc_types::ProtocolKind;
use amc_workload::{OpMix, WorkloadSpec};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Zipf skew.
    pub theta: f64,
    /// Committed txns per second (`None` when the run measured nothing).
    pub throughput: Option<f64>,
    /// Mean L0 lock tenure (ms).
    pub l0_hold_ms: Option<f64>,
    /// Mean commit latency (ms).
    pub latency_ms: Option<f64>,
    /// Median commit latency (ms).
    pub latency_p50_ms: Option<f64>,
    /// Tail (p99) commit latency (ms).
    pub latency_p99_ms: Option<f64>,
    /// Commits achieved.
    pub committed: u64,
    /// Erroneous global aborts + L1 rejections (contention casualties).
    pub contention_aborts: u64,
}

/// Experiment spec: increment-heavy (the MLT sweet spot), 3 sites, a small
/// hot set so θ bites.
fn spec(theta: f64) -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 64,
        zipf_theta: theta,
        ops_per_txn: 6,
        sites_per_txn: 2,
        mix: OpMix {
            write: 0.0,
            increment: 0.9,
            reserve: 0.0,
        },
        intended_abort_prob: 0.0,
    }
}

/// Run the sweep.
pub fn run(txns: usize, threads: usize, thetas: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &theta in thetas {
        for protocol in ProtocolKind::ALL {
            let spec = spec(theta);
            let fed = build_federation(protocol, ConflictPolicy::Semantic, &spec);
            let batch = program_batch(&spec, 7_000 + (theta * 100.0) as u64, txns);
            let m = fed.run_concurrent(batch, threads);
            rows.push(Row {
                protocol,
                theta,
                throughput: m.throughput(),
                l0_hold_ms: m.mean_l0_hold_ms(),
                latency_ms: m.mean_latency_ms(),
                latency_p50_ms: m.latency_p50_ms(),
                latency_p99_ms: m.latency_p99_ms(),
                committed: m.committed,
                contention_aborts: m.aborted_erroneous + m.l1_rejections,
            });
        }
    }
    rows
}

/// Render as the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E1 — concurrency: throughput & L0 lock tenure vs contention (increment-heavy)",
        &[
            "theta",
            "protocol",
            "txn/s",
            "l0-hold ms",
            "latency ms",
            "lat p50 ms",
            "lat p99 ms",
            "commits",
            "contention-aborts",
        ],
    );
    for r in rows {
        t.row(vec![
            f2(r.theta),
            r.protocol.label().to_string(),
            opt2(r.throughput),
            opt2(r.l0_hold_ms),
            opt2(r.latency_ms),
            opt2(r.latency_p50_ms),
            opt2(r.latency_p99_ms),
            r.committed.to_string(),
            r.contention_aborts.to_string(),
        ]);
    }
    t
}

/// The paper-shape checks for this experiment (returns human-readable
/// verdict lines).
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let hot = rows.iter().filter(|r| r.theta >= 0.9).collect::<Vec<_>>();
    let get = |p: ProtocolKind| hot.iter().find(|r| r.protocol == p);
    if let (Some(before), Some(after), Some(two_pc)) = (
        get(ProtocolKind::CommitBefore),
        get(ProtocolKind::CommitAfter),
        get(ProtocolKind::TwoPhaseCommit),
    ) {
        // An absent measurement (n=0) can never PASS a superiority claim.
        let bt = before.throughput.unwrap_or(0.0);
        let at = after.throughput.unwrap_or(0.0);
        let tt = two_pc.throughput.unwrap_or(0.0);
        let bh = before.l0_hold_ms.unwrap_or(f64::MAX);
        let ah = after.l0_hold_ms.unwrap_or(f64::MAX);
        let th = two_pc.l0_hold_ms.unwrap_or(f64::MAX);
        out.push(format!(
            "[{}] C2a: commit-before throughput >= commit-after under contention ({:.1} vs {:.1} txn/s)",
            if before.throughput.is_some() && bt >= at { "PASS" } else { "FAIL" },
            bt,
            at,
        ));
        out.push(format!(
            "[{}] C2b: commit-before throughput >= 2PC under contention ({:.1} vs {:.1} txn/s)",
            if before.throughput.is_some() && bt >= tt {
                "PASS"
            } else {
                "FAIL"
            },
            bt,
            tt,
        ));
        out.push(format!(
            "[{}] C2c: commit-before holds L0 locks shortest ({:.2} ms vs {:.2} / {:.2})",
            if before.l0_hold_ms.is_some() && bh <= ah && bh <= th {
                "PASS"
            } else {
                "FAIL"
            },
            before.l0_hold_ms.unwrap_or(0.0),
            after.l0_hold_ms.unwrap_or(0.0),
            two_pc.l0_hold_ms.unwrap_or(0.0),
        ));
    }
    out
}
