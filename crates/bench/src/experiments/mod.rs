//! One module per experiment in `EXPERIMENTS.md`.

pub mod e10_rpc;
pub mod e11_recovery;
pub mod e12_paxos;
pub mod e13_fastpath;
pub mod e14_shard;
pub mod e15_regime;
pub mod e1_concurrency;
pub mod e2_redo;
pub mod e3_abort_cost;
pub mod e4_complexity;
pub mod e5_crash;
pub mod e6_correctness;
pub mod e7_ablation;
pub mod e9_threaded;
