//! **E14 — sharded multi-coordinator scale-out with online
//! reconfiguration** (amc-shard).
//!
//! The paper's Fig. 1 funnels every global transaction through one
//! central system; E14 measures what the shard router buys back.
//! Three lanes:
//!
//! * **Scale-out (weak scaling)** — each coordinator serves a fixed
//!   client population (the central system's bounded multiprogramming
//!   level), so the offered load grows with the coordinator count.
//!   Because the coordinators share nothing on the commit path —
//!   disjoint transaction-id ranges, independent state machines, only
//!   the site fleet in common — aggregate txn/s should track the
//!   coordinator count. The pinned claim: **≥ 2.5× at 4 coordinators
//!   vs 1**.
//! * **Online reconfiguration under chaos** — a site is added and an
//!   original member retired *mid-workload*, with a nemesis kill landing
//!   inside the data-migration window. The conservation oracle: the
//!   user-counter sum and the user-object count are exactly preserved,
//!   every member site lands on the new epoch, and no transaction is
//!   left open.
//! * **Coordinator RPC over TCP** — the same sharded fleet driven
//!   through `amc-rpc`'s coordinator frames (kinds 5/6) on loopback TCP:
//!   every transaction must come back committed from its owning
//!   coordinator with a transaction id in that coordinator's disjoint
//!   id range.

use crate::table::{f2, TextTable};
use amc_core::{coord_slot_of, TxnOutcome};
use amc_rpc::{CoordClient, CoordInfo, CoordServer, RetryPolicy};
use amc_shard::{ShardRouter, SiteChange};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet size for every lane.
const SITES: u32 = 3;
/// Initial counter value of every user object.
const PER_OBJ: i64 = 100;
/// Client threads per coordinator in the scaling lane: the fixed
/// multiprogramming level of one central system.
const CLIENTS_PER_COORD: usize = 2;
/// Modelled one-way message latency in the scaling lane. The commit
/// path is message-bound (as in the paper's LCA model), so this is the
/// resource the coordinators spend in parallel.
const SCALE_DELAY: Duration = Duration::from_micros(300);

/// A per-site operation program, as `ShardRouter::run` takes it.
type Program = BTreeMap<SiteId, Vec<Operation>>;

fn obj(site: u32, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + idx)
}

/// A sum-neutral 2-site transfer on nominal sites, disjoint per `idx`.
fn transfer(from: u32, to: u32, idx: u64) -> Program {
    BTreeMap::from([
        (
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, idx),
                delta: -1,
            }],
        ),
        (
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, idx),
                delta: 1,
            }],
        ),
    ])
}

/// One weak-scaling point.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Coordinator count.
    pub coordinators: u32,
    /// Total client threads (coordinators × fixed population).
    pub clients: usize,
    /// Transactions offered (and expected to commit).
    pub offered: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Aggregate committed transactions per second.
    pub txn_per_s: f64,
    /// Throughput relative to the 1-coordinator row.
    pub speedup: f64,
}

/// Weak scaling over `n_values` coordinator counts: every coordinator
/// gets its own `txns_per_coord` transactions (owner-affine by the shard
/// map's hash rule) and its own fixed client population.
pub fn run_scaling(txns_per_coord: usize, n_values: &[u32]) -> Vec<ScaleRow> {
    let mut rows: Vec<ScaleRow> = Vec::new();
    for &n in n_values {
        let router = Arc::new(
            ShardRouter::in_process(n, SITES, ProtocolKind::TwoPhaseCommit, SCALE_DELAY)
                .expect("build router"),
        );
        // Draw disjoint transfers until every coordinator slot has its
        // quota; ownership is the map's hash of the minimum key, so the
        // draw is rejection sampling with a generous id budget.
        let budget = (txns_per_coord * n as usize * 8) as u64;
        let mut queues: Vec<VecDeque<Program>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut drawn = 0u64;
        for idx in 0..budget {
            let p = transfer((idx % 3) as u32 + 1, ((idx + 1) % 3) as u32 + 1, idx);
            let owner = router.owner_of(&p) as usize;
            if queues[owner].len() < txns_per_coord {
                queues[owner].push_back(p);
                drawn += 1;
                if drawn == (txns_per_coord * n as usize) as u64 {
                    break;
                }
            }
        }
        assert_eq!(
            drawn,
            (txns_per_coord * n as usize) as u64,
            "id budget too small to fill every coordinator's quota"
        );
        for s in 1..=SITES {
            let data: Vec<(ObjectId, Value)> = (0..budget)
                .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
                .collect();
            router.load_site(SiteId::new(s), &data).expect("load");
        }

        let committed = AtomicU64::new(0);
        let queues: Vec<Mutex<VecDeque<Program>>> = queues.into_iter().map(Mutex::new).collect();
        let started = Instant::now();
        std::thread::scope(|s| {
            for q in &queues {
                for _ in 0..CLIENTS_PER_COORD {
                    s.spawn(|| loop {
                        let Some(p) = q.lock().pop_front() else {
                            return;
                        };
                        if let Ok(r) = router.run(&p) {
                            if r.outcome == TxnOutcome::Committed {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            }
        });
        let elapsed = started.elapsed();
        let committed = committed.into_inner();
        let txn_per_s = committed as f64 / elapsed.as_secs_f64();
        let base = rows.first().map_or(txn_per_s, |r: &ScaleRow| r.txn_per_s);
        rows.push(ScaleRow {
            coordinators: n,
            clients: n as usize * CLIENTS_PER_COORD,
            offered: (txns_per_coord * n as usize) as u64,
            committed,
            txn_per_s,
            speedup: txn_per_s / base,
        });
    }
    rows
}

/// Outcome of the reconfiguration-under-chaos lane.
#[derive(Debug, Clone)]
pub struct ReconfigRow {
    /// Workload transactions committed across the whole scenario.
    pub committed: u64,
    /// Workload transactions aborted (lock conflicts; sum-neutral).
    pub aborted: u64,
    /// Workload attempts that errored (must be 0 — the drain gate keeps
    /// clients away from the chaos window).
    pub errors: u64,
    /// User objects migrated off the retired site.
    pub migrated: usize,
    /// Retries the migration/epoch path needed around the nemesis kill.
    pub retries: usize,
    /// Epoch after add + remove (starts at 1, so 3).
    pub epoch: u64,
    /// Final minus initial user-counter sum (must be 0).
    pub sum_delta: i64,
    /// Final minus initial user-object count (must be 0).
    pub count_delta: i64,
    /// Final-state obligations left open (must be 0).
    pub open_txns: usize,
    /// Whether every surviving member site reports the final epoch.
    pub epochs_agree: bool,
    /// Whether the retired site is gone from the fleet.
    pub old_site_gone: bool,
}

/// Add site 4, then retire site 1 onto it mid-workload, with the
/// successor knocked down by the nemesis just as the migration starts.
pub fn run_reconfig(min_txns: u64) -> ReconfigRow {
    let router = Arc::new(
        ShardRouter::in_process(
            2,
            SITES,
            ProtocolKind::TwoPhaseCommit,
            Duration::from_micros(50),
        )
        .expect("build router"),
    );
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..16)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        router.load_site(SiteId::new(s), &data).expect("load");
    }
    let sum0 = router.user_sum().expect("sum");
    let count0 = router.user_object_count().expect("count") as i64;

    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let next = AtomicU64::new(0);
    let (add_report, remove_report) = std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let p = transfer((i % 3) as u32 + 1, ((i + 1) % 3) as u32 + 1, i % 16);
                    match router.run(&p) {
                        Ok(r) if r.outcome == TxnOutcome::Committed => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Let the workload flow on the original topology first.
        while committed.load(Ordering::Relaxed) < min_txns / 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let add = router
            .reconfigure(SiteChange::Add {
                site: SiteId::new(4),
            })
            .expect("add site");

        while committed.load(Ordering::Relaxed) < min_txns / 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Nemesis: the successor goes dark before the retirement starts,
        // so the migration's first rounds fail and must retry; a revival
        // thread brings it back inside the reconfiguration deadline.
        router.fleet().set_down(SiteId::new(4), true);
        let reviver = s.spawn(|| {
            std::thread::sleep(Duration::from_millis(15));
            router.fleet().set_down(SiteId::new(4), false);
        });
        let remove = router
            .reconfigure(SiteChange::Remove {
                old: SiteId::new(1),
                successor: SiteId::new(4),
            })
            .expect("remove site");
        reviver.join().expect("reviver");

        // Workload continues on the new topology (nominal site 1 now
        // rehomes to site 4) before the scenario winds down.
        while committed.load(Ordering::Relaxed) < min_txns {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        (add, remove)
    });

    let epochs_agree = [2u32, 3, 4]
        .iter()
        .all(|&s| router.site_epoch(SiteId::new(s)).ok() == Some(remove_report.epoch as i64));
    ReconfigRow {
        committed: committed.into_inner(),
        aborted: aborted.into_inner(),
        errors: errors.into_inner(),
        migrated: remove_report.migrated,
        retries: add_report.retries + remove_report.retries,
        epoch: remove_report.epoch,
        sum_delta: router.user_sum().expect("sum") - sum0,
        count_delta: router.user_object_count().expect("count") as i64 - count0,
        open_txns: router.pending_obligations(),
        epochs_agree,
        old_site_gone: !router.fleet().is_member(SiteId::new(1)),
    }
}

/// Outcome of the coordinator-RPC-over-TCP lane.
#[derive(Debug, Clone)]
pub struct TcpRow {
    /// Coordinator count (each behind its own TCP listener).
    pub coordinators: u32,
    /// Client threads.
    pub clients: usize,
    /// Transactions offered.
    pub offered: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Aggregate committed transactions per second.
    pub txn_per_s: f64,
    /// Transactions whose id came back in the owning coordinator's
    /// disjoint id range (must equal `offered`).
    pub slot_matched: u64,
    /// Coordinator slots that committed at least one transaction.
    pub busy_coordinators: usize,
}

/// Drive a 2-coordinator sharded fleet through coordinator frames on
/// loopback TCP.
pub fn run_tcp(txns: usize, clients: usize) -> TcpRow {
    const COORDS: u32 = 2;
    let router = Arc::new(
        ShardRouter::in_process(COORDS, SITES, ProtocolKind::TwoPhaseCommit, Duration::ZERO)
            .expect("build router"),
    );
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..txns as u64)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        router.load_site(SiteId::new(s), &data).expect("load");
    }
    let sites = router.map().sites();
    let mut servers = Vec::new();
    let mut tcp_clients = Vec::new();
    for k in 0..COORDS {
        let srv = CoordServer::spawn(
            Arc::clone(router.coordinator(k)),
            CoordInfo {
                slot: k,
                coordinators: COORDS,
                epoch: router.epoch(),
                sites: sites.clone(),
            },
            "127.0.0.1:0",
        )
        .expect("spawn coordinator server");
        tcp_clients.push(Arc::new(CoordClient::new(
            srv.addr(),
            RetryPolicy::default(),
        )));
        servers.push(srv);
    }

    // Pre-route: each program is paired with its owning coordinator so
    // worker threads just pop and dispatch.
    let queue: Mutex<VecDeque<(u32, Program)>> = Mutex::new(
        (0..txns as u64)
            .map(|i| {
                let p = transfer((i % 3) as u32 + 1, ((i + 1) % 3) as u32 + 1, i);
                (router.owner_of(&p), p)
            })
            .collect(),
    );
    let committed = AtomicU64::new(0);
    let slot_matched = AtomicU64::new(0);
    let per_coord: Vec<AtomicU64> = (0..COORDS).map(|_| AtomicU64::new(0)).collect();
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients.max(1) {
            s.spawn(|| loop {
                let Some((owner, p)) = queue.lock().pop_front() else {
                    return;
                };
                let Ok(report) = tcp_clients[owner as usize].exec(p) else {
                    continue;
                };
                if report.outcome == TxnOutcome::Committed {
                    committed.fetch_add(1, Ordering::Relaxed);
                    per_coord[owner as usize].fetch_add(1, Ordering::Relaxed);
                }
                if coord_slot_of(report.gtx) == owner {
                    slot_matched.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed();
    for srv in servers {
        srv.shutdown();
    }
    let committed = committed.into_inner();
    TcpRow {
        coordinators: COORDS,
        clients,
        offered: txns as u64,
        committed,
        txn_per_s: committed as f64 / elapsed.as_secs_f64(),
        slot_matched: slot_matched.into_inner(),
        busy_coordinators: per_coord
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count(),
    }
}

/// Render the weak-scaling lane.
pub fn scaling_table(rows: &[ScaleRow]) -> TextTable {
    let mut t = TextTable::new(
        "E14a — coordinator scale-out, weak scaling (2PC, 3 shared sites, \
         2 clients/coordinator, 300µs legs)",
        &[
            "coordinators",
            "clients",
            "offered",
            "committed",
            "txn/s",
            "speedup",
        ],
    );
    for r in rows {
        t.row(vec![
            r.coordinators.to_string(),
            r.clients.to_string(),
            r.offered.to_string(),
            r.committed.to_string(),
            format!("{:.1}", r.txn_per_s),
            f2(r.speedup),
        ]);
    }
    t
}

/// Render the reconfiguration-under-chaos lane.
pub fn reconfig_table(r: &ReconfigRow) -> TextTable {
    let mut t = TextTable::new(
        "E14b — online reconfiguration under chaos (add site 4, retire site 1, \
         nemesis kills the successor during migration)",
        &[
            "committed",
            "aborted",
            "errors",
            "migrated",
            "retries",
            "epoch",
            "sum Δ",
            "objects Δ",
            "open txns",
        ],
    );
    t.row(vec![
        r.committed.to_string(),
        r.aborted.to_string(),
        r.errors.to_string(),
        r.migrated.to_string(),
        r.retries.to_string(),
        r.epoch.to_string(),
        r.sum_delta.to_string(),
        r.count_delta.to_string(),
        r.open_txns.to_string(),
    ]);
    t
}

/// Render the TCP lane.
pub fn tcp_table(r: &TcpRow) -> TextTable {
    let mut t = TextTable::new(
        "E14c — coordinator RPC over loopback TCP (frames 5/6, pre-routed clients)",
        &[
            "coordinators",
            "clients",
            "offered",
            "committed",
            "txn/s",
            "slot-matched",
            "busy coords",
        ],
    );
    t.row(vec![
        r.coordinators.to_string(),
        r.clients.to_string(),
        r.offered.to_string(),
        r.committed.to_string(),
        format!("{:.1}", r.txn_per_s),
        r.slot_matched.to_string(),
        r.busy_coordinators.to_string(),
    ]);
    t
}

/// The shape checks for this experiment.
pub fn verdicts(scale: &[ScaleRow], reconfig: &ReconfigRow, tcp: &TcpRow) -> Vec<String> {
    let mut out = Vec::new();

    // E14-1: every scaling cell commits its full offered load (the
    // transfers are disjoint, so nothing should abort).
    let all_commit = scale.iter().all(|r| r.committed == r.offered);
    out.push(format!(
        "[{}] E14-1: every scaling cell commits its full offered load ({} cells)",
        if all_commit { "PASS" } else { "FAIL" },
        scale.len(),
    ));

    // E14-2: the pinned scale-out claim — aggregate txn/s at 4
    // coordinators is at least 2.5× the single-coordinator figure.
    let at = |n: u32| scale.iter().find(|r| r.coordinators == n);
    let (one, four) = (at(1), at(4));
    let speedup = match (one, four) {
        (Some(a), Some(b)) if a.txn_per_s > 0.0 => b.txn_per_s / a.txn_per_s,
        _ => 0.0,
    };
    out.push(format!(
        "[{}] E14-2: aggregate txn/s at 4 coordinators >= 2.5x one coordinator ({:.2}x)",
        if speedup >= 2.5 { "PASS" } else { "FAIL" },
        speedup,
    ));

    // E14-3: reconfiguration conserves everything — sum, object count,
    // agreed epochs, no open transactions, the retired site gone, and
    // the workload never saw an error through the chaos window.
    let conserved = reconfig.sum_delta == 0
        && reconfig.count_delta == 0
        && reconfig.open_txns == 0
        && reconfig.epoch == 3
        && reconfig.epochs_agree
        && reconfig.old_site_gone
        && reconfig.errors == 0;
    out.push(format!(
        "[{}] E14-3: mid-workload add+retire with nemesis kill conserves state \
         (sum Δ={}, objects Δ={}, open={}, epoch={}, errors={})",
        if conserved { "PASS" } else { "FAIL" },
        reconfig.sum_delta,
        reconfig.count_delta,
        reconfig.open_txns,
        reconfig.epoch,
        reconfig.errors,
    ));

    // E14-4: the TCP lane commits everything, every reply's transaction
    // id sits in its owning coordinator's disjoint range, and more than
    // one coordinator did work.
    let tcp_ok = tcp.committed == tcp.offered
        && tcp.slot_matched == tcp.offered
        && tcp.busy_coordinators > 1;
    out.push(format!(
        "[{}] E14-4: TCP lane commits {}/{} with {}/{} ids slot-matched across {} coordinators",
        if tcp_ok { "PASS" } else { "FAIL" },
        tcp.committed,
        tcp.offered,
        tcp.slot_matched,
        tcp.offered,
        tcp.busy_coordinators,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lanes_pin_the_shard_shapes() {
        let scale = run_scaling(12, &[1, 2, 4]);
        let reconfig = run_reconfig(40);
        let tcp = run_tcp(60, 4);
        for v in verdicts(&scale, &reconfig, &tcp) {
            assert!(v.starts_with("[PASS]"), "{v}");
        }
        assert_eq!(reconfig.migrated, 16, "site 1 held 16 user objects");
        assert!(reconfig.retries > 0, "the nemesis kill must force retries");
    }
}
