//! **E6 — correctness sweep** (§2/§3's global ACID requirement).
//!
//! Randomised workloads × protocols × seeds, executed concurrently on the
//! threaded federation, then audited by the full oracle stack:
//!
//! 1. conflict-graph **serializability** of the committed transactions
//!    (semantic conflict definition, §4.1);
//! 2. **atomicity** of every decided transaction (marker audit);
//! 3. **final-state equivalence** against a serial replay of the committed
//!    transactions in the serialization order the conflict graph yields.
//!
//! The reproduced number is boring by design: **zero violations**.

use crate::setup::build_recording_federation;
use crate::table::TextTable;
use amc_core::{Federation, TxnOutcome};
use amc_mlt::ConflictPolicy;
use amc_types::{GlobalTxnId, GlobalVerdict, ObjectId, Operation, ProtocolKind, SiteId, Value};
use amc_verify::history::ConflictDefinition;
use amc_workload::{OpMix, WorkloadGen, WorkloadSpec};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One audited run.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Workload seed.
    pub seed: u64,
    /// Commits.
    pub committed: u64,
    /// Aborts (intended + erroneous).
    pub aborted: u64,
    /// Serializability violations (conflict cycles found).
    pub serializability_violations: u64,
    /// Atomicity violations (marker audit).
    pub atomicity_violations: u64,
    /// Final-state divergences from the serial replay.
    pub state_divergences: u64,
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 48, // small & hot: stress the interesting paths
        zipf_theta: 0.7,
        ops_per_txn: 5,
        sites_per_txn: 2,
        mix: OpMix {
            write: 0.2,
            increment: 0.5,
            reserve: 0.0,
        },
        intended_abort_prob: 0.1,
    }
}

/// Run one audited execution.
pub fn run_one(protocol: ProtocolKind, seed: u64, txns: usize, threads: usize) -> Row {
    let spec = spec();
    let fed = build_recording_federation(protocol, ConflictPolicy::Semantic, &spec);
    let mut gen = WorkloadGen::new(spec.clone(), seed);
    let programs: Vec<_> = gen.programs(txns);

    // Concurrent execution that keeps the gtx -> program mapping.
    let work: Mutex<Vec<_>> = Mutex::new(programs.into_iter().collect());
    let executed: Mutex<Vec<(GlobalTxnId, Vec<Operation>, TxnOutcome)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let fed: &Arc<Federation> = &fed;
            let work = &work;
            let executed = &executed;
            scope.spawn(move || loop {
                let Some(program) = work.lock().pop() else {
                    return;
                };
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    let report = fed.run_transaction(&program.per_site).expect("run");
                    match report.outcome {
                        TxnOutcome::L1Rejected(_) if attempts < 10 => continue,
                        // An erroneous global abort (the program did not
                        // intend one): the aborted attempt left no net
                        // effect, so retry it like any erroneous abort.
                        TxnOutcome::Aborted if !program.intends_abort && attempts < 10 => {
                            executed.lock().push((
                                report.gtx,
                                program.merged_ops(),
                                TxnOutcome::Aborted,
                            ));
                            continue;
                        }
                        outcome => {
                            executed
                                .lock()
                                .push((report.gtx, program.merged_ops(), outcome));
                            break; // next program
                        }
                    }
                }
            });
        }
    });

    let history = fed.history();
    let executed = executed.into_inner();
    let committed = executed
        .iter()
        .filter(|(_, _, o)| *o == TxnOutcome::Committed)
        .count() as u64;
    // Aborted attempts that were retried (erroneous) still appear in
    // `executed` for the oracle's atomicity audit; the reported abort count
    // is programs whose *final* outcome was an abort.
    let aborted = txns as u64 - committed;

    // 1. Serializability.
    let serialization = history.check_serializable(ConflictDefinition::Commutativity);
    let serializability_violations = u64::from(serialization.is_err());

    // 2. Atomicity (marker audit) — 2PC leaves no markers, skip there.
    let atomicity_violations = if protocol == ProtocolKind::TwoPhaseCommit {
        0
    } else {
        let dumps = fed.dumps().expect("dumps");
        let mut verdicts: BTreeMap<GlobalTxnId, GlobalVerdict> = BTreeMap::new();
        let mut participants: BTreeMap<GlobalTxnId, Vec<SiteId>> = BTreeMap::new();
        for (gtx, ops, outcome) in &executed {
            let verdict = match outcome {
                TxnOutcome::Committed => GlobalVerdict::Commit,
                TxnOutcome::Aborted => GlobalVerdict::Abort,
                TxnOutcome::L1Rejected(_) => continue,
            };
            verdicts.insert(*gtx, verdict);
            // Markers are written only where the transaction *updated*
            // something: read-only participants use the read-only
            // optimization and leave no trace by design.
            let sites: Vec<SiteId> = ops
                .iter()
                .filter(|op| op.is_update())
                .map(|op| amc_workload::site_of_object(op.object()))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            participants.insert(*gtx, sites);
        }
        amc_verify::check_atomicity(&dumps, &verdicts, &participants).len() as u64
    };

    // 3. Final-state equivalence.
    let state_divergences = match serialization {
        Ok(order) => {
            let initial: BTreeMap<ObjectId, Value> = spec.initial_state();
            let programs_by_gtx: BTreeMap<GlobalTxnId, Vec<Operation>> = executed
                .iter()
                .filter(|(_, _, o)| *o == TxnOutcome::Committed)
                .map(|(g, ops, _)| (*g, ops.clone()))
                .collect();
            let merged: BTreeMap<ObjectId, Value> = fed
                .dumps()
                .expect("dumps")
                .into_values()
                .flat_map(|d| d.into_iter())
                .collect();
            amc_verify::check_state_equivalence(&initial, &order, &programs_by_gtx, &merged).len()
                as u64
        }
        Err(_) => u64::MAX, // no order to replay
    };

    Row {
        protocol,
        seed,
        committed,
        aborted,
        serializability_violations,
        atomicity_violations,
        state_divergences,
    }
}

/// Run the sweep over protocols × seeds.
pub fn run(seeds: &[u64], txns: usize, threads: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &seed in seeds {
            rows.push(run_one(protocol, seed, txns, threads));
        }
    }
    rows
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E6 — correctness sweep: oracle audit of concurrent executions",
        &[
            "protocol",
            "seed",
            "commits",
            "aborts",
            "serializability-violations",
            "atomicity-violations",
            "state-divergences",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.seed.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.serializability_violations.to_string(),
            r.atomicity_violations.to_string(),
            r.state_divergences.to_string(),
        ]);
    }
    t
}

/// Shape check: zeros everywhere.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let clean = rows.iter().all(|r| {
        r.serializability_violations == 0 && r.atomicity_violations == 0 && r.state_divergences == 0
    });
    vec![format!(
        "[{}] E6: zero violations across {} audited runs",
        if clean { "PASS" } else { "FAIL" },
        rows.len(),
    )]
}
