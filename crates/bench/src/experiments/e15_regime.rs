//! **E15 — the protocol regime map**: the full protocol matrix against the
//! contention-aware workload engine (`amc_workload::mixes`).
//!
//! Four lanes, each sweeping one axis of workload shape while holding the
//! others fixed, all five regimes per cell:
//!
//! * **contention** — the hot-key commuting-counter mix over a small hot
//!   set, Zipf theta 0 → 1.2 (claims C2/C4: where does commit-before pull
//!   ahead, and what does semantic L1 locking buy over read/write?);
//! * **fan-out** — the TPC-C-style `NewOrder` profile at 1–3 participating
//!   sites (message complexity vs. lock tenure as transactions widen);
//! * **aborts** — the generic Zipf mix with an *intended*-abort dial
//!   (claim C3: commit-after's edge is transactions that abort through
//!   their own logic);
//! * **wire** — the `NewOrder` profile with its escrow [`Reserve`]s run
//!   over both the in-process dispatch and loopback TCP: the same seeded
//!   program stream on both, so the regime map's advice transfers from
//!   the DES numbers to the networked runtime.
//!
//! Every cell also replays the engine's correctness oracles where they
//! apply: the hot-key lane checks federation-wide counter conservation,
//! the wire lane checks the escrow bound (no stock counter below zero)
//! and pins that both wires consumed bit-identical program streams.
//!
//! The measured tables land in `bench_report.txt`; OPERATORS.md turns the
//! per-cell winners into the operator's regime map.
//!
//! [`Reserve`]: amc_types::Operation::Reserve

use crate::setup::{mix_batch, tuned_config};
use crate::table::{opt2, opt3, TextTable};
use amc_core::{submit_mode_for, Federation, FederationConfig};
use amc_engine::{TplConfig, TwoPLEngine};
use amc_mlt::ConflictPolicy;
use amc_net::comm::EngineHandle;
use amc_net::marker::is_marker;
use amc_net::transport::{FederationTransport, InProcessTransport};
use amc_net::LocalCommManager;
use amc_obs::ObsSink;
use amc_rpc::{RetryPolicy, SiteServer, TcpTransport};
use amc_types::{ProtocolKind, SiteId};
use amc_workload::{fingerprint, MixGen, MixKind, MixSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

pub use super::e10_rpc::Wire;

const SITES: u32 = 3;

/// One column of the regime map: a commit protocol plus its L1 conflict
/// policy. `CommitBeforeRw` is the MLT-off ablation — same undo protocol,
/// read/write locks instead of semantic modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Classic 2PC — explicit work, prepare and decision rounds.
    Classic2pc,
    /// 2PC with the fast path: vote piggyback + single-site bypass.
    FastPath,
    /// Commit-after (redo recovery), §3.2.
    CommitAfter,
    /// Commit-before (undo recovery) with semantic L1 locks, §3.3 + §4.
    CommitBefore,
    /// Commit-before with read/write L1 locks — MLT commutativity off.
    CommitBeforeRw,
}

impl Regime {
    /// Every regime, in table order.
    pub const ALL: [Regime; 5] = [
        Regime::Classic2pc,
        Regime::FastPath,
        Regime::CommitAfter,
        Regime::CommitBefore,
        Regime::CommitBeforeRw,
    ];

    /// Short label for the tables and OPERATORS.md.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Classic2pc => "2pc",
            Regime::FastPath => "2pc+fast-path",
            Regime::CommitAfter => "commit-after",
            Regime::CommitBefore => "commit-before",
            Regime::CommitBeforeRw => "commit-before/rw",
        }
    }

    fn protocol(self) -> ProtocolKind {
        match self {
            Regime::Classic2pc | Regime::FastPath => ProtocolKind::TwoPhaseCommit,
            Regime::CommitAfter => ProtocolKind::CommitAfter,
            Regime::CommitBefore | Regime::CommitBeforeRw => ProtocolKind::CommitBefore,
        }
    }

    fn policy(self) -> ConflictPolicy {
        match self {
            Regime::CommitBeforeRw => ConflictPolicy::ReadWriteOnly,
            _ => ConflictPolicy::Semantic,
        }
    }

    fn config(self, sites: u32) -> FederationConfig {
        let cfg = tuned_config(sites, self.protocol(), self.policy());
        if self == Regime::FastPath {
            cfg.with_fast_path()
        } else {
            cfg
        }
    }
}

/// One measured cell of any lane. `axis` is the lane's sweep coordinate
/// (theta, fan-out, abort rate, or wire), formatted by the lane.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sweep coordinate, pre-formatted (`"θ=0.9"`, `"fanout=2"`, ...).
    pub axis: String,
    /// Regime under test.
    pub regime: Regime,
    /// Commits achieved.
    pub committed: u64,
    /// Committed txns per second.
    pub txn_s: Option<f64>,
    /// Commits plus aborts per second (the C3 denominator).
    pub done_s: Option<f64>,
    /// Median commit latency, ms.
    pub p50_ms: Option<f64>,
    /// Tail commit latency, ms.
    pub p99_ms: Option<f64>,
    /// Total abort fraction.
    pub abort_rate: Option<f64>,
    /// Intended (transaction-logic) abort fraction.
    pub intended_rate: Option<f64>,
    /// Messages per committed transaction.
    pub msgs_per_txn: Option<f64>,
    /// Lane-specific oracle (conservation / escrow bound); `true` where
    /// the oracle does not apply.
    pub oracle_ok: bool,
}

/// Run one DES-transport cell: build a tuned federation for the regime,
/// load the mix's initial counters, run the seeded batch, then replay the
/// lane oracle over the final dump.
fn run_cell(
    regime: Regime,
    kind: MixKind,
    spec: &MixSpec,
    seed: u64,
    axis: String,
    txns: usize,
    clients: usize,
) -> Row {
    let mut fed = Federation::new(regime.config(spec.sites));
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }
    let m = fed.run_concurrent(mix_batch(kind, spec, seed, txns), clients);
    // Commit-after may still owe redo executions; settle them so the
    // conservation oracle sees the final state.
    let _ = fed.resolve_pending();
    let oracle_ok = if kind.conserves_sum() && spec.intended_abort_prob == 0.0 {
        counter_sum(&fed) == spec.initial_sum()
    } else {
        true
    };
    Row {
        axis,
        regime,
        committed: m.committed,
        txn_s: m.throughput(),
        done_s: m.completions_per_sec(),
        p50_ms: m.latency_p50_ms(),
        p99_ms: m.latency_p99_ms(),
        abort_rate: m.abort_rate(),
        intended_rate: m.intended_abort_rate(),
        msgs_per_txn: m.messages_per_commit(),
        oracle_ok,
    }
}

/// Federation-wide user-object counter sum (markers excluded).
fn counter_sum(fed: &Federation) -> i64 {
    fed.dumps()
        .expect("dumps")
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .sum()
}

/// Smallest user-object counter in the federation (the escrow bound: a
/// correct [`amc_types::Operation::Reserve`] path never drives a stock
/// counter negative).
fn min_counter(fed: &Federation) -> i64 {
    fed.dumps()
        .expect("dumps")
        .values()
        .flat_map(|d| d.iter())
        .filter(|(o, _)| !is_marker(**o))
        .map(|(_, v)| v.counter)
        .min()
        .unwrap_or(0)
}

/// The contention sweep points.
pub const THETAS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];

/// Lane 1 — contention: hot-key commuting counters over a small hot set
/// (48 objects/site), theta 0 → 1.2.
pub fn run_contention(txns: usize, clients: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for theta in THETAS {
        let spec = MixSpec {
            sites: SITES,
            objects_per_site: 48,
            theta,
            intended_abort_prob: 0.0,
            max_fanout: 3,
        };
        for regime in Regime::ALL {
            rows.push(run_cell(
                regime,
                MixKind::HotKey,
                &spec,
                0xE15A,
                format!("theta={theta}"),
                txns,
                clients,
            ));
        }
    }
    rows
}

/// The fan-out sweep points (participating sites per `NewOrder`).
pub const FANOUTS: [u32; 3] = [1, 2, 3];

/// Lane 2 — fan-out: the TPC-C-style `NewOrder` profile capped at 1, 2,
/// then 3 participating sites.
pub fn run_fanout(txns: usize, clients: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for fanout in FANOUTS {
        let spec = MixSpec {
            sites: SITES,
            objects_per_site: 256,
            theta: 0.6,
            intended_abort_prob: 0.0,
            max_fanout: fanout,
        };
        for regime in Regime::ALL {
            rows.push(run_cell(
                regime,
                MixKind::TpccLite,
                &spec,
                0xE15B,
                format!("fanout<={fanout}"),
                txns,
                clients,
            ));
        }
    }
    rows
}

/// The intended-abort sweep points.
pub const ABORT_RATES: [f64; 3] = [0.0, 0.2, 0.4];

/// Lane 3 — intended aborts: the generic Zipf mix with the
/// transaction-logic abort dial at 0%, 20%, 40%.
pub fn run_aborts(txns: usize, clients: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for rate in ABORT_RATES {
        let spec = MixSpec {
            sites: SITES,
            objects_per_site: 256,
            theta: 0.6,
            intended_abort_prob: rate,
            max_fanout: 2,
        };
        for regime in Regime::ALL {
            rows.push(run_cell(
                regime,
                MixKind::Zipf,
                &spec,
                0xE15C,
                format!("abort={rate}"),
                txns,
                clients,
            ));
        }
    }
    rows
}

/// One wire-lane cell: `NewOrder` escrow reserves over a real transport.
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Measurements (axis = wire label).
    pub row: Row,
    /// Wire under test.
    pub wire: Wire,
    /// Smallest stock counter after the run (escrow bound: must be >= 0).
    pub min_counter: i64,
    /// Fingerprint of the program stream this cell consumed.
    pub stream_fp: u64,
}

/// Lane 4 — the wire lane: the `NewOrder` profile (theta 0.9) with its
/// escrow reserves over in-process dispatch and loopback TCP. Engines run
/// without modelled delays (as in E10/E13): the wire itself is the cost
/// under test, and the seeded stream is pinned identical on both.
pub fn run_wire(txns: usize, clients: usize) -> Vec<WireRow> {
    let spec = MixSpec {
        sites: SITES,
        objects_per_site: 128,
        theta: 0.9,
        intended_abort_prob: 0.0,
        max_fanout: 3,
    };
    let mut rows = Vec::new();
    for wire in [Wire::InProcess, Wire::TcpLoopback] {
        for regime in Regime::ALL {
            rows.push(run_wire_cell(regime, wire, &spec, txns, clients));
        }
    }
    rows
}

fn run_wire_cell(
    regime: Regime,
    wire: Wire,
    spec: &MixSpec,
    txns: usize,
    clients: usize,
) -> WireRow {
    let protocol = regime.protocol();
    let mode = submit_mode_for(protocol);
    let managers: BTreeMap<SiteId, Arc<LocalCommManager>> = (1..=spec.sites)
        .map(|s| {
            let site = SiteId::new(s);
            let cfg = TplConfig {
                lock_timeout: Duration::from_millis(100),
                deadlock_check: Duration::from_millis(1),
                ..TplConfig::default()
            };
            let engine = Arc::new(TwoPLEngine::new(cfg));
            (
                site,
                Arc::new(LocalCommManager::new(
                    site,
                    EngineHandle::Preparable(engine),
                )),
            )
        })
        .collect();

    let mut servers: Vec<SiteServer> = Vec::new();
    let transport: Arc<dyn FederationTransport> = match wire {
        Wire::InProcess => Arc::new(InProcessTransport::new(
            managers.clone(),
            mode,
            Duration::ZERO,
        )),
        Wire::TcpLoopback => {
            let mut addrs = BTreeMap::new();
            for (&site, manager) in &managers {
                let srv = SiteServer::spawn(
                    site,
                    Arc::clone(manager),
                    mode,
                    "127.0.0.1:0",
                    ObsSink::disabled(),
                )
                .expect("bind loopback");
                addrs.insert(site, srv.addr());
                servers.push(srv);
            }
            Arc::new(TcpTransport::new(
                addrs,
                RetryPolicy::default(),
                ObsSink::disabled(),
            ))
        }
    };

    let mut cfg = FederationConfig::uniform(spec.sites, protocol);
    if regime == Regime::FastPath {
        cfg = cfg.with_fast_path();
    }
    cfg.policy = regime.policy();
    cfg.l1_timeout = Duration::from_millis(500);
    let mut fed = Federation::with_transport(cfg, transport);
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }

    // The determinism contract in action: both wires replay the same
    // seeded stream, and the fingerprint pins it.
    let programs = MixGen::new(MixKind::TpccLite, spec.clone(), 0xE15D).programs(txns);
    let stream_fp = fingerprint(&programs);
    let batch = programs
        .into_iter()
        .map(|p| (p.per_site, p.intends_abort))
        .collect();
    let m = fed.run_concurrent(batch, clients);
    let _ = fed.resolve_pending();
    let floor = min_counter(&fed);
    drop(fed);
    for srv in servers {
        srv.shutdown();
    }
    WireRow {
        row: Row {
            axis: wire.label().to_string(),
            regime,
            committed: m.committed,
            txn_s: m.throughput(),
            done_s: m.completions_per_sec(),
            p50_ms: m.latency_p50_ms(),
            p99_ms: m.latency_p99_ms(),
            abort_rate: m.abort_rate(),
            intended_rate: m.intended_abort_rate(),
            msgs_per_txn: m.messages_per_commit(),
            oracle_ok: floor >= 0,
        },
        wire,
        min_counter: floor,
        stream_fp,
    }
}

/// Render one lane's table.
pub fn table(title: &str, axis_header: &str, rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        title,
        &[
            axis_header,
            "regime",
            "commits",
            "txn/s",
            "done/s",
            "p50 ms",
            "p99 ms",
            "abort",
            "intended",
            "msg/txn",
        ],
    );
    for r in rows {
        t.row(vec![
            r.axis.clone(),
            r.regime.label().to_string(),
            r.committed.to_string(),
            opt2(r.txn_s),
            opt2(r.done_s),
            opt2(r.p50_ms),
            opt2(r.p99_ms),
            opt3(r.abort_rate),
            opt3(r.intended_rate),
            opt2(r.msgs_per_txn),
        ]);
    }
    t
}

/// The per-cell winners — one line per sweep point naming the regime with
/// the highest committed throughput (ties broken toward the earlier
/// [`Regime::ALL`] entry). These lines are what OPERATORS.md's regime map
/// is built from; `done/s` is reported alongside because the C3 lane's
/// interesting quantity is completions, not just commits.
pub fn winners(lane: &str, rows: &[Row]) -> Vec<String> {
    let mut axes: Vec<&str> = Vec::new();
    for r in rows {
        if !axes.contains(&r.axis.as_str()) {
            axes.push(&r.axis);
        }
    }
    axes.iter()
        .map(|axis| {
            let best = rows
                .iter()
                .filter(|r| r.axis == *axis)
                .max_by(|a, b| {
                    a.txn_s
                        .unwrap_or(0.0)
                        .partial_cmp(&b.txn_s.unwrap_or(0.0))
                        .expect("throughputs are finite")
                })
                .expect("every axis has rows");
            format!(
                "winner[{lane}, {axis}]: {} ({} txn/s, {} done/s)",
                best.regime.label(),
                opt2(best.txn_s),
                opt2(best.done_s),
            )
        })
        .collect()
}

/// The shape checks for this experiment.
pub fn verdicts(
    contention: &[Row],
    fanout: &[Row],
    aborts: &[Row],
    wire: &[WireRow],
) -> Vec<String> {
    let mut out = Vec::new();
    let all: Vec<&Row> = contention
        .iter()
        .chain(fanout.iter())
        .chain(aborts.iter())
        .chain(wire.iter().map(|w| &w.row))
        .collect();

    // E15-1: every (lane, axis, regime) cell commits transactions.
    let committing = all.iter().filter(|r| r.committed > 0).count();
    out.push(format!(
        "[{}] E15-1: every (lane, axis, regime) cell commits ({committing}/{} cells)",
        if committing == all.len() { "PASS" } else { "FAIL" },
        all.len(),
    ));

    // E15-2: the hot-key lane conserves the federation-wide counter sum in
    // every cell — aborted and retried programs roll back exactly, under
    // every regime and every theta.
    let conserved = contention.iter().filter(|r| r.oracle_ok).count();
    out.push(format!(
        "[{}] E15-2: counter sum conserved at every contention cell ({conserved}/{})",
        if conserved == contention.len() {
            "PASS"
        } else {
            "FAIL"
        },
        contention.len(),
    ));

    // E15-3 (C4): at the hottest point (theta 1.2) semantic L1 locking
    // out-commits the read/write ablation — commuting increments should
    // not queue.
    let hot = |regime: Regime| {
        contention
            .iter()
            .find(|r| r.regime == regime && r.axis == "theta=1.2")
            .and_then(|r| r.txn_s)
    };
    let c4 = match (hot(Regime::CommitBefore), hot(Regime::CommitBeforeRw)) {
        (Some(sem), Some(rw)) => sem >= rw,
        _ => false,
    };
    out.push(format!(
        "[{}] E15-3 (C4): semantic L1 >= read/write L1 at theta=1.2 ({} vs {} txn/s)",
        if c4 { "PASS" } else { "FAIL" },
        opt2(hot(Regime::CommitBefore)),
        opt2(hot(Regime::CommitBeforeRw)),
    ));

    // E15-4: the measured intended-abort fraction tracks the dial in the
    // abort lane (within 0.15 absolute at every cell) — the dial acts
    // through transaction logic, not through a side channel.
    let mut tracked = 0;
    let mut total = 0;
    for rate in ABORT_RATES {
        for r in aborts.iter().filter(|r| r.axis == format!("abort={rate}")) {
            total += 1;
            if let Some(measured) = r.intended_rate {
                if (measured - rate).abs() <= 0.15 {
                    tracked += 1;
                }
            } else if rate == 0.0 && r.committed == 0 {
                // n=0 cell: nothing ran, nothing to track.
                tracked += 1;
            }
        }
    }
    out.push(format!(
        "[{}] E15-4 (C3 dial): measured intended-abort rate tracks the configured rate ({tracked}/{total})",
        if tracked == total { "PASS" } else { "FAIL" },
    ));

    // E15-5: the wire lane's escrow bound holds (no stock counter below
    // zero on either wire) and both wires consumed bit-identical program
    // streams.
    let escrow_ok = wire.iter().all(|w| w.min_counter >= 0);
    let fp = |w: Wire, regime: Regime| {
        wire.iter()
            .find(|r| r.wire == w && r.row.regime == regime)
            .map(|r| r.stream_fp)
    };
    let streams_match = Regime::ALL
        .iter()
        .all(|&r| fp(Wire::InProcess, r) == fp(Wire::TcpLoopback, r));
    out.push(format!(
        "[{}] E15-5: escrow bound holds over TCP and both wires replay one seeded stream (min counter {}, streams {})",
        if escrow_ok && streams_match {
            "PASS"
        } else {
            "FAIL"
        },
        wire.iter().map(|w| w.min_counter).min().unwrap_or(0),
        if streams_match { "identical" } else { "DIVERGED" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `report -- quick` smoke at CI size: every lane runs, every
    /// verdict passes, winners cover every sweep point.
    #[test]
    fn quick_regime_map_passes_all_verdicts() {
        let contention = run_contention(30, 4);
        let fanout = run_fanout(30, 4);
        let aborts = run_aborts(40, 4);
        let wire = run_wire(30, 4);
        assert_eq!(contention.len(), THETAS.len() * Regime::ALL.len());
        assert_eq!(fanout.len(), FANOUTS.len() * Regime::ALL.len());
        assert_eq!(aborts.len(), ABORT_RATES.len() * Regime::ALL.len());
        assert_eq!(wire.len(), 2 * Regime::ALL.len());
        for v in verdicts(&contention, &fanout, &aborts, &wire) {
            assert!(v.starts_with("[PASS]"), "{v}");
        }
        assert_eq!(winners("contention", &contention).len(), THETAS.len());
        assert_eq!(winners("fan-out", &fanout).len(), FANOUTS.len());
    }
}
