//! **E3 — intended-abort crossover** (§4.3 / claim C3-b).
//!
//! "The only drawback of commitment before global decision is the overhead
//! in case of an intended local transaction abort ... Intended transaction
//! aborts are handled better if local transactions are committed after the
//! global decision is made." Sweep the intended-abort rate and measure both
//! portable protocols: commit-before pays inverse transactions per abort;
//! commit-after aborts running locals for free. The shape to reproduce: the
//! commit-before advantage shrinks (or inverts) as the abort rate grows.

use crate::setup::{build_federation, program_batch};
use crate::table::{f2, f3, opt2, TextTable};
use amc_mlt::ConflictPolicy;
use amc_types::ProtocolKind;
use amc_workload::{OpMix, WorkloadSpec};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Intended abort probability in the workload.
    pub abort_rate: f64,
    /// All-transaction completion rate (commits + aborts) per second —
    /// aborted work still costs time.
    pub completions_per_s: f64,
    /// Inverse transactions executed per intended abort.
    pub undos_per_abort: f64,
    /// Median commit latency (ms); `None` when nothing committed.
    pub latency_p50_ms: Option<f64>,
    /// Tail (p99) commit latency (ms); `None` when nothing committed.
    pub latency_p99_ms: Option<f64>,
    /// Commits achieved.
    pub committed: u64,
    /// Intended aborts observed.
    pub aborted: u64,
}

fn spec(abort_prob: f64) -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 512,
        zipf_theta: 0.0,
        ops_per_txn: 6,
        sites_per_txn: 2,
        mix: OpMix::MIXED,
        intended_abort_prob: abort_prob,
    }
}

/// Run the sweep.
pub fn run(txns: usize, threads: usize, abort_rates: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &rate in abort_rates {
        for protocol in [ProtocolKind::CommitBefore, ProtocolKind::CommitAfter] {
            let spec = spec(rate);
            let fed = build_federation(protocol, ConflictPolicy::Semantic, &spec);
            let batch = program_batch(&spec, 3_000, txns);
            let m = fed.run_concurrent(batch, threads);
            let aborted = m.aborted_intended;
            rows.push(Row {
                protocol,
                abort_rate: rate,
                completions_per_s: if m.wall.is_zero() {
                    0.0
                } else {
                    (m.committed + m.aborted_intended + m.aborted_erroneous) as f64
                        / m.wall.as_secs_f64()
                },
                undos_per_abort: if aborted > 0 {
                    m.undo_runs as f64 / aborted as f64
                } else {
                    0.0
                },
                latency_p50_ms: m.latency_p50_ms(),
                latency_p99_ms: m.latency_p99_ms(),
                committed: m.committed,
                aborted,
            });
        }
    }
    rows
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E3 — intended-abort handling: commit-before pays undo, commit-after aborts for free",
        &[
            "abort-rate",
            "protocol",
            "completions/s",
            "undos/abort",
            "lat p50 ms",
            "lat p99 ms",
            "commits",
            "aborts",
        ],
    );
    for r in rows {
        t.row(vec![
            f2(r.abort_rate),
            r.protocol.label().to_string(),
            f2(r.completions_per_s),
            f3(r.undos_per_abort),
            opt2(r.latency_p50_ms),
            opt2(r.latency_p99_ms),
            r.committed.to_string(),
            r.aborted.to_string(),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    // Commit-before must run >= 1 inverse transaction per intended abort
    // with committed locals; commit-after must run none.
    let cb_high = rows
        .iter()
        .find(|r| r.protocol == ProtocolKind::CommitBefore && r.abort_rate >= 0.3);
    let ca_high = rows
        .iter()
        .find(|r| r.protocol == ProtocolKind::CommitAfter && r.abort_rate >= 0.3);
    if let (Some(cb), Some(ca)) = (cb_high, ca_high) {
        out.push(format!(
            "[{}] C3b-1: commit-before runs inverse txns on intended aborts ({:.2}/abort)",
            if cb.undos_per_abort > 0.0 {
                "PASS"
            } else {
                "FAIL"
            },
            cb.undos_per_abort,
        ));
        out.push(format!(
            "[{}] C3b-2: commit-after needs no undo machinery ({:.2}/abort)",
            if ca.undos_per_abort == 0.0 {
                "PASS"
            } else {
                "FAIL"
            },
            ca.undos_per_abort,
        ));
    }
    // The relative gap between the protocols must shrink as aborts rise.
    let gap_at = |rate_lo: bool| -> Option<f64> {
        let pick = |p: ProtocolKind| {
            rows.iter().filter(|r| r.protocol == p).find(|r| {
                if rate_lo {
                    r.abort_rate <= 0.01
                } else {
                    r.abort_rate >= 0.3
                }
            })
        };
        let cb = pick(ProtocolKind::CommitBefore)?;
        let ca = pick(ProtocolKind::CommitAfter)?;
        Some(cb.completions_per_s / ca.completions_per_s.max(1e-9))
    };
    if let (Some(lo), Some(hi)) = (gap_at(true), gap_at(false)) {
        out.push(format!(
            "[{}] C3b-3: commit-before's edge shrinks as the abort rate grows (ratio {:.2} -> {:.2})",
            if hi < lo { "PASS" } else { "FAIL" },
            lo,
            hi,
        ));
    }
    out
}
