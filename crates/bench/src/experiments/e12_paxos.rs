//! **E12 — Paxos Commit: the blocking window, and what replication
//! costs at f = 1** (amc-paxos + the threaded federation).
//!
//! Two measurements on the replicated-coordinator runtime:
//!
//! * **Blocking window vs coordinator outage.** A transfer is driven to
//!   the classical in-doubt point — both participants prepared, their
//!   votes replicated to the acceptor group, the incumbent coordinator
//!   replica dead before any decision. Under classic 2PC *only the
//!   restarted incumbent* may decide, so the prepared sites stay wedged
//!   for the whole restart delay `D`: we emulate that lane by holding
//!   resolution until `D` has elapsed. Under Paxos Commit a standby
//!   replica decides immediately from the acceptor logs. The claimed
//!   shape: the classic window tracks `D` (the outage *is* the window)
//!   while the Paxos window stays flat — takeover latency only,
//!   independent of how long the dead incumbent stays dead.
//!
//! * **Messages + commit latency at f = 1.** The same workload over the
//!   same five sites, with and without a 3-acceptor (2f+1, f = 1)
//!   Paxos Commit group co-located on sites 1–3. Replication is not
//!   free: registration and vote replication add messages, and every
//!   acceptor append is a real fsync. The claimed shape: a bounded
//!   constant-factor message overhead and a latency cost that buys the
//!   non-blocking property measured above.

use crate::table::{opt2, TextTable};
use amc_core::{Federation, FederationConfig, TxnOutcome};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SITES: u32 = 5; // sites 1..=3 host the acceptors; 4 and 5 trade
const ACCEPTORS: u32 = 3; // 2f+1 with f = 1
const OBJECTS: u64 = 64;
const PER_OBJ: i64 = 100;

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amc-e12-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn loaded(paxos_dir: Option<&std::path::Path>) -> Federation {
    let mut cfg = FederationConfig::uniform(SITES, ProtocolKind::TwoPhaseCommit);
    if let Some(dir) = paxos_dir {
        cfg = cfg.with_paxos_commit(ACCEPTORS, dir);
    }
    let fed = Federation::new(cfg);
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..OBJECTS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }
    fed
}

/// Transfer over object pair `i`: site 4 pays site 5.
fn transfer(i: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    BTreeMap::from([
        (
            SiteId::new(4),
            vec![Operation::Increment {
                obj: obj(4, i % OBJECTS),
                delta: -1,
            }],
        ),
        (
            SiteId::new(5),
            vec![Operation::Increment {
                obj: obj(5, i % OBJECTS),
                delta: 1,
            }],
        ),
    ])
}

// --- part A: blocking window vs coordinator outage -------------------------

/// One measured outage duration.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Incumbent restart delay, ms — how long the dead coordinator
    /// replica stays dead.
    pub outage_ms: u64,
    /// Classic 2PC: prepared sites blocked until the restarted incumbent
    /// resolves — restart delay + its recovery sweep + the retried
    /// probe transfer, ms.
    pub classic_window_ms: f64,
    /// Paxos Commit: a standby replica decides from the acceptor logs at
    /// once — takeover sweep + the retried probe transfer, ms.
    pub paxos_window_ms: f64,
    /// classic / paxos.
    pub ratio: Option<f64>,
}

/// Drive a transfer in doubt (incumbent dies after both prepare votes
/// replicate), then measure how long the wedged objects stay blocked
/// when resolution must wait `restart_delay` (classic lane: only the
/// incumbent may decide) vs not at all (Paxos lane: any standby may).
fn run_window_cell(outage_ms: u64, classic: bool) -> f64 {
    let lane = if classic { "classic" } else { "paxos" };
    let dir = scratch_dir(&format!("window-{lane}-{outage_ms}"));
    let fed = loaded(Some(&dir));
    // Warm the path so neither lane pays first-transaction setup.
    assert_eq!(
        fed.run_transaction(&transfer(1)).expect("warmup").outcome,
        TxnOutcome::Committed
    );
    fed.inject_coordinator_crash_after_votes(2);
    let t0 = Instant::now();
    let in_doubt = fed.run_transaction(&transfer(0));
    assert!(in_doubt.is_err(), "the incumbent must die in doubt");
    if classic {
        // Classic 2PC: no standby exists. The prepared participants hold
        // their locks until the incumbent is back — the restart delay is
        // protocol-mandated dead time.
        std::thread::sleep(Duration::from_millis(outage_ms));
        fed.replica_driver(0)
            .run_once()
            .expect("restarted incumbent sweep");
    } else {
        // Paxos Commit: standby replica 1 reads the acceptor logs and
        // decides now; the outage duration never enters the window.
        fed.replica_driver(1).run_once().expect("standby sweep");
    }
    // The window closes when the wedged objects take a new transfer.
    let probe = fed.run_transaction(&transfer(0)).expect("probe");
    assert_eq!(probe.outcome, TxnOutcome::Committed, "{lane} probe");
    let window = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&dir);
    window
}

// --- part B: messages + latency at f = 1 -----------------------------------

/// One measured protocol lane.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// "2pc" or "paxos-commit(3)".
    pub mode: &'static str,
    /// Committed transactions (all must commit).
    pub committed: u64,
    /// Protocol messages per transaction (registration, vote
    /// replication, and decision distribution included).
    pub msgs_per_txn: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// p99 commit latency, µs.
    pub p99_us: f64,
}

fn run_cost_cell(mode: &'static str, paxos: bool, txns: u64) -> CostRow {
    let dir = scratch_dir(&format!("cost-{mode}"));
    let fed = loaded(paxos.then_some(dir.as_path()));
    let mut committed = 0u64;
    let mut messages = 0u64;
    let mut lat_us: Vec<f64> = Vec::with_capacity(txns as usize);
    for i in 0..txns {
        let t0 = Instant::now();
        let report = fed.run_transaction(&transfer(i)).expect("transfer");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(report.outcome, TxnOutcome::Committed);
        committed += 1;
        messages += report.messages;
    }
    let _ = std::fs::remove_dir_all(&dir);
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    CostRow {
        mode,
        committed,
        msgs_per_txn: messages as f64 / committed as f64,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
    }
}

// --- part C: group-commit linger on the acceptor log -----------------------

/// One measured acceptor-sync discipline under concurrent load.
#[derive(Debug, Clone)]
pub struct LingerRow {
    /// "fsync-per-append" or "group-commit <µs>".
    pub label: String,
    /// Committed transactions (all must commit).
    pub committed: u64,
    /// Aggregate throughput, txn/s.
    pub txn_per_s: f64,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// p99 commit latency, µs.
    pub p99_us: f64,
    /// Durability-critical frames appended across all acceptor logs.
    pub appends: u64,
    /// fsyncs actually paid for them (== `appends` without a linger).
    pub fsyncs: u64,
}

impl LingerRow {
    /// Appends amortised per fsync — the group-commit batching factor.
    pub fn batching(&self) -> f64 {
        self.appends as f64 / (self.fsyncs as f64).max(1.0)
    }
}

/// Drive `threads` disjoint transfer streams through one Paxos Commit
/// federation and measure commit latency under the given acceptor sync
/// discipline. Every acceptor append is durability-critical; without a
/// linger each one pays its own fsync, serialised under the acceptor
/// lock — exactly the collapse group commit exists to amortise.
fn run_linger_cell(linger: Option<Duration>, txns_per_thread: u64, threads: usize) -> LingerRow {
    let label = match linger {
        None => "fsync-per-append".to_string(),
        Some(d) => format!("group-commit {}µs", d.as_micros()),
    };
    let dir = scratch_dir(&format!("linger-{}", linger.map_or(0, |d| d.as_micros())));
    let mut cfg = FederationConfig::uniform(SITES, ProtocolKind::TwoPhaseCommit)
        .with_paxos_commit(ACCEPTORS, &dir);
    if let Some(d) = linger {
        cfg.paxos = cfg.paxos.map(|p| p.with_acceptor_linger(d));
    }
    let fed = Federation::new(cfg);
    for s in 1..=SITES {
        let data: Vec<(ObjectId, Value)> = (0..OBJECTS)
            .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
            .collect();
        fed.load_site(SiteId::new(s), &data).expect("load");
    }
    let fed = &fed;
    let t0 = Instant::now();
    let per_thread: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    // Disjoint object slices per thread: pure fsync
                    // pressure, no lock conflicts.
                    let span = OBJECTS / threads as u64;
                    let base = t as u64 * span;
                    let mut lat = Vec::with_capacity(txns_per_thread as usize);
                    for i in 0..txns_per_thread {
                        let tx0 = Instant::now();
                        let report = fed
                            .run_transaction(&transfer(base + i % span.max(1)))
                            .expect("transfer");
                        assert_eq!(report.outcome, TxnOutcome::Committed);
                        lat.push(tx0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    // Read the durability counters before the federation is dropped:
    // frames appended across every acceptor log, and how many fsyncs
    // actually covered them (sync-per-record pays one per frame).
    let mut appends = 0u64;
    let mut group_fsyncs = 0u64;
    if let Some(tp) = fed.paxos_transport() {
        for s in 1..=SITES {
            if let Some(h) = tp.host(SiteId::new(s)) {
                appends += h.log_frames() as u64;
                group_fsyncs += h.group_fsyncs();
            }
        }
    }
    let fsyncs = if linger.is_some() {
        group_fsyncs
    } else {
        appends
    };
    let _ = std::fs::remove_dir_all(&dir);
    let mut lat_us: Vec<f64> = per_thread.into_iter().flatten().collect();
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    LingerRow {
        label,
        committed: lat_us.len() as u64,
        txn_per_s: lat_us.len() as f64 / wall.max(1e-9),
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        appends,
        fsyncs,
    }
}

/// Run part C: the same concurrent workload with and without the
/// acceptor group-commit linger.
pub fn run_linger(txns_per_thread: u64, threads: usize) -> Vec<LingerRow> {
    vec![
        run_linger_cell(None, txns_per_thread, threads),
        run_linger_cell(Some(Duration::from_micros(200)), txns_per_thread, threads),
    ]
}

/// Render part C.
pub fn linger_table(rows: &[LingerRow]) -> TextTable {
    let mut t = TextTable::new(
        "E12c — acceptor group commit under concurrency (paxos-commit(3), 8 disjoint streams)",
        &[
            "acceptor sync",
            "committed",
            "txn/s",
            "p50 µs",
            "p99 µs",
            "appends",
            "fsyncs",
            "appends/fsync",
        ],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            r.committed.to_string(),
            format!("{:.0}", r.txn_per_s),
            format!("{:.0}", r.p50_us),
            format!("{:.0}", r.p99_us),
            r.appends.to_string(),
            r.fsyncs.to_string(),
            format!("{:.1}", r.batching()),
        ]);
    }
    t
}

/// The shape check for part C.
pub fn linger_verdicts(rows: &[LingerRow]) -> Vec<String> {
    let base = rows.iter().find(|r| r.label.starts_with("fsync"));
    let grouped = rows.iter().find(|r| r.label.starts_with("group"));
    // The durability arithmetic, not the wall clock: the linger must
    // make concurrent appends share fsyncs (≥ 2× batching) without
    // losing a commit. Throughput is reported but not gated on — on a
    // fast medium the fsync is cheap enough that the wall-clock delta
    // drowns in scheduler noise.
    let amortised = matches!(
        (base, grouped),
        (Some(b), Some(g))
            if g.committed == b.committed
                && g.fsyncs < g.appends
                && g.batching() >= 2.0
    );
    vec![format!(
        "[{}] E12-4: group commit amortises the acceptor durability point — concurrent \
         appends share fsyncs at >= 2x batching, every commit kept",
        if amortised { "PASS" } else { "FAIL" },
    )]
}

/// Run both sweeps.
pub fn run(outages_ms: &[u64], cost_txns: u64) -> (Vec<WindowRow>, Vec<CostRow>) {
    let windows = outages_ms
        .iter()
        .map(|&d| {
            let classic = run_window_cell(d, true);
            let paxos = run_window_cell(d, false);
            WindowRow {
                outage_ms: d,
                classic_window_ms: classic,
                paxos_window_ms: paxos,
                ratio: (paxos > 0.0).then(|| classic / paxos),
            }
        })
        .collect();
    let costs = vec![
        run_cost_cell("2pc", false, cost_txns),
        run_cost_cell("paxos-commit(3)", true, cost_txns),
    ];
    (windows, costs)
}

/// Render part A.
pub fn window_table(rows: &[WindowRow]) -> TextTable {
    let mut t = TextTable::new(
        "E12a — blocking window after a coordinator crash (in-doubt transfer, f = 1)",
        &[
            "outage ms",
            "classic 2PC window ms",
            "paxos window ms",
            "classic/paxos",
        ],
    );
    for r in rows {
        t.row(vec![
            r.outage_ms.to_string(),
            format!("{:.2}", r.classic_window_ms),
            format!("{:.2}", r.paxos_window_ms),
            opt2(r.ratio),
        ]);
    }
    t
}

/// Render part B.
pub fn cost_table(rows: &[CostRow]) -> TextTable {
    let mut t = TextTable::new(
        "E12b — replication cost at f = 1 (5 sites, acceptors co-located on 1-3)",
        &["mode", "committed", "msgs/txn", "p50 µs", "p99 µs"],
    );
    for r in rows {
        t.row(vec![
            r.mode.to_string(),
            r.committed.to_string(),
            format!("{:.1}", r.msgs_per_txn),
            format!("{:.0}", r.p50_us),
            format!("{:.0}", r.p99_us),
        ]);
    }
    t
}

/// The shape checks for this experiment.
pub fn verdicts(windows: &[WindowRow], costs: &[CostRow]) -> Vec<String> {
    let mut out = Vec::new();
    // E12-1: the classic window is the outage — it contains the full
    // restart delay in every row.
    let classic_tracks = windows
        .iter()
        .all(|r| r.classic_window_ms >= r.outage_ms as f64);
    out.push(format!(
        "[{}] E12-1: the classic 2PC window contains the full coordinator outage in every row",
        if classic_tracks { "PASS" } else { "FAIL" },
    ));
    // E12-2: the Paxos window is flat and beats classic everywhere — the
    // longest outage never reaches the standby's takeover latency.
    let paxos_flat = windows
        .iter()
        .all(|r| r.paxos_window_ms < r.classic_window_ms)
        && match (
            windows.iter().map(|r| r.paxos_window_ms).reduce(f64::max),
            windows.iter().map(|r| r.outage_ms).max(),
        ) {
            (Some(worst_paxos), Some(longest_outage)) => worst_paxos < longest_outage as f64,
            _ => false,
        };
    out.push(format!(
        "[{}] E12-2: the Paxos Commit window stays below every classic window and below the \
         longest outage — takeover latency, not dead time",
        if paxos_flat { "PASS" } else { "FAIL" },
    ));
    // E12-3: replication costs a bounded constant factor — everything
    // still commits, and messages/txn grow by at most 6x (registration +
    // vote replication + decision notes across 3 acceptors).
    let classic = costs.iter().find(|r| r.mode == "2pc");
    let paxos = costs.iter().find(|r| r.mode != "2pc");
    let bounded = matches!(
        (classic, paxos),
        (Some(c), Some(p))
            if c.committed > 0
                && p.committed == c.committed
                && p.msgs_per_txn <= 6.0 * c.msgs_per_txn
    );
    out.push(format!(
        "[{}] E12-3: f = 1 replication keeps every commit and costs at most 6x the messages",
        if bounded { "PASS" } else { "FAIL" },
    ));
    out
}
