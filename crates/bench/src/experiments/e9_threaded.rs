//! **E9 — threaded scaling & group commit** (engine hot path).
//!
//! Sweep the worker-thread count at low contention and measure, per
//! protocol: committed-transaction throughput, speedup over the
//! single-thread run, and the physical log forces per durably acknowledged
//! commit record. Two shapes are claimed:
//!
//! * throughput scales with threads once the engine's internals are
//!   per-component locked (striped page locks, decomposed engine state) —
//!   a single engine-wide mutex would flatline the curve;
//! * group commit amortizes the modelled fsync: at one thread every commit
//!   record pays a full force (ratio 1.0), while concurrent committers
//!   share a leader's force and push the ratio below 1.

use crate::setup::{build_federation, program_batch};
use crate::table::{opt2, TextTable};
use amc_mlt::ConflictPolicy;
use amc_types::ProtocolKind;
use amc_workload::{OpMix, WorkloadSpec};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Worker threads driving the federation.
    pub threads: usize,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Committed txns per second.
    pub throughput: Option<f64>,
    /// Throughput relative to this protocol's 1-thread run.
    pub speedup: Option<f64>,
    /// Commits achieved.
    pub committed: u64,
    /// Physical log forces across all engines.
    pub forces: u64,
    /// Forces issued by group-commit leaders.
    pub group_forces: u64,
    /// Commit/prepare records acknowledged through group-commit batches.
    pub batched_commits: u64,
    /// Physical forces per durably acknowledged record.
    pub forces_per_commit: Option<f64>,
}

/// Low contention so the thread sweep measures the engine hot path, not
/// lock queueing: uniform access over a decent object set, increment-heavy.
fn spec() -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 64,
        zipf_theta: 0.0,
        ops_per_txn: 6,
        sites_per_txn: 2,
        mix: OpMix {
            write: 0.0,
            increment: 0.9,
            reserve: 0.0,
        },
        intended_abort_prob: 0.0,
    }
}

/// Run the sweep.
pub fn run(txns: usize, thread_counts: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut base: Option<f64> = None;
        for &threads in thread_counts {
            let spec = spec();
            let fed = build_federation(protocol, ConflictPolicy::Semantic, &spec);
            let batch = program_batch(&spec, 9_000 + threads as u64, txns);
            let m = fed.run_concurrent(batch, threads);
            if threads == thread_counts[0] {
                base = m.throughput();
            }
            rows.push(Row {
                threads,
                protocol,
                throughput: m.throughput(),
                speedup: match (m.throughput(), base) {
                    (Some(t), Some(b)) if b > 0.0 => Some(t / b),
                    _ => None,
                },
                committed: m.committed,
                forces: m.log_forces,
                group_forces: m.group_forces,
                batched_commits: m.batched_commits,
                forces_per_commit: m.forces_per_commit(),
            });
        }
    }
    rows
}

/// Render as the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E9 — threaded scaling: throughput & group-commit amortization vs worker threads",
        &[
            "threads",
            "protocol",
            "txn/s",
            "speedup",
            "commits",
            "forces",
            "grp-forces",
            "batched",
            "forces/commit",
        ],
    );
    for r in rows {
        t.row(vec![
            r.threads.to_string(),
            r.protocol.label().to_string(),
            opt2(r.throughput),
            opt2(r.speedup),
            r.committed.to_string(),
            r.forces.to_string(),
            r.group_forces.to_string(),
            r.batched_commits.to_string(),
            opt2(r.forces_per_commit),
        ]);
    }
    t
}

/// The shape checks for this experiment.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    // E9-1: group commit amortizes forces once ≥4 committers run — the
    // commit-before rows (the paper's protocol) must show < 1 force per
    // acknowledged record at every thread count ≥ 4.
    let hot: Vec<&Row> = rows
        .iter()
        .filter(|r| r.protocol == ProtocolKind::CommitBefore && r.threads >= 4)
        .collect();
    let batched = !hot.is_empty()
        && hot
            .iter()
            .all(|r| r.forces_per_commit.is_some_and(|f| f < 1.0));
    let shown = hot
        .iter()
        .map(|r| format!("{}T {}", r.threads, opt2(r.forces_per_commit)))
        .collect::<Vec<_>>()
        .join(", ");
    out.push(format!(
        "[{}] E9-1: group commit forces < 1 per commit record at >=4 threads (commit-before: {})",
        if batched { "PASS" } else { "FAIL" },
        if shown.is_empty() {
            "n=0".into()
        } else {
            shown
        },
    ));
    // E9-2: the decomposed engine actually scales — some protocol must at
    // least double its 1-thread throughput at the widest sweep point.
    let max_threads = rows.iter().map(|r| r.threads).max().unwrap_or(0);
    let best = rows
        .iter()
        .filter(|r| r.threads == max_threads)
        .filter_map(|r| r.speedup.map(|s| (r.protocol, s)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    out.push(match best {
        Some((p, s)) => format!(
            "[{}] E9-2: {max_threads}-thread throughput >= 2x single-thread for some protocol (best: {} at {s:.2}x)",
            if s >= 2.0 { "PASS" } else { "FAIL" },
            p.label(),
        ),
        None => "[FAIL] E9-2: no speedup measured (n=0)".to_string(),
    });
    out
}
