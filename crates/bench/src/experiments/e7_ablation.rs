//! **E7 — ablation: where does the win come from?** (§4.1 / claim C4).
//!
//! Three configurations on the same increment-heavy hot workload:
//!
//! 1. commit-before + **semantic** L1 conflicts (the paper's proposal) —
//!    concurrent increments on the same object interleave;
//! 2. commit-before + **read/write** L1 conflicts — same protocol, but
//!    commutativity is ignored (what a system blind to operation semantics
//!    would do);
//! 3. **2PC flat** — single-level locking, the classical baseline.
//!
//! Isolates the multi-level-transaction contribution (1 vs 2) from the
//! commit-point contribution (2 vs 3).

use crate::setup::{build_federation, program_batch};
use crate::table::{f2, opt2, TextTable};
use amc_mlt::ConflictPolicy;
use amc_types::ProtocolKind;
use amc_workload::{OpMix, WorkloadSpec};

/// One configuration's measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human-readable configuration name.
    pub config: &'static str,
    /// Zipf skew.
    pub theta: f64,
    /// Committed txns per second (`None` when the run measured nothing).
    pub throughput: Option<f64>,
    /// Transactions rejected at L1 (lock conflicts among globals).
    pub l1_rejections: u64,
    /// Commits.
    pub committed: u64,
}

fn spec(theta: f64) -> WorkloadSpec {
    WorkloadSpec {
        sites: 2,
        objects_per_site: 16, // very hot: commutativity is the whole game
        zipf_theta: theta,
        ops_per_txn: 4,
        sites_per_txn: 2,
        mix: OpMix {
            write: 0.0,
            increment: 1.0,
            reserve: 0.0,
        },
        intended_abort_prob: 0.0,
    }
}

/// Run the three configurations across `thetas`.
pub fn run(txns: usize, threads: usize, thetas: &[f64]) -> Vec<Row> {
    let configs: [(&'static str, ProtocolKind, ConflictPolicy); 3] = [
        (
            "commit-before + semantic (MLT)",
            ProtocolKind::CommitBefore,
            ConflictPolicy::Semantic,
        ),
        (
            "commit-before + read/write",
            ProtocolKind::CommitBefore,
            ConflictPolicy::ReadWriteOnly,
        ),
        (
            "2PC flat",
            ProtocolKind::TwoPhaseCommit,
            ConflictPolicy::Semantic, // unused: 2PC has no L1 layer
        ),
    ];
    let mut rows = Vec::new();
    for &theta in thetas {
        for (name, protocol, policy) in configs {
            let spec = spec(theta);
            let fed = build_federation(protocol, policy, &spec);
            let batch = program_batch(&spec, 0xE7, txns);
            let m = fed.run_concurrent(batch, threads);
            rows.push(Row {
                config: name,
                theta,
                throughput: m.throughput(),
                l1_rejections: m.l1_rejections,
                committed: m.committed,
            });
        }
    }
    rows
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E7 — ablation: semantic (MLT) conflicts vs read/write conflicts vs flat 2PC (pure increments)",
        &["theta", "config", "txn/s", "l1-rejections", "commits"],
    );
    for r in rows {
        t.row(vec![
            f2(r.theta),
            r.config.to_string(),
            opt2(r.throughput),
            r.l1_rejections.to_string(),
            r.committed.to_string(),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let hot: Vec<&Row> = rows.iter().filter(|r| r.theta >= 0.9).collect();
    let get = |name: &str| hot.iter().find(|r| r.config.starts_with(name));
    if let (Some(semantic), Some(rw), Some(flat)) = (
        get("commit-before + semantic"),
        get("commit-before + read/write"),
        get("2PC"),
    ) {
        let st = semantic.throughput.unwrap_or(0.0);
        let rt = rw.throughput.unwrap_or(0.0);
        let ft = flat.throughput.unwrap_or(0.0);
        out.push(format!(
            "[{}] C4-1: semantic conflicts beat read/write conflicts on hot increments ({:.1} vs {:.1} txn/s)",
            if semantic.throughput.is_some() && st > rt { "PASS" } else { "FAIL" },
            st,
            rt,
        ));
        out.push(format!(
            "[{}] C4-2: semantic MLT beats flat 2PC ({:.1} vs {:.1} txn/s)",
            if semantic.throughput.is_some() && st > ft {
                "PASS"
            } else {
                "FAIL"
            },
            st,
            ft,
        ));
        out.push(format!(
            "[{}] C4-3: increments never collide at L1 under the semantic policy ({} rejections)",
            if semantic.l1_rejections == 0 {
                "PASS"
            } else {
                "FAIL"
            },
            semantic.l1_rejections,
        ));
    }
    out
}
