//! **E10 — the wire: loopback TCP vs in-process dispatch** (amc-rpc).
//!
//! Run the same mixed workload through the same coordinator against the
//! same engines, swapping only the [`FederationTransport`]: direct
//! in-process function calls vs the real framed codec over loopback TCP
//! (thread-per-connection site servers, deadline/retry client). Sweep
//! client concurrency and report committed-transaction throughput with
//! p50/p99 commit latency per protocol.
//!
//! The claimed shapes:
//!
//! * the wire costs real latency — every TCP p50 sits above its
//!   in-process twin (syscalls, framing, socket round trips per
//!   protocol message are not free);
//! * message complexity shows on the wire — 2PC's extra voting round
//!   buys it a higher TCP commit p50 than commit-before (the paper's
//!   protocol) at every client count, the E4 message-count ordering
//!   re-observed as socket round trips.

use crate::setup::program_batch;
use crate::table::{opt2, TextTable};
use amc_core::{submit_mode_for, Federation, FederationConfig};
use amc_engine::{TplConfig, TwoPLEngine};
use amc_mlt::ConflictPolicy;
use amc_net::comm::EngineHandle;
use amc_net::transport::{FederationTransport, InProcessTransport};
use amc_net::LocalCommManager;
use amc_obs::ObsSink;
use amc_rpc::{EventServer, RetryPolicy, SiteServer, TcpTransport};
use amc_types::{ProtocolKind, SiteId};
use amc_workload::{OpMix, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Which wire the coordinator speaks over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// Direct dispatch into the managers (the simulator's transport).
    InProcess,
    /// Framed codec over loopback TCP through `amc-rpc`.
    TcpLoopback,
}

impl Wire {
    /// Short label for the table.
    pub fn label(self) -> &'static str {
        match self {
            Wire::InProcess => "in-process",
            Wire::TcpLoopback => "tcp-loopback",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Client (driver thread) concurrency.
    pub clients: usize,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Transport under test.
    pub wire: Wire,
    /// Commits achieved.
    pub committed: u64,
    /// Committed txns per second.
    pub throughput: Option<f64>,
    /// Median commit latency, ms.
    pub p50_ms: Option<f64>,
    /// Tail commit latency, ms.
    pub p99_ms: Option<f64>,
}

/// Low contention, increment-heavy, 2-site transactions: the measured
/// cost is the message path, not lock queueing.
fn spec() -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 64,
        zipf_theta: 0.0,
        ops_per_txn: 4,
        sites_per_txn: 2,
        mix: OpMix {
            write: 0.0,
            increment: 0.9,
            reserve: 0.0,
        },
        intended_abort_prob: 0.0,
    }
}

/// Engines with no modelled delays: real syscall + scheduling cost is the
/// thing E10 measures, so nothing synthetic is added on either wire.
fn managers(sites: u32) -> BTreeMap<SiteId, Arc<LocalCommManager>> {
    (1..=sites)
        .map(|s| {
            let site = SiteId::new(s);
            let cfg = TplConfig {
                lock_timeout: Duration::from_millis(100),
                deadlock_check: Duration::from_millis(1),
                ..TplConfig::default()
            };
            let engine = Arc::new(TwoPLEngine::new(cfg));
            (
                site,
                Arc::new(LocalCommManager::new(
                    site,
                    EngineHandle::Preparable(engine),
                )),
            )
        })
        .collect()
}

/// Run one (protocol, wire, clients) cell and return its row.
fn run_cell(protocol: ProtocolKind, wire: Wire, clients: usize, txns: usize) -> Row {
    let spec = spec();
    let mode = submit_mode_for(protocol);
    let managers = managers(spec.sites);

    // Servers must outlive the run; shutdown happens on drop after it.
    let mut servers: Vec<SiteServer> = Vec::new();
    let transport: Arc<dyn FederationTransport> = match wire {
        Wire::InProcess => Arc::new(InProcessTransport::new(
            managers.clone(),
            mode,
            Duration::ZERO,
        )),
        Wire::TcpLoopback => {
            let mut addrs = BTreeMap::new();
            for (&site, manager) in &managers {
                let srv = SiteServer::spawn(
                    site,
                    Arc::clone(manager),
                    mode,
                    "127.0.0.1:0",
                    ObsSink::disabled(),
                )
                .expect("bind loopback");
                addrs.insert(site, srv.addr());
                servers.push(srv);
            }
            Arc::new(TcpTransport::new(
                addrs,
                RetryPolicy::default(),
                ObsSink::disabled(),
            ))
        }
    };

    let mut cfg = FederationConfig::uniform(spec.sites, protocol);
    cfg.policy = ConflictPolicy::Semantic;
    cfg.l1_timeout = Duration::from_millis(500);
    let mut fed = Federation::with_transport(cfg, transport);
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }

    let batch = program_batch(&spec, 10_000 + clients as u64, txns);
    let m = fed.run_concurrent(batch, clients);
    drop(fed);
    for srv in servers {
        srv.shutdown();
    }
    Row {
        clients,
        protocol,
        wire,
        committed: m.committed,
        throughput: m.throughput(),
        p50_ms: m.latency_p50_ms(),
        p99_ms: m.latency_p99_ms(),
    }
}

/// Run the sweep.
pub fn run(txns: usize, client_counts: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for wire in [Wire::InProcess, Wire::TcpLoopback] {
            for &clients in client_counts {
                rows.push(run_cell(protocol, wire, clients, txns));
            }
        }
    }
    rows
}

/// Render as the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E10 — the wire: loopback TCP (amc-rpc) vs in-process dispatch",
        &[
            "clients", "protocol", "wire", "commits", "txn/s", "p50 ms", "p99 ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.clients.to_string(),
            r.protocol.label().to_string(),
            r.wire.label().to_string(),
            r.committed.to_string(),
            opt2(r.throughput),
            opt2(r.p50_ms),
            opt2(r.p99_ms),
        ]);
    }
    t
}

// ----------------------------------------------- high concurrency --

/// Which server runtime + client flavour a high-concurrency cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HcRuntime {
    /// Thread-per-connection server, pooled blocking client (one
    /// connection checked out per in-flight request).
    ThreadedPooled,
    /// Event-loop server, pooled blocking client.
    EventPooled,
    /// Event-loop server, multiplexed pipelining client (one shared
    /// connection per site).
    EventMux,
}

impl HcRuntime {
    /// Short label for the table.
    pub fn label(self) -> &'static str {
        match self {
            HcRuntime::ThreadedPooled => "threaded+pooled",
            HcRuntime::EventPooled => "event-loop+pooled",
            HcRuntime::EventMux => "event-loop+mux",
        }
    }

    /// Every combination, sweep order.
    pub const ALL: [HcRuntime; 3] = [
        HcRuntime::ThreadedPooled,
        HcRuntime::EventPooled,
        HcRuntime::EventMux,
    ];
}

/// One high-concurrency measurement.
#[derive(Debug, Clone)]
pub struct HcRow {
    /// Runtime + client flavour.
    pub runtime: HcRuntime,
    /// Driver-thread concurrency.
    pub clients: usize,
    /// Commits achieved.
    pub committed: u64,
    /// Committed txns per second.
    pub throughput: Option<f64>,
    /// Median commit latency, ms.
    pub p50_ms: Option<f64>,
    /// Tail commit latency, ms.
    pub p99_ms: Option<f64>,
    /// Load-shed (`BufferExhausted`) replies the clients absorbed — the
    /// backpressure the event runtime applied past its in-flight cap.
    pub sheds: u64,
    /// Sheds per committed transaction.
    pub sheds_per_txn: Option<f64>,
    /// Peak server-side connections, summed across site servers.
    pub connections: u64,
    /// `connections` per available core — the "how many sockets does a
    /// core carry" figure the event loop exists to improve.
    pub conns_per_core: f64,
}

/// Run one high-concurrency cell: hundreds of driver threads hammering
/// commit-before (the paper's protocol, the cheapest message path — the
/// transport is the bottleneck under test) over loopback TCP.
fn run_hc_cell(runtime: HcRuntime, clients: usize, txns: usize) -> HcRow {
    let protocol = ProtocolKind::CommitBefore;
    let spec = spec();
    let mode = submit_mode_for(protocol);
    let managers = managers(spec.sites);

    let mut threaded: Vec<SiteServer> = Vec::new();
    let mut event: Vec<EventServer> = Vec::new();
    let mut addrs = BTreeMap::new();
    for (&site, manager) in &managers {
        match runtime {
            HcRuntime::ThreadedPooled => {
                let srv = SiteServer::spawn(
                    site,
                    Arc::clone(manager),
                    mode,
                    "127.0.0.1:0",
                    ObsSink::disabled(),
                )
                .expect("bind loopback");
                addrs.insert(site, srv.addr());
                threaded.push(srv);
            }
            HcRuntime::EventPooled | HcRuntime::EventMux => {
                let srv = EventServer::spawn(
                    site,
                    Arc::clone(manager),
                    mode,
                    "127.0.0.1:0",
                    ObsSink::disabled(),
                )
                .expect("bind loopback");
                addrs.insert(site, srv.addr());
                event.push(srv);
            }
        }
    }
    let policy = RetryPolicy::default();
    let transport: Arc<dyn FederationTransport> = match runtime {
        HcRuntime::EventMux => Arc::new(TcpTransport::new_mux(addrs, policy, ObsSink::disabled())),
        _ => Arc::new(TcpTransport::new(addrs, policy, ObsSink::disabled())),
    };

    let mut cfg = FederationConfig::uniform(spec.sites, protocol);
    cfg.policy = ConflictPolicy::Semantic;
    cfg.l1_timeout = Duration::from_millis(500);
    let mut fed = Federation::with_transport(cfg, transport);
    fed.set_recording(false, false);
    let fed = Arc::new(fed);
    for s in 1..=spec.sites {
        let site = SiteId::new(s);
        fed.load_site(site, &spec.initial_data(site)).expect("load");
    }

    let batch = program_batch(&spec, 20_000 + clients as u64, txns);
    let m = fed.run_concurrent(batch, clients);
    drop(fed);
    // Connection counts, read before teardown: the threaded runtime's
    // figure is retained connection threads (each live connection is a
    // thread); the event runtime's is the loop's high-water mark.
    let connections: u64 = threaded
        .iter()
        .map(|s| s.connection_threads() as u64)
        .chain(event.iter().map(|s| s.stats().peak_connections))
        .sum();
    for srv in threaded {
        srv.shutdown();
    }
    for srv in event {
        srv.shutdown();
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    HcRow {
        runtime,
        clients,
        committed: m.committed,
        throughput: m.throughput(),
        p50_ms: m.latency_p50_ms(),
        p99_ms: m.latency_p99_ms(),
        sheds: m.load_sheds,
        sheds_per_txn: m.sheds_per_commit(),
        connections,
        conns_per_core: connections as f64 / cores,
    }
}

/// Run the high-concurrency sweep: every runtime at `clients` driver
/// threads (the profile pins `clients >= 200`).
pub fn run_high_concurrency(txns: usize, clients: usize) -> Vec<HcRow> {
    HcRuntime::ALL
        .into_iter()
        .map(|rt| run_hc_cell(rt, clients, txns))
        .collect()
}

/// Render the high-concurrency table.
pub fn hc_table(rows: &[HcRow]) -> TextTable {
    let mut t = TextTable::new(
        "E10 — high concurrency: server runtime × client flavour over loopback TCP",
        &[
            "runtime",
            "clients",
            "commits",
            "txn/s",
            "p50 ms",
            "p99 ms",
            "shed/txn",
            "conns",
            "conns/core",
        ],
    );
    for r in rows {
        t.row(vec![
            r.runtime.label().to_string(),
            r.clients.to_string(),
            r.committed.to_string(),
            opt2(r.throughput),
            opt2(r.p50_ms),
            opt2(r.p99_ms),
            opt2(r.sheds_per_txn),
            r.connections.to_string(),
            format!("{:.2}", r.conns_per_core),
        ]);
    }
    t
}

/// Shape checks for the high-concurrency profile.
pub fn hc_verdicts(rows: &[HcRow]) -> Vec<String> {
    let mut out = Vec::new();
    // E10-4: every runtime serves hundreds of concurrent clients.
    let enough = rows.iter().all(|r| r.clients >= 200);
    let all_commit = rows.iter().all(|r| r.committed > 0);
    out.push(format!(
        "[{}] E10-4: every runtime commits at >=200 concurrent clients ({} clients)",
        if enough && all_commit { "PASS" } else { "FAIL" },
        rows.first().map(|r| r.clients).unwrap_or(0),
    ));
    // E10-5: multiplexing collapses the connection count — the mux
    // transport rides one connection per site where the pooled client
    // opens a connection per in-flight request.
    let mux = rows.iter().find(|r| r.runtime == HcRuntime::EventMux);
    let pooled = rows.iter().find(|r| r.runtime == HcRuntime::EventPooled);
    let collapsed = match (mux, pooled) {
        (Some(m), Some(p)) => m.connections <= spec().sites as u64 && m.connections < p.connections,
        _ => false,
    };
    out.push(format!(
        "[{}] E10-5: event-loop+mux rides <=1 connection per site (mux {} vs pooled {})",
        if collapsed { "PASS" } else { "FAIL" },
        mux.map(|r| r.connections).unwrap_or(0),
        pooled.map(|r| r.connections).unwrap_or(0),
    ));
    out
}

/// The shape checks for this experiment.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    // E10-1: every cell commits — all three protocols complete the
    // workload over real sockets at every client count.
    let all_commit = rows.iter().all(|r| r.committed > 0);
    out.push(format!(
        "[{}] E10-1: every (protocol, wire, clients) cell commits transactions ({} cells)",
        if all_commit { "PASS" } else { "FAIL" },
        rows.len(),
    ));
    // E10-2: the wire costs latency — per (protocol, clients), TCP p50 is
    // at least the in-process p50.
    let mut pairs = 0;
    let mut costly = 0;
    for r in rows.iter().filter(|r| r.wire == Wire::TcpLoopback) {
        let twin = rows.iter().find(|q| {
            q.wire == Wire::InProcess && q.protocol == r.protocol && q.clients == r.clients
        });
        if let (Some(tcp), Some(inp)) = (r.p50_ms, twin.and_then(|q| q.p50_ms)) {
            pairs += 1;
            if tcp >= inp {
                costly += 1;
            }
        }
    }
    out.push(format!(
        "[{}] E10-2: tcp-loopback p50 >= in-process p50 in every pair ({costly}/{pairs})",
        if pairs > 0 && costly == pairs {
            "PASS"
        } else {
            "FAIL"
        },
    ));
    // E10-3: message complexity shows on the wire — at every client
    // count, 2PC's extra voting round costs it at least commit-before's
    // TCP p50 (E4's message ordering, re-observed as socket round trips).
    let p50 = |protocol: ProtocolKind, clients: usize| {
        rows.iter()
            .find(|r| r.wire == Wire::TcpLoopback && r.protocol == protocol && r.clients == clients)
            .and_then(|r| r.p50_ms)
    };
    let mut counts: Vec<usize> = rows
        .iter()
        .filter(|r| r.wire == Wire::TcpLoopback)
        .map(|r| r.clients)
        .collect();
    counts.sort_unstable();
    counts.dedup();
    let mut ordered = !counts.is_empty();
    let mut shown = Vec::new();
    for &c in &counts {
        match (
            p50(ProtocolKind::TwoPhaseCommit, c),
            p50(ProtocolKind::CommitBefore, c),
        ) {
            (Some(two_pc), Some(cb)) => {
                if two_pc < cb {
                    ordered = false;
                }
                shown.push(format!("{c}c {two_pc:.2}/{cb:.2}"));
            }
            _ => ordered = false,
        }
    }
    out.push(format!(
        "[{}] E10-3: tcp p50(2pc) >= tcp p50(commit-before) at every client count (2pc/cb ms: {})",
        if ordered { "PASS" } else { "FAIL" },
        shown.join(", "),
    ));
    out
}
