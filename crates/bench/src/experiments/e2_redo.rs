//! **E2 — redo cost of commit-after** (§3.2 / claim C3-a).
//!
//! Sweep the probability `p` that a local transaction is *erroneously
//! aborted after its ready vote* (the §3.2 hazard, injected
//! deterministically at the communication managers) and measure
//! commit-after's throughput, repetition count and latency. The paper:
//! "in the absence of failures, the commit protocol performs very well.
//! If local transactions have to be repeated frequently, performance
//! decreases" — expect redo executions ≈ p/(1-p) per participant and a
//! monotone throughput decline.

use crate::setup::{build_federation, program_batch};
use crate::table::{f2, f3, opt2, TextTable};
use amc_mlt::ConflictPolicy;
use amc_types::{ProtocolKind, SiteId};
use amc_workload::{OpMix, WorkloadSpec};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Injected post-ready abort probability.
    pub p: f64,
    /// Committed txns per second (`None` when the run measured nothing).
    pub throughput: Option<f64>,
    /// Redo executions per committed transaction.
    pub redos_per_commit: f64,
    /// Mean commit latency (ms).
    pub latency_ms: Option<f64>,
    /// Median commit latency (ms).
    pub latency_p50_ms: Option<f64>,
    /// Tail (p99) commit latency (ms).
    pub latency_p99_ms: Option<f64>,
    /// Commits achieved.
    pub committed: u64,
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 128,
        // Moderate contention: a repetition extends the transaction's lock
        // tenure, and that is what other transactions pay for — the paper's
        // "if local transactions have to be repeated frequently,
        // performance decreases" is a statement about a loaded system.
        zipf_theta: 0.6,
        ops_per_txn: 6,
        sites_per_txn: 2,
        mix: OpMix::MIXED,
        intended_abort_prob: 0.0,
    }
}

/// Run the sweep over injected probabilities. Each point is the median of
/// three independent runs (by throughput): rare distributed lock cycles
/// between a mandatory redo and a pre-vote submit resolve via timeouts and
/// can stall one run by ~a second, which would otherwise swamp the ~15%
/// effect under measurement.
pub fn run(txns: usize, threads: usize, probabilities: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in probabilities {
        let mut candidates: Vec<Row> = (0u64..3)
            .map(|round| {
                let spec = spec();
                let fed =
                    build_federation(ProtocolKind::CommitAfter, ConflictPolicy::Semantic, &spec);
                for s in 1..=spec.sites {
                    fed.manager(SiteId::new(s))
                        .expect("site exists")
                        .inject_post_ready_aborts(p, 0xE2 + s as u64 + round * 977);
                }
                let batch = program_batch(&spec, 2_000 + round, txns);
                let m = fed.run_concurrent(batch, threads);
                Row {
                    p,
                    throughput: m.throughput(),
                    redos_per_commit: if m.committed > 0 {
                        m.redo_runs as f64 / m.committed as f64
                    } else {
                        0.0
                    },
                    latency_ms: m.mean_latency_ms(),
                    latency_p50_ms: m.latency_p50_ms(),
                    latency_p99_ms: m.latency_p99_ms(),
                    committed: m.committed,
                }
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.throughput
                .unwrap_or(0.0)
                .total_cmp(&b.throughput.unwrap_or(0.0))
        });
        rows.push(candidates.swap_remove(1)); // median by throughput
    }
    rows
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E2 — commit-after redo cost vs post-ready erroneous-abort probability",
        &[
            "p",
            "txn/s",
            "redos/commit",
            "latency ms",
            "lat p50 ms",
            "lat p99 ms",
            "commits",
        ],
    );
    for r in rows {
        t.row(vec![
            f2(r.p),
            opt2(r.throughput),
            f3(r.redos_per_commit),
            opt2(r.latency_ms),
            opt2(r.latency_p50_ms),
            opt2(r.latency_p99_ms),
            r.committed.to_string(),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        out.push(format!(
            "[{}] C3a-1: redo rate grows with p ({:.3} at p={:.1} -> {:.3} at p={:.1})",
            if last.redos_per_commit > first.redos_per_commit {
                "PASS"
            } else {
                "FAIL"
            },
            first.redos_per_commit,
            first.p,
            last.redos_per_commit,
            last.p,
        ));
        let first_t = first.throughput.unwrap_or(0.0);
        let last_t = last.throughput.unwrap_or(0.0);
        out.push(format!(
            "[{}] C3a-2: throughput declines with p ({:.1} -> {:.1} txn/s)",
            if first.throughput.is_some() && last_t < first_t {
                "PASS"
            } else {
                "FAIL"
            },
            first_t,
            last_t,
        ));
        out.push(format!(
            "[{}] C3a-3: atomicity holds — every submitted txn still commits ({} commits)",
            if rows.iter().all(|r| r.committed > 0) {
                "PASS"
            } else {
                "FAIL"
            },
            last.committed,
        ));
    }
    out
}
