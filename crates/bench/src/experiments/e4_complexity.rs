//! **E4 — message & log-write complexity** (§3.1–3.3, cf. [ML 83]/[DS 83]
//! in the paper's related work).
//!
//! Exact per-transaction accounting on the deterministic simulator: how
//! many protocol messages and how many log forces each protocol spends per
//! committed global transaction on the failure-free path. The paper's
//! shape: commit-before's commit path is the cheapest (submit + vote per
//! participant, no decision round), 2PC the most expensive (work + prepare
//! + decision + finished, plus the forced prepare record).

use crate::table::{f2, opt2, TextTable};
use amc_core::{FederationConfig, SimConfig, SimFederation};
use amc_net::NetStats;
use amc_obs::Histogram;
use amc_types::{GlobalVerdict, ObjectId, Operation, ProtocolKind, SimDuration, SiteId, Value};
use std::collections::BTreeMap;

/// One protocol's accounting.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Messages per committed transaction.
    pub msgs_per_txn: f64,
    /// Log forces per committed transaction (across all sites).
    pub forces_per_txn: f64,
    /// Durable log bytes per committed transaction.
    pub log_bytes_per_txn: f64,
    /// Virtual commit latency (ms).
    pub latency_ms: f64,
    /// Median virtual commit latency (ms).
    pub latency_p50_ms: Option<f64>,
    /// Tail (p99) virtual commit latency (ms).
    pub latency_p99_ms: Option<f64>,
    /// Full router accounting (all zero drops on this failure-free path).
    pub net: NetStats,
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Run `txns` disjoint two-site transfers per protocol on the simulator.
pub fn run(txns: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> = (0..txns as u64)
                .map(|i| (obj(s, i), Value::counter(100)))
                .collect();
            fed.load_site(SiteId::new(s), &data);
        }
        let managers = fed.managers();
        // Pre-run force baseline (bulk load may have forced nothing, but be
        // exact anyway).
        let forces_before: u64 = managers
            .values()
            .map(|m| m.handle().engine().log_stats().forces)
            .sum();
        let bytes_before: u64 = managers
            .values()
            .map(|m| m.handle().engine().log_stats().stable_bytes)
            .sum();
        // Disjoint transfers so no contention muddies the counts; stagger
        // starts so the simulator interleaves them.
        let programs: Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)> = (0..txns)
            .map(|i| {
                let program = BTreeMap::from([
                    (
                        SiteId::new(1),
                        vec![Operation::Increment {
                            obj: obj(1, i as u64),
                            delta: -5,
                        }],
                    ),
                    (
                        SiteId::new(2),
                        vec![Operation::Increment {
                            obj: obj(2, i as u64),
                            delta: 5,
                        }],
                    ),
                ]);
                (SimDuration::from_millis(i as u64 * 5), program)
            })
            .collect();
        let report = fed.run(programs);
        assert!(report.errors.is_empty(), "{protocol}: {:?}", report.errors);
        let committed = report
            .outcomes
            .values()
            .filter(|v| **v == GlobalVerdict::Commit)
            .count() as f64;
        assert!(committed > 0.0, "{protocol}: nothing committed");
        let forces_after: u64 = managers
            .values()
            .map(|m| m.handle().engine().log_stats().forces)
            .sum();
        let bytes_after: u64 = managers
            .values()
            .map(|m| m.handle().engine().log_stats().stable_bytes)
            .sum();
        let mean_latency_us: f64 = report
            .resolution
            .values()
            .map(|d| d.micros() as f64)
            .sum::<f64>()
            / committed;
        let mut latency_us = Histogram::new();
        for d in report.resolution.values() {
            latency_us.record(d.micros());
        }
        rows.push(Row {
            protocol,
            msgs_per_txn: report.sent as f64 / committed,
            forces_per_txn: (forces_after - forces_before) as f64 / committed,
            log_bytes_per_txn: (bytes_after - bytes_before) as f64 / committed,
            latency_ms: mean_latency_us / 1e3,
            latency_p50_ms: latency_us.p50().map(|us| us as f64 / 1e3),
            latency_p99_ms: latency_us.p99().map(|us| us as f64 / 1e3),
            net: report.net,
        });
    }
    rows
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E4 — failure-free commit-path complexity per committed transaction (2 sites)",
        &[
            "protocol",
            "msgs/txn",
            "log-forces/txn",
            "log-bytes/txn",
            "virtual latency ms",
            "lat p50 ms",
            "lat p99 ms",
            "net sent/drop/dup",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            f2(r.msgs_per_txn),
            f2(r.forces_per_txn),
            f2(r.log_bytes_per_txn),
            f2(r.latency_ms),
            opt2(r.latency_p50_ms),
            opt2(r.latency_p99_ms),
            format!("{}/{}/{}", r.net.sent, r.net.dropped, r.net.duplicated),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let get = |p: ProtocolKind| rows.iter().find(|r| r.protocol == p);
    let mut out = Vec::new();
    if let (Some(before), Some(after), Some(two_pc)) = (
        get(ProtocolKind::CommitBefore),
        get(ProtocolKind::CommitAfter),
        get(ProtocolKind::TwoPhaseCommit),
    ) {
        out.push(format!(
            "[{}] E4-1: commit-before sends fewest messages ({:.1} < {:.1} < {:.1})",
            if before.msgs_per_txn < after.msgs_per_txn && after.msgs_per_txn < two_pc.msgs_per_txn
            {
                "PASS"
            } else {
                "FAIL"
            },
            before.msgs_per_txn,
            after.msgs_per_txn,
            two_pc.msgs_per_txn,
        ));
        out.push(format!(
            "[{}] E4-2: 2PC pays the extra forced prepare records ({:.1} vs {:.1} forces/txn)",
            if two_pc.forces_per_txn > before.forces_per_txn {
                "PASS"
            } else {
                "FAIL"
            },
            two_pc.forces_per_txn,
            before.forces_per_txn,
        ));
        out.push(format!(
            "[{}] E4-3: commit-before has the lowest commit latency ({:.2} ms)",
            if before.latency_ms <= after.latency_ms && before.latency_ms <= two_pc.latency_ms {
                "PASS"
            } else {
                "FAIL"
            },
            before.latency_ms,
        ));
    }
    out
}
