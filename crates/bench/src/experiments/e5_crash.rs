//! **E5 — behaviour under site crashes** (§3.2/§3.3 failure handling,
//! [Ske 81] blocking discussion).
//!
//! A participant crashes at a swept point inside the protocol window and
//! restarts after a fixed outage. Measured per protocol: did the
//! transaction resolve, to which verdict, how long resolution took in
//! virtual time, and how many retransmissions the coordinator needed. The
//! shapes: commit-before resolves every case right after restart (markers
//! answer the inquiry); commit-after repairs commit decisions via `Redo`;
//! 2PC resolves too but its recovered participant sits *in doubt*, holding
//! page locks until the decision arrives (demonstrated separately by the
//! blocking probe in the integration suite).

use crate::table::{f2, TextTable};
use amc_core::{FederationConfig, SimConfig, SimFederation};
use amc_sim::FailurePlan;
use amc_types::{
    GlobalVerdict, ObjectId, Operation, ProtocolKind, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

/// One measured crash scenario.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Virtual time the crash struck (µs after start).
    pub crash_at_us: u64,
    /// Verdict (`None` = unresolved at horizon — a blocking failure).
    pub verdict: Option<GlobalVerdict>,
    /// Virtual resolution time (ms).
    pub resolution_ms: f64,
    /// Coordinator retransmissions needed.
    pub retransmissions: u64,
    /// Whether final state is atomic (both sites agree on all-or-nothing).
    pub atomic: bool,
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Sweep crash times for each protocol. `crash_times_us` are virtual
/// microseconds after transaction start; the outage lasts `outage_ms`.
pub fn run(crash_times_us: &[u64], outage_ms: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &crash_at in crash_times_us {
            let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
            cfg.failures = FailurePlan::none().outage(
                SiteId::new(2),
                SimTime(crash_at),
                SimDuration::from_millis(outage_ms),
            );
            cfg.horizon = SimDuration::from_millis(5_000);
            let fed = SimFederation::new(cfg);
            for s in 1..=2u32 {
                fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
            }
            let managers = fed.managers();
            let program = BTreeMap::from([
                (
                    SiteId::new(1),
                    vec![Operation::Increment { obj: obj(1, 0), delta: -30 }],
                ),
                (
                    SiteId::new(2),
                    vec![Operation::Increment { obj: obj(2, 0), delta: 30 }],
                ),
            ]);
            let report = fed.run(vec![(SimDuration::ZERO, program)]);
            let gtx = amc_types::GlobalTxnId::new(1);
            let verdict = report.outcomes.get(&gtx).copied();
            let dumps = SimFederation::dumps(&managers);
            let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
            let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
            let atomic = match verdict {
                Some(GlobalVerdict::Commit) => v1 == 70 && v2 == 130,
                Some(GlobalVerdict::Abort) => v1 == 100 && v2 == 100,
                None => false,
            };
            rows.push(Row {
                protocol,
                crash_at_us: crash_at,
                verdict,
                resolution_ms: report
                    .resolution
                    .get(&gtx)
                    .map_or(f64::NAN, |d| d.micros() as f64 / 1e3),
                retransmissions: report.retransmissions,
                atomic,
            });
        }
    }
    rows
}

/// Central-system crash sweep (extension: coordinator-side recovery with
/// a forced decision log and presumed abort).
pub fn run_central(crash_times_us: &[u64], outage_ms: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &crash_at in crash_times_us {
            let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
            cfg.failures = FailurePlan::none().outage(
                SiteId::CENTRAL,
                SimTime(crash_at),
                SimDuration::from_millis(outage_ms),
            );
            cfg.horizon = SimDuration::from_millis(5_000);
            let fed = SimFederation::new(cfg);
            for s in 1..=2u32 {
                fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
            }
            let managers = fed.managers();
            let program = BTreeMap::from([
                (
                    SiteId::new(1),
                    vec![Operation::Increment { obj: obj(1, 0), delta: -30 }],
                ),
                (
                    SiteId::new(2),
                    vec![Operation::Increment { obj: obj(2, 0), delta: 30 }],
                ),
            ]);
            let report = fed.run(vec![(SimDuration::ZERO, program)]);
            let gtx = amc_types::GlobalTxnId::new(1);
            let verdict = report.outcomes.get(&gtx).copied();
            let dumps = SimFederation::dumps(&managers);
            let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
            let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
            let atomic = match verdict {
                Some(GlobalVerdict::Commit) => v1 == 70 && v2 == 130,
                Some(GlobalVerdict::Abort) => v1 == 100 && v2 == 100,
                None => false,
            };
            rows.push(Row {
                protocol,
                crash_at_us: crash_at,
                verdict,
                resolution_ms: report
                    .resolution
                    .get(&gtx)
                    .map_or(f64::NAN, |d| d.micros() as f64 / 1e3),
                retransmissions: report.retransmissions,
                atomic,
            });
        }
    }
    rows
}

/// Render the central-crash report table.
pub fn central_table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E5b — central-system crash sweep (coordinator crashes mid-protocol; decision log + presumed abort)",
        &[
            "protocol",
            "crash at us",
            "verdict",
            "resolution ms",
            "retransmits",
            "atomic",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.crash_at_us.to_string(),
            r.verdict
                .map_or("UNRESOLVED".to_string(), |v| v.to_string()),
            if r.resolution_ms.is_nan() {
                "-".into()
            } else {
                f2(r.resolution_ms)
            },
            r.retransmissions.to_string(),
            if r.atomic { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Shape checks for the central sweep.
pub fn central_verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "[{}] E5b-1: every central-crash scenario resolves atomically",
        if rows.iter().all(|r| r.atomic) { "PASS" } else { "FAIL" },
    ));
    // Undecided-at-crash transactions must end aborted (presumed abort).
    let early = rows.iter().filter(|r| r.crash_at_us <= 200);
    let presumed = early
        .clone()
        .all(|r| r.verdict == Some(GlobalVerdict::Abort));
    out.push(format!(
        "[{}] E5b-2: crashes before any decision end in presumed abort",
        if presumed { "PASS" } else { "FAIL" },
    ));
    // Commit-before with local commits done before the crash still commits
    // when the decision was logged.
    let cb_late = rows.iter().any(|r| {
        r.protocol == ProtocolKind::CommitBefore
            && r.crash_at_us >= 1_500
            && r.verdict == Some(GlobalVerdict::Commit)
    });
    out.push(format!(
        "[{}] E5b-3: a logged commit-before decision survives the coordinator crash",
        if cb_late { "PASS" } else { "FAIL" },
    ));
    out
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E5 — participant crash sweep (site 2 crashes mid-protocol, restarts later)",
        &[
            "protocol",
            "crash at us",
            "verdict",
            "resolution ms",
            "retransmits",
            "atomic",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.crash_at_us.to_string(),
            r.verdict
                .map_or("UNRESOLVED".to_string(), |v| v.to_string()),
            if r.resolution_ms.is_nan() {
                "-".into()
            } else {
                f2(r.resolution_ms)
            },
            r.retransmissions.to_string(),
            if r.atomic { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let all_resolved = rows.iter().all(|r| r.verdict.is_some());
    out.push(format!(
        "[{}] E5-1: every crash scenario resolves before the horizon",
        if all_resolved { "PASS" } else { "FAIL" },
    ));
    let all_atomic = rows.iter().all(|r| r.atomic);
    out.push(format!(
        "[{}] E5-2: atomicity holds in every scenario (all-or-nothing at both sites)",
        if all_atomic { "PASS" } else { "FAIL" },
    ));
    let crashes_need_timer = rows
        .iter()
        .filter(|r| r.verdict.is_some())
        .any(|r| r.retransmissions > 0);
    out.push(format!(
        "[{}] E5-3: recovery is driven by coordinator retransmission (observed in at least one case)",
        if crashes_need_timer { "PASS" } else { "FAIL" },
    ));
    out
}
