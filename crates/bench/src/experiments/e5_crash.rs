//! **E5 — behaviour under site crashes** (§3.2/§3.3 failure handling,
//! [Ske 81] blocking discussion).
//!
//! A participant crashes at a swept point inside the protocol window and
//! restarts after a fixed outage. Measured per protocol: did the
//! transaction resolve, to which verdict, how long resolution took in
//! virtual time, and how many retransmissions the coordinator needed. The
//! shapes: commit-before resolves every case right after restart (markers
//! answer the inquiry); commit-after repairs commit decisions via `Redo`;
//! 2PC resolves too but its recovered participant sits *in doubt*, holding
//! page locks until the decision arrives (demonstrated separately by the
//! blocking probe in the integration suite).

use crate::table::{opt2, TextTable};
use amc_core::{FederationConfig, SimConfig, SimFederation};
use amc_net::NetStats;
use amc_sim::{generate_faults, FailurePlan, NemesisConfig};
use amc_types::{
    GlobalVerdict, ObjectId, Operation, ProtocolKind, SimDuration, SimTime, SiteId, Value,
};
use std::collections::BTreeMap;

/// One measured crash scenario.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Virtual time the crash struck (µs after start).
    pub crash_at_us: u64,
    /// Verdict (`None` = unresolved at horizon — a blocking failure).
    pub verdict: Option<GlobalVerdict>,
    /// Virtual resolution time (ms); `None` when unresolved.
    pub resolution_ms: Option<f64>,
    /// Longest §5 blocking window (ms): a 2PC participant sitting prepared
    /// with locks held until the decision arrived. `None` for the portable
    /// protocols — they never enter the in-doubt state.
    pub blocking_ms: Option<f64>,
    /// Coordinator retransmissions needed.
    pub retransmissions: u64,
    /// Whether final state is atomic (both sites agree on all-or-nothing).
    pub atomic: bool,
}

fn obj(site: u32, i: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + i)
}

/// Sweep crash times for each protocol. `crash_times_us` are virtual
/// microseconds after transaction start; the outage lasts `outage_ms`.
pub fn run(crash_times_us: &[u64], outage_ms: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &crash_at in crash_times_us {
            let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
            cfg.failures = FailurePlan::none().outage(
                SiteId::new(2),
                SimTime(crash_at),
                SimDuration::from_millis(outage_ms),
            );
            cfg.horizon = SimDuration::from_millis(5_000);
            let fed = SimFederation::new(cfg);
            for s in 1..=2u32 {
                fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
            }
            let managers = fed.managers();
            let program = BTreeMap::from([
                (
                    SiteId::new(1),
                    vec![Operation::Increment {
                        obj: obj(1, 0),
                        delta: -30,
                    }],
                ),
                (
                    SiteId::new(2),
                    vec![Operation::Increment {
                        obj: obj(2, 0),
                        delta: 30,
                    }],
                ),
            ]);
            let report = fed.run(vec![(SimDuration::ZERO, program)]);
            let gtx = amc_types::GlobalTxnId::new(1);
            let verdict = report.outcomes.get(&gtx).copied();
            let dumps = SimFederation::dumps(&managers);
            let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
            let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
            let atomic = match verdict {
                Some(GlobalVerdict::Commit) => v1 == 70 && v2 == 130,
                Some(GlobalVerdict::Abort) => v1 == 100 && v2 == 100,
                None => false,
            };
            rows.push(Row {
                protocol,
                crash_at_us: crash_at,
                verdict,
                resolution_ms: report.resolution.get(&gtx).map(|d| d.micros() as f64 / 1e3),
                blocking_ms: report
                    .events
                    .derive()
                    .blocking_window_us
                    .max()
                    .map(|us| us as f64 / 1e3),
                retransmissions: report.retransmissions,
                atomic,
            });
        }
    }
    rows
}

/// Central-system crash sweep (extension: coordinator-side recovery with
/// a forced decision log and presumed abort).
pub fn run_central(crash_times_us: &[u64], outage_ms: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &crash_at in crash_times_us {
            let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
            cfg.failures = FailurePlan::none().outage(
                SiteId::CENTRAL,
                SimTime(crash_at),
                SimDuration::from_millis(outage_ms),
            );
            cfg.horizon = SimDuration::from_millis(5_000);
            let fed = SimFederation::new(cfg);
            for s in 1..=2u32 {
                fed.load_site(SiteId::new(s), &[(obj(s, 0), Value::counter(100))]);
            }
            let managers = fed.managers();
            let program = BTreeMap::from([
                (
                    SiteId::new(1),
                    vec![Operation::Increment {
                        obj: obj(1, 0),
                        delta: -30,
                    }],
                ),
                (
                    SiteId::new(2),
                    vec![Operation::Increment {
                        obj: obj(2, 0),
                        delta: 30,
                    }],
                ),
            ]);
            let report = fed.run(vec![(SimDuration::ZERO, program)]);
            let gtx = amc_types::GlobalTxnId::new(1);
            let verdict = report.outcomes.get(&gtx).copied();
            let dumps = SimFederation::dumps(&managers);
            let v1 = dumps[&SiteId::new(1)][&obj(1, 0)].counter;
            let v2 = dumps[&SiteId::new(2)][&obj(2, 0)].counter;
            let atomic = match verdict {
                Some(GlobalVerdict::Commit) => v1 == 70 && v2 == 130,
                Some(GlobalVerdict::Abort) => v1 == 100 && v2 == 100,
                None => false,
            };
            rows.push(Row {
                protocol,
                crash_at_us: crash_at,
                verdict,
                resolution_ms: report.resolution.get(&gtx).map(|d| d.micros() as f64 / 1e3),
                blocking_ms: report
                    .events
                    .derive()
                    .blocking_window_us
                    .max()
                    .map(|us| us as f64 / 1e3),
                retransmissions: report.retransmissions,
                atomic,
            });
        }
    }
    rows
}

/// Render the central-crash report table.
pub fn central_table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E5b — central-system crash sweep (coordinator crashes mid-protocol; decision log + presumed abort)",
        &[
            "protocol",
            "crash at us",
            "verdict",
            "resolution ms",
            "block ms",
            "retransmits",
            "atomic",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.crash_at_us.to_string(),
            r.verdict
                .map_or("UNRESOLVED".to_string(), |v| v.to_string()),
            opt2(r.resolution_ms),
            opt2(r.blocking_ms),
            r.retransmissions.to_string(),
            if r.atomic { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Shape checks for the central sweep.
pub fn central_verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "[{}] E5b-1: every central-crash scenario resolves atomically",
        if rows.iter().all(|r| r.atomic) {
            "PASS"
        } else {
            "FAIL"
        },
    ));
    // Undecided-at-crash transactions must end aborted (presumed abort).
    let early = rows.iter().filter(|r| r.crash_at_us <= 200);
    let presumed = early
        .clone()
        .all(|r| r.verdict == Some(GlobalVerdict::Abort));
    out.push(format!(
        "[{}] E5b-2: crashes before any decision end in presumed abort",
        if presumed { "PASS" } else { "FAIL" },
    ));
    // Commit-before with local commits done before the crash still commits
    // when the decision was logged.
    let cb_late = rows.iter().any(|r| {
        r.protocol == ProtocolKind::CommitBefore
            && r.crash_at_us >= 1_500
            && r.verdict == Some(GlobalVerdict::Commit)
    });
    out.push(format!(
        "[{}] E5b-3: a logged commit-before decision survives the coordinator crash",
        if cb_late { "PASS" } else { "FAIL" },
    ));
    out
}

/// One nemesis chaos scenario (E5c): a seeded composed fault schedule
/// (crashes with torn WAL tails, directed partitions, loss bursts) against
/// five staggered disjoint transfers.
#[derive(Debug, Clone)]
pub struct NemesisRow {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Generator seed (reproduces the schedule and the run).
    pub seed: u64,
    /// Fault events in the generated schedule.
    pub fault_events: usize,
    /// Transfers that committed.
    pub committed: usize,
    /// Transfers that aborted.
    pub aborted: usize,
    /// Transfers unresolved at the horizon.
    pub unresolved: usize,
    /// Oracle violations (exactly-once per verdict + conservation).
    pub violations: usize,
    /// Coordinator retransmissions needed.
    pub retransmissions: u64,
    /// Full router accounting.
    pub net: NetStats,
    /// Median start→done virtual latency over resolved transfers (ms).
    pub resolve_p50_ms: Option<f64>,
    /// Tail (p99) start→done virtual latency (ms).
    pub resolve_p99_ms: Option<f64>,
    /// Longest §5 blocking window (2PC in-doubt participants) in ms.
    pub blocking_ms: Option<f64>,
}

/// Run the nemesis sweep: one generated schedule per `(protocol, seed)`.
pub fn run_nemesis(seeds: &[u64]) -> Vec<NemesisRow> {
    const OBJS: u64 = 5;
    const PER_OBJ: i64 = 100;
    let mut rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for &seed in seeds {
            // The five transfers are all submitted inside the first
            // ~100 ms of virtual time; squeeze the fault horizon onto
            // that span so the schedules land on live transactions
            // instead of an idle federation.
            let nemesis = NemesisConfig {
                fault_horizon: SimTime(120_000),
                max_hold: SimDuration::from_micros(60_000),
                ..NemesisConfig::default()
            };
            let plan = generate_faults(&nemesis, seed);
            let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
            cfg.seed = seed;
            cfg.faults = plan.clone();
            cfg.retransmit_every = SimDuration::from_millis(5);
            cfg.horizon = SimDuration::from_millis(30_000);
            let fed = SimFederation::new(cfg);
            for s in 1..=2u32 {
                let data: Vec<(ObjectId, Value)> = (0..OBJS)
                    .map(|i| (obj(s, i), Value::counter(PER_OBJ)))
                    .collect();
                fed.load_site(SiteId::new(s), &data);
            }
            let managers = fed.managers();
            let programs: Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)> = (0..OBJS)
                .map(|i| {
                    (
                        SimDuration::from_millis(i * 20),
                        BTreeMap::from([
                            (
                                SiteId::new(1),
                                vec![Operation::Increment {
                                    obj: obj(1, i),
                                    delta: -10,
                                }],
                            ),
                            (
                                SiteId::new(2),
                                vec![Operation::Increment {
                                    obj: obj(2, i),
                                    delta: 10,
                                }],
                            ),
                        ]),
                    )
                })
                .collect();
            let report = fed.run(programs);
            let dumps = SimFederation::dumps(&managers);
            let (mut committed, mut aborted, mut violations) = (0usize, 0usize, 0usize);
            let mut total = 0i64;
            for i in 0..OBJS {
                let gtx = amc_types::GlobalTxnId::new(i + 1);
                let v1 = dumps[&SiteId::new(1)][&obj(1, i)].counter;
                let v2 = dumps[&SiteId::new(2)][&obj(2, i)].counter;
                total += v1 + v2;
                match report.outcomes.get(&gtx) {
                    Some(GlobalVerdict::Commit) => {
                        committed += 1;
                        if (v1, v2) != (PER_OBJ - 10, PER_OBJ + 10) {
                            violations += 1;
                        }
                    }
                    Some(GlobalVerdict::Abort) => {
                        aborted += 1;
                        if (v1, v2) != (PER_OBJ, PER_OBJ) {
                            violations += 1;
                        }
                    }
                    None => {}
                }
            }
            if total != 2 * OBJS as i64 * PER_OBJ {
                violations += 1;
            }
            let derived = report.events.derive();
            rows.push(NemesisRow {
                protocol,
                seed,
                fault_events: plan.len(),
                committed,
                aborted,
                unresolved: report.unresolved.len(),
                violations,
                retransmissions: report.retransmissions,
                net: report.net,
                resolve_p50_ms: derived.resolve_latency_us.p50().map(|us| us as f64 / 1e3),
                resolve_p99_ms: derived.resolve_latency_us.p99().map(|us| us as f64 / 1e3),
                blocking_ms: derived.blocking_window_us.max().map(|us| us as f64 / 1e3),
            });
        }
    }
    rows
}

/// Render the nemesis sweep table.
pub fn nemesis_table(rows: &[NemesisRow]) -> TextTable {
    let mut t = TextTable::new(
        "E5c — nemesis chaos sweep (seeded composed crash/torn-tail/partition/loss-burst schedules)",
        &[
            "protocol",
            "seed",
            "faults",
            "commit",
            "abort",
            "unresolved",
            "violations",
            "retransmits",
            "res p50 ms",
            "res p99 ms",
            "block ms",
            "net sent/drop/part/dup",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.seed.to_string(),
            r.fault_events.to_string(),
            r.committed.to_string(),
            r.aborted.to_string(),
            r.unresolved.to_string(),
            r.violations.to_string(),
            r.retransmissions.to_string(),
            opt2(r.resolve_p50_ms),
            opt2(r.resolve_p99_ms),
            opt2(r.blocking_ms),
            format!(
                "{}/{}/{}/{}",
                r.net.sent, r.net.dropped, r.net.partitioned_drops, r.net.duplicated
            ),
        ]);
    }
    t
}

/// Shape checks for the nemesis sweep.
pub fn nemesis_verdicts(rows: &[NemesisRow]) -> Vec<String> {
    let mut out = Vec::new();
    let clean = rows.iter().all(|r| r.violations == 0);
    out.push(format!(
        "[{}] E5c-1: zero atomicity/conservation violations across the sweep",
        if clean { "PASS" } else { "FAIL" },
    ));
    let resolved = rows.iter().all(|r| r.unresolved == 0);
    out.push(format!(
        "[{}] E5c-2: every transfer resolves once the faults are over",
        if resolved { "PASS" } else { "FAIL" },
    ));
    let faults_bit = rows
        .iter()
        .any(|r| r.net.dropped > 0 || r.net.partitioned_drops > 0 || r.retransmissions > 0);
    out.push(format!(
        "[{}] E5c-3: the schedules actually perturbed the runs (drops/partitions/retransmits observed)",
        if faults_bit { "PASS" } else { "FAIL" },
    ));
    out
}

/// Render the report table.
pub fn table(rows: &[Row]) -> TextTable {
    let mut t = TextTable::new(
        "E5 — participant crash sweep (site 2 crashes mid-protocol, restarts later)",
        &[
            "protocol",
            "crash at us",
            "verdict",
            "resolution ms",
            "block ms",
            "retransmits",
            "atomic",
        ],
    );
    for r in rows {
        t.row(vec![
            r.protocol.label().to_string(),
            r.crash_at_us.to_string(),
            r.verdict
                .map_or("UNRESOLVED".to_string(), |v| v.to_string()),
            opt2(r.resolution_ms),
            opt2(r.blocking_ms),
            r.retransmissions.to_string(),
            if r.atomic { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Shape checks.
pub fn verdicts(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    let all_resolved = rows.iter().all(|r| r.verdict.is_some());
    out.push(format!(
        "[{}] E5-1: every crash scenario resolves before the horizon",
        if all_resolved { "PASS" } else { "FAIL" },
    ));
    let all_atomic = rows.iter().all(|r| r.atomic);
    out.push(format!(
        "[{}] E5-2: atomicity holds in every scenario (all-or-nothing at both sites)",
        if all_atomic { "PASS" } else { "FAIL" },
    ));
    let crashes_need_timer = rows
        .iter()
        .filter(|r| r.verdict.is_some())
        .any(|r| r.retransmissions > 0);
    out.push(format!(
        "[{}] E5-3: recovery is driven by coordinator retransmission (observed in at least one case)",
        if crashes_need_timer { "PASS" } else { "FAIL" },
    ));
    out
}
