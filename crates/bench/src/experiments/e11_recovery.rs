//! **E11 — durable recovery: restart cost vs log length, fsync cost vs
//! group-commit batching** (amc-wal + amc-engine durable backend).
//!
//! Two measurements on the on-disk WAL that backs `--wal-dir` sites:
//!
//! * **Recovery time vs log length.** Build logs of increasing length
//!   (one committed increment per transaction), then time a cold
//!   [`TwoPLEngine::open_durable`] — the same replay a killed site
//!   server performs at restart. The claimed shape: replay cost scales
//!   roughly linearly with the log (per-record cost stays in one narrow
//!   band across a 20× length spread, once the fixed open cost is
//!   amortized).
//!
//! * **Fsync cost vs group-commit batch size.** Fixed committer
//!   concurrency against one durable engine, sweeping the group-commit
//!   linger window. Longer lingers let one physical force (a real
//!   `fsync` here, not a modelled sleep) carry more commit
//!   acknowledgements. The claimed shape: commits-per-force grows with
//!   the linger — the batching knob, not the disk, decides how often
//!   the site pays for durability.

use crate::table::{opt2, TextTable};
use amc_engine::{LocalEngine, TplConfig, TwoPLEngine};
use amc_types::{ObjectId, Operation, SiteId, Value};
use amc_wal::GroupCommitConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const OBJECTS: u64 = 64;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amc-e11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn loaded_durable(cfg: TplConfig, path: &std::path::Path) -> TwoPLEngine {
    let (engine, _) = TwoPLEngine::open_durable(cfg, SiteId::new(1), path).expect("open durable");
    let data: Vec<(ObjectId, Value)> = (0..OBJECTS)
        .map(|i| (ObjectId::new(i), Value::counter(0)))
        .collect();
    engine.bulk_load(&data).expect("bulk load");
    engine
}

/// One committed single-increment transaction.
fn commit_one(engine: &TwoPLEngine, obj: u64, delta: i64) {
    let t = engine.begin().expect("begin");
    engine
        .execute(
            t,
            &Operation::Increment {
                obj: ObjectId::new(obj),
                delta,
            },
        )
        .expect("execute");
    engine.commit(t).expect("commit");
}

// --- part A: recovery time vs log length ----------------------------------

/// One measured recovery.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Committed transactions written before the simulated kill.
    pub txns: usize,
    /// WAL size on disk, bytes.
    pub wal_bytes: u64,
    /// Transactions the replay re-committed (includes the bulk load).
    pub committed: usize,
    /// Redo/undo operations applied during replay.
    pub replayed: u64,
    /// Cold-open recovery wall time, ms.
    pub recover_ms: f64,
    /// Replay cost normalized per 1000 committed transactions.
    pub ms_per_1k: Option<f64>,
}

/// Build a log of `n` committed transactions, then time recovering it.
fn run_recovery_cell(n: usize) -> RecoveryRow {
    let dir = scratch_dir(&format!("recover-{n}"));
    let path = dir.join("e11.wal");
    {
        let engine = loaded_durable(TplConfig::default(), &path);
        for i in 0..n {
            commit_one(&engine, i as u64 % OBJECTS, 1);
        }
    }
    let wal_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let (engine, report) =
        TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(1), &path).expect("recover");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow {
        txns: n,
        wal_bytes,
        committed: report.committed.len(),
        replayed: report.replayed,
        recover_ms,
        ms_per_1k: (n > 0).then(|| recover_ms * 1000.0 / n as f64),
    }
}

// --- part B: fsync cost vs group-commit batching --------------------------

/// One measured linger setting.
#[derive(Debug, Clone)]
pub struct FsyncRow {
    /// Group-commit linger window, microseconds.
    pub linger_us: u64,
    /// Committer threads.
    pub clients: usize,
    /// Committed transactions.
    pub commits: u64,
    /// Physical forces (real fsyncs) the workload cost.
    pub forces: u64,
    /// Commit acknowledgements amortized per force.
    pub commits_per_force: Option<f64>,
    /// Committed transactions per second.
    pub throughput: Option<f64>,
}

/// Run `txns` commits over `clients` threads at one linger setting.
fn run_fsync_cell(linger_us: u64, clients: usize, txns: usize) -> FsyncRow {
    let dir = scratch_dir(&format!("fsync-{linger_us}"));
    let path = dir.join("e11.wal");
    let cfg = TplConfig {
        group_commit: GroupCommitConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(linger_us),
            force_latency: Duration::ZERO,
        },
        ..TplConfig::default()
    };
    let engine = Arc::new(loaded_durable(cfg, &path));
    let base = engine.log_stats();
    let per_client = txns / clients;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                // Disjoint objects per thread: the measured contention is
                // on the log's force path, not on page locks.
                for i in 0..per_client {
                    commit_one(&engine, (c as u64 * 7 + i as u64) % OBJECTS, 1);
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.log_stats();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    let commits = (per_client * clients) as u64;
    let forces = stats.forces.saturating_sub(base.forces);
    FsyncRow {
        linger_us,
        clients,
        commits,
        forces,
        commits_per_force: (forces > 0).then(|| commits as f64 / forces as f64),
        throughput: (elapsed > 0.0).then(|| commits as f64 / elapsed),
    }
}

/// Run both sweeps.
pub fn run(
    lengths: &[usize],
    lingers_us: &[u64],
    fsync_txns: usize,
) -> (Vec<RecoveryRow>, Vec<FsyncRow>) {
    let recovery = lengths.iter().map(|&n| run_recovery_cell(n)).collect();
    let fsync = lingers_us
        .iter()
        .map(|&l| run_fsync_cell(l, 8, fsync_txns))
        .collect();
    (recovery, fsync)
}

/// Render part A.
pub fn recovery_table(rows: &[RecoveryRow]) -> TextTable {
    let mut t = TextTable::new(
        "E11a — restart recovery time vs durable log length",
        &[
            "txns",
            "wal KiB",
            "recommitted",
            "ops replayed",
            "recover ms",
            "ms / 1k txns",
        ],
    );
    for r in rows {
        t.row(vec![
            r.txns.to_string(),
            (r.wal_bytes / 1024).to_string(),
            r.committed.to_string(),
            r.replayed.to_string(),
            format!("{:.2}", r.recover_ms),
            opt2(r.ms_per_1k),
        ]);
    }
    t
}

/// Render part B.
pub fn fsync_table(rows: &[FsyncRow]) -> TextTable {
    let mut t = TextTable::new(
        "E11b — fsync cost vs group-commit linger (8 committer threads)",
        &[
            "linger µs",
            "clients",
            "commits",
            "forces",
            "commits/force",
            "txn/s",
        ],
    );
    for r in rows {
        t.row(vec![
            r.linger_us.to_string(),
            r.clients.to_string(),
            r.commits.to_string(),
            r.forces.to_string(),
            opt2(r.commits_per_force),
            opt2(r.throughput),
        ]);
    }
    t
}

/// The shape checks for this experiment.
pub fn verdicts(recovery: &[RecoveryRow], fsync: &[FsyncRow]) -> Vec<String> {
    let mut out = Vec::new();
    // E11-1: every recovery re-commits exactly its log: n transactions
    // plus the bulk load, nothing lost, nothing in doubt.
    let exact = recovery.iter().all(|r| r.committed == r.txns + 1);
    out.push(format!(
        "[{}] E11-1: every replay re-commits its full log (n + bulk load), across {} lengths",
        if exact { "PASS" } else { "FAIL" },
        recovery.len(),
    ));
    // E11-2: replay scales with the log — per-transaction cost stays in
    // one generous band (25×) across the length spread, i.e. no
    // super-linear blowup as logs grow.
    let per_1k: Vec<f64> = recovery.iter().filter_map(|r| r.ms_per_1k).collect();
    let linearish = match (
        per_1k.iter().cloned().reduce(f64::min),
        per_1k.iter().cloned().reduce(f64::max),
    ) {
        (Some(lo), Some(hi)) if lo > 0.0 => hi / lo <= 25.0,
        _ => false,
    };
    out.push(format!(
        "[{}] E11-2: per-transaction replay cost stays within a 25x band across log lengths",
        if linearish { "PASS" } else { "FAIL" },
    ));
    // E11-3: the linger knob amortizes fsync — the longest linger packs
    // at least as many commits per force as the zero linger, and some
    // setting actually batches (> 1 commit per force).
    let zero = fsync
        .iter()
        .find(|r| r.linger_us == 0)
        .and_then(|r| r.commits_per_force);
    let longest = fsync
        .iter()
        .max_by_key(|r| r.linger_us)
        .and_then(|r| r.commits_per_force);
    let amortizes = matches!((zero, longest), (Some(z), Some(l)) if l >= z)
        && fsync
            .iter()
            .any(|r| r.commits_per_force.is_some_and(|c| c > 1.0));
    out.push(format!(
        "[{}] E11-3: group-commit linger amortizes fsyncs (commits/force grows with the window)",
        if amortizes { "PASS" } else { "FAIL" },
    ));
    out
}
