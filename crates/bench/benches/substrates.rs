//! Micro-benchmarks for the substrate crates: storage, WAL, lock table,
//! local engines. Not tied to a paper figure — they guard the foundations
//! the protocol numbers stand on.

use amc_engine::{LocalEngine, OccEngine, TplConfig, TwoPLEngine};
use amc_lock::{LockTable, PageMode};
use amc_storage::PageStore;
use amc_types::{LocalTxnId, ObjectId, Operation, Value};
use amc_wal::{LogManager, LogRecord};
use criterion::{criterion_group, criterion_main, Criterion};

fn storage_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_storage");
    group.sample_size(20);
    group.bench_function("put_get_1k", |b| {
        b.iter_batched(
            || PageStore::new(64, 128),
            |mut store| {
                for i in 0..1_000u64 {
                    store
                        .put(ObjectId::new(i), Value::counter(i as i64))
                        .unwrap();
                }
                for i in 0..1_000u64 {
                    std::hint::black_box(store.get(ObjectId::new(i)).unwrap());
                }
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn wal_append_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_wal");
    group.sample_size(20);
    group.bench_function("append_force_1k", |b| {
        b.iter(|| {
            let mut log = LogManager::new();
            for i in 0..1_000u64 {
                log.append(&LogRecord::Update {
                    txn: LocalTxnId::new(i),
                    obj: ObjectId::new(i),
                    before: Some(Value::counter(0)),
                    after: Some(Value::counter(1)),
                });
                if i % 10 == 0 {
                    log.force();
                }
            }
            log.force();
            std::hint::black_box(log.stats())
        });
    });
    group.finish();
}

fn lock_table_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_locks");
    group.sample_size(20);
    group.bench_function("grant_release_1k", |b| {
        b.iter(|| {
            let mut t: LockTable<u32, u64, PageMode> = LockTable::new();
            for i in 0..1_000u64 {
                t.request(i, (i % 64) as u32, PageMode::Exclusive);
                t.release_all(i);
            }
            std::hint::black_box(t.stats())
        });
    });
    group.finish();
}

fn engine_commit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_engines");
    group.sample_size(20);
    group.bench_function("tpl_txn_commit", |b| {
        let engine = TwoPLEngine::new(TplConfig::default());
        engine
            .load((0..128).map(|i| (ObjectId::new(i), Value::counter(0))))
            .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let t = engine.begin().unwrap();
            engine
                .execute(
                    t,
                    &Operation::Increment {
                        obj: ObjectId::new(i % 128),
                        delta: 1,
                    },
                )
                .unwrap();
            engine.commit(t).unwrap();
            i += 1;
        });
    });
    group.bench_function("occ_txn_commit", |b| {
        let engine = OccEngine::with_defaults();
        engine
            .load((0..128).map(|i| (ObjectId::new(i), Value::counter(0))))
            .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let t = engine.begin().unwrap();
            engine
                .execute(
                    t,
                    &Operation::Increment {
                        obj: ObjectId::new(i % 128),
                        delta: 1,
                    },
                )
                .unwrap();
            engine.commit(t).unwrap();
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    storage_put_get,
    wal_append_force,
    lock_table_churn,
    engine_commit_paths
);
criterion_main!(benches);
