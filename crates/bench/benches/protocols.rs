//! Criterion benches over the protocol harness — one group per experiment
//! id so `cargo bench` regenerates timing series for E1/E2/E3/E4/E5/E7 at
//! reduced sizes. The `report` binary prints the full tables; these benches
//! track the same code paths against regressions.

use amc_bench::experiments::{e4_complexity, e5_crash};
use amc_bench::setup::{build_federation, program_batch};
use amc_mlt::ConflictPolicy;
use amc_types::ProtocolKind;
use amc_workload::{OpMix, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn spec(theta: f64, mix: OpMix, abort_prob: f64) -> WorkloadSpec {
    WorkloadSpec {
        sites: 3,
        objects_per_site: 64,
        zipf_theta: theta,
        ops_per_txn: 5,
        sites_per_txn: 2,
        mix,
        intended_abort_prob: abort_prob,
    }
}

/// E1: committed-batch wall time per protocol at low/high contention.
fn e1_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_concurrency");
    group.sample_size(10);
    for protocol in ProtocolKind::ALL {
        for theta in [0.0, 0.99] {
            group.bench_with_input(
                BenchmarkId::new(protocol.label(), format!("theta={theta}")),
                &theta,
                |b, &theta| {
                    let s = spec(
                        theta,
                        OpMix {
                            write: 0.0,
                            increment: 0.9,
                            reserve: 0.0,
                        },
                        0.0,
                    );
                    b.iter_batched(
                        || {
                            (
                                build_federation(protocol, ConflictPolicy::Semantic, &s),
                                program_batch(&s, 1, 40),
                            )
                        },
                        |(fed, batch)| fed.run_concurrent(batch, 4),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

/// E2: commit-after batch time with and without injected post-ready aborts.
fn e2_redo(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_redo");
    group.sample_size(10);
    for p in [0.0, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("commit-after", format!("p={p}")),
            &p,
            |b, &p| {
                let s = spec(0.0, OpMix::MIXED, 0.0);
                b.iter_batched(
                    || {
                        let fed = build_federation(
                            ProtocolKind::CommitAfter,
                            ConflictPolicy::Semantic,
                            &s,
                        );
                        for site in 1..=s.sites {
                            fed.manager(amc_types::SiteId::new(site))
                                .unwrap()
                                .inject_post_ready_aborts(p, 99);
                        }
                        (fed, program_batch(&s, 2, 40))
                    },
                    |(fed, batch)| fed.run_concurrent(batch, 4),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// E3: abort-heavy batch per portable protocol.
fn e3_abort_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_abort_cost");
    group.sample_size(10);
    for protocol in [ProtocolKind::CommitBefore, ProtocolKind::CommitAfter] {
        for rate in [0.0, 0.4] {
            group.bench_with_input(
                BenchmarkId::new(protocol.label(), format!("abort={rate}")),
                &rate,
                |b, &rate| {
                    let s = spec(0.0, OpMix::MIXED, rate);
                    b.iter_batched(
                        || {
                            (
                                build_federation(protocol, ConflictPolicy::Semantic, &s),
                                program_batch(&s, 3, 40),
                            )
                        },
                        |(fed, batch)| fed.run_concurrent(batch, 4),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

/// E4: failure-free simulated commit path (virtual protocol run, real time
/// measures simulator + engine cost per protocol).
fn e4_commit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_commit_path");
    group.sample_size(10);
    for protocol in ProtocolKind::ALL {
        group.bench_function(protocol.label(), |b| {
            b.iter(|| {
                let rows = e4_complexity::run(5);
                std::hint::black_box(rows)
            });
        });
    }
    group.finish();
}

/// E5: crash-recovery simulation per protocol.
fn e5_crash(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_crash");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| std::hint::black_box(e5_crash::run(&[100, 1_500], 20)));
    });
    group.finish();
}

/// E7: semantic vs read/write L1 conflicts on hot increments.
fn e7_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ablation");
    group.sample_size(10);
    for (name, policy) in [
        ("semantic", ConflictPolicy::Semantic),
        ("read-write", ConflictPolicy::ReadWriteOnly),
    ] {
        group.bench_function(name, |b| {
            let s = WorkloadSpec {
                sites: 2,
                objects_per_site: 16,
                zipf_theta: 0.99,
                ops_per_txn: 4,
                sites_per_txn: 2,
                mix: OpMix {
                    write: 0.0,
                    increment: 1.0,
                    reserve: 0.0,
                },
                intended_abort_prob: 0.0,
            };
            b.iter_batched(
                || {
                    (
                        build_federation(ProtocolKind::CommitBefore, policy, &s),
                        program_batch(&s, 4, 40),
                    )
                },
                |(fed, batch)| fed.run_concurrent(batch, 4),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e1_concurrency,
    e2_redo,
    e3_abort_cost,
    e4_commit_path,
    e5_crash,
    e7_ablation
);
criterion_main!(benches);
