//! The optimistic (backward-validation) engine.
//!
//! The second "existing system" flavour: no read locks, private write
//! buffers, and a validation phase at commit — the paper explicitly lists
//! "aborted ... by an optimistic scheduler since the transaction did not
//! survive the validation phase" among the §3.2 erroneous-abort sources.
//!
//! Crucially, this engine **cannot implement a ready state**: between
//! validation and commit there is nothing to pause (validation *is* the
//! commit decision), so it implements only [`LocalEngine`], never
//! [`PreparableEngine`](crate::api::PreparableEngine). A federation that
//! contains one of these cannot run classical 2PC — the motivating fact of
//! the whole paper.

use crate::api::{EngineStats, LocalEngine, RecoveryReport};
use amc_storage::{PageStore, StableStorage};
use amc_types::SiteId;
use amc_types::{
    AbortReason, AmcError, AmcResult, LocalRunState, LocalTxnId, ObjectId, OpResult, Operation,
    Value,
};
use amc_wal::{LogManager, LogRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};

/// Per-transaction private workspace.
#[derive(Debug, Default)]
struct OccTxn {
    /// Object -> version observed at first read.
    reads: HashMap<ObjectId, u64>,
    /// Buffered writes: `None` = delete.
    writes: BTreeMap<ObjectId, Option<Value>>,
}

struct Inner {
    store: PageStore,
    log: LogManager,
    /// Committed version per object (bumped on each committed write).
    versions: HashMap<ObjectId, u64>,
    version_clock: u64,
    active: HashMap<LocalTxnId, OccTxn>,
    terminated: HashMap<LocalTxnId, LocalRunState>,
    next_txn: u64,
    up: bool,
    stats: EngineStats,
}

/// An optimistic local database engine.
pub struct OccEngine {
    inner: Mutex<Inner>,
    /// The site this engine serves, carried in `SiteDown` errors so report
    /// tables attribute failures to the real site (0 = unattached).
    site: AtomicU32,
}

impl OccEngine {
    /// A fresh engine with `buckets` hash buckets and `pool_frames` buffer
    /// frames, serving `site`.
    pub fn new_at(buckets: u32, pool_frames: usize, site: SiteId) -> Self {
        let store = PageStore::open(
            StableStorage::new(buckets as usize + 8),
            buckets,
            pool_frames,
        )
        .expect("fresh store opens");
        OccEngine {
            inner: Mutex::new(Inner {
                store,
                log: LogManager::new(),
                versions: HashMap::new(),
                version_clock: 1,
                active: HashMap::new(),
                terminated: HashMap::new(),
                next_txn: 1,
                up: true,
                stats: EngineStats::default(),
            }),
            site: AtomicU32::new(site.raw()),
        }
    }

    /// A fresh engine not yet attributed to a site.
    pub fn new(buckets: u32, pool_frames: usize) -> Self {
        Self::new_at(buckets, pool_frames, SiteId::new(0))
    }

    /// Open an engine whose WAL is backed by the durable frame file at
    /// `path`, replaying whatever survived a previous process into a fresh
    /// store. OCC has no ready state, so the report's `in_doubt` is always
    /// empty: committed transactions are redone, everything else vanished
    /// with the private buffers.
    pub fn open_durable(
        buckets: u32,
        pool_frames: usize,
        site: SiteId,
        path: impl AsRef<std::path::Path>,
    ) -> AmcResult<(Self, RecoveryReport)> {
        let log = LogManager::open_durable(path)?;
        let store = PageStore::open(
            StableStorage::new(buckets as usize + 8),
            buckets,
            pool_frames,
        )?;
        let engine = OccEngine {
            inner: Mutex::new(Inner {
                store,
                log,
                versions: HashMap::new(),
                version_clock: 1,
                active: HashMap::new(),
                terminated: HashMap::new(),
                next_txn: 1,
                // Down until recover() replays the log and re-opens the door.
                up: false,
                stats: EngineStats::default(),
            }),
            site: AtomicU32::new(site.raw()),
        };
        let report = engine.recover()?;
        Ok((engine, report))
    }

    /// Default sizing.
    pub fn with_defaults() -> Self {
        Self::new(64, 128)
    }

    /// Default sizing, serving `site`.
    pub fn with_defaults_at(site: SiteId) -> Self {
        Self::new_at(64, 128, site)
    }

    fn site_down(&self) -> AmcError {
        AmcError::SiteDown(SiteId::new(self.site.load(Ordering::Relaxed)))
    }

    /// Pre-load committed state (test/workload setup). When the WAL is
    /// durable the load is journalled as one committed transaction, so the
    /// baseline survives a process restart (the store itself is volatile
    /// across processes — only the log file persists).
    pub fn load(&self, data: impl IntoIterator<Item = (ObjectId, Value)>) -> AmcResult<()> {
        let mut inner = self.inner.lock();
        if !inner.log.is_durable() {
            for (o, v) in data {
                inner.store.put(o, v)?;
            }
            return inner.store.flush();
        }
        let txn = LocalTxnId::new(inner.next_txn);
        inner.next_txn += 1;
        inner.log.append(&LogRecord::Begin { txn });
        for (o, v) in data {
            let before = inner.store.get(o)?;
            inner.store.put(o, v)?;
            inner.log.append(&LogRecord::Update {
                txn,
                obj: o,
                before,
                after: Some(v),
            });
        }
        inner.store.flush()?;
        inner.log.append_forced(&LogRecord::Commit { txn });
        Ok(())
    }

    /// The *committed* value an active transaction would observe, tracking
    /// the read in its read set.
    fn tracked_read(inner: &mut Inner, txn: LocalTxnId, obj: ObjectId) -> AmcResult<Option<Value>> {
        let version = inner.versions.get(&obj).copied().unwrap_or(0);
        let value = inner.store.get(obj)?;
        let ctx = inner.active.get_mut(&txn).expect("caller verified");
        ctx.reads.entry(obj).or_insert(version);
        Ok(value)
    }

    /// Shared crash path: `partial` carries `(keep_frames, torn)` when the
    /// crash strikes mid-`force()`, persisting part of the log tail.
    fn crash_impl(&self, partial: Option<(u32, bool)>) {
        let mut inner = self.inner.lock();
        inner.up = false;
        inner.store.crash();
        match partial {
            Some((keep, torn)) => inner.log.crash_during_force(keep as usize, torn),
            None => inner.log.crash(),
        }
        inner.versions.clear();
        let victims: Vec<LocalTxnId> = inner.active.keys().copied().collect();
        for t in victims {
            inner.active.remove(&t);
            inner.terminated.insert(t, LocalRunState::Aborted);
            inner.stats.aborts += 1;
            inner.stats.erroneous_aborts += 1;
        }
    }

    /// The value as seen through the transaction's private buffer.
    fn buffered_get(inner: &mut Inner, txn: LocalTxnId, obj: ObjectId) -> AmcResult<Option<Value>> {
        if let Some(buffered) = inner
            .active
            .get(&txn)
            .expect("caller verified")
            .writes
            .get(&obj)
        {
            return Ok(*buffered);
        }
        Self::tracked_read(inner, txn, obj)
    }
}

impl LocalEngine for OccEngine {
    fn begin(&self) -> AmcResult<LocalTxnId> {
        let mut inner = self.inner.lock();
        if !inner.up {
            return Err(self.site_down());
        }
        let txn = LocalTxnId::new(inner.next_txn);
        inner.next_txn += 1;
        inner.active.insert(txn, OccTxn::default());
        inner.stats.begins += 1;
        Ok(txn)
    }

    fn execute(&self, txn: LocalTxnId, op: &Operation) -> AmcResult<OpResult> {
        let mut inner = self.inner.lock();
        if !inner.up {
            return Err(self.site_down());
        }
        if !inner.active.contains_key(&txn) {
            return Err(AmcError::UnknownTxn);
        }
        inner.stats.ops += 1;
        match *op {
            Operation::Read { obj } => {
                let v = Self::buffered_get(&mut inner, txn, obj)?.ok_or(AmcError::NotFound(obj))?;
                Ok(OpResult::Value(v))
            }
            Operation::Write { obj, value } => {
                if Self::buffered_get(&mut inner, txn, obj)?.is_none() {
                    return Err(AmcError::NotFound(obj));
                }
                let ctx = inner.active.get_mut(&txn).expect("checked");
                ctx.writes.insert(obj, Some(value));
                Ok(OpResult::Done)
            }
            Operation::Increment { obj, delta } => {
                let cur =
                    Self::buffered_get(&mut inner, txn, obj)?.ok_or(AmcError::NotFound(obj))?;
                let ctx = inner.active.get_mut(&txn).expect("checked");
                ctx.writes.insert(obj, Some(cur.incremented(delta)));
                Ok(OpResult::Done)
            }
            Operation::Insert { obj, value } => {
                if Self::buffered_get(&mut inner, txn, obj)?.is_some() {
                    return Err(AmcError::AlreadyExists(obj));
                }
                let ctx = inner.active.get_mut(&txn).expect("checked");
                ctx.writes.insert(obj, Some(value));
                Ok(OpResult::Done)
            }
            Operation::Delete { obj } => {
                if Self::buffered_get(&mut inner, txn, obj)?.is_none() {
                    return Err(AmcError::NotFound(obj));
                }
                let ctx = inner.active.get_mut(&txn).expect("checked");
                ctx.writes.insert(obj, None);
                Ok(OpResult::Done)
            }
            Operation::Reserve { obj, amount } => {
                let cur =
                    Self::buffered_get(&mut inner, txn, obj)?.ok_or(AmcError::NotFound(obj))?;
                if cur.counter < amount as i64 {
                    return Err(AmcError::InsufficientStock {
                        obj,
                        have: cur.counter,
                        want: amount,
                    });
                }
                let ctx = inner.active.get_mut(&txn).expect("checked");
                ctx.writes
                    .insert(obj, Some(cur.incremented(-(amount as i64))));
                Ok(OpResult::Done)
            }
        }
    }

    fn commit(&self, txn: LocalTxnId) -> AmcResult<()> {
        let mut inner = self.inner.lock();
        if !inner.up {
            return Err(self.site_down());
        }
        let Some(ctx) = inner.active.remove(&txn) else {
            return Err(AmcError::UnknownTxn);
        };
        // Backward validation: every read version must still be current.
        for (obj, seen) in &ctx.reads {
            let current = inner.versions.get(obj).copied().unwrap_or(0);
            if current != *seen {
                inner.terminated.insert(txn, LocalRunState::Aborted);
                inner.stats.aborts += 1;
                inner.stats.erroneous_aborts += 1;
                return Err(AmcError::Aborted(AbortReason::ValidationFailed));
            }
        }
        // Apply + log the write set atomically (we hold the mutex).
        if !ctx.writes.is_empty() {
            inner.log.append(&LogRecord::Begin { txn });
            for (&obj, &after) in &ctx.writes {
                let before = inner.store.get(obj)?;
                match after {
                    Some(v) => {
                        inner.store.put(obj, v)?;
                    }
                    None => {
                        inner.store.remove(obj)?;
                    }
                }
                inner.log.append(&LogRecord::Update {
                    txn,
                    obj,
                    before,
                    after,
                });
                let tick = inner.version_clock;
                inner.version_clock += 1;
                inner.versions.insert(obj, tick);
            }
            inner.log.append_forced(&LogRecord::Commit { txn });
        }
        inner.terminated.insert(txn, LocalRunState::Committed);
        inner.stats.commits += 1;
        Ok(())
    }

    fn abort(&self, txn: LocalTxnId, reason: AbortReason) -> AmcResult<()> {
        let mut inner = self.inner.lock();
        if !inner.up {
            return Err(self.site_down());
        }
        if inner.active.remove(&txn).is_none() {
            return Err(AmcError::UnknownTxn);
        }
        inner.terminated.insert(txn, LocalRunState::Aborted);
        inner.stats.aborts += 1;
        if reason.is_erroneous() {
            inner.stats.erroneous_aborts += 1;
        }
        Ok(())
    }

    fn state_of(&self, txn: LocalTxnId) -> Option<LocalRunState> {
        let inner = self.inner.lock();
        if inner.active.contains_key(&txn) {
            Some(LocalRunState::Running)
        } else {
            inner.terminated.get(&txn).copied()
        }
    }

    fn is_up(&self) -> bool {
        self.inner.lock().up
    }

    fn crash(&self) {
        self.crash_impl(None);
    }

    fn crash_partial(&self, keep_frames: u32, torn_frame: bool) {
        self.crash_impl(Some((keep_frames, torn_frame)));
    }

    fn recover(&self) -> AmcResult<RecoveryReport> {
        let mut inner = self.inner.lock();
        if inner.up {
            return Err(AmcError::InvalidState("recover on a running site".into()));
        }
        let Inner { store, log, .. } = &mut *inner;
        let outcome = amc_wal::recover(log, |obj, img| {
            match img {
                Some(v) => {
                    store.put(obj, v)?;
                }
                None => {
                    store.remove(obj)?;
                }
            }
            Ok(())
        })?;
        inner.store.flush()?;
        // When the table was rebuilt from a durable log, fresh local ids
        // must not collide with replayed ones.
        let max_seen = inner
            .log
            .stable_records()?
            .iter()
            .filter_map(|(_, r)| r.txn())
            .map(|t| t.raw())
            .max()
            .unwrap_or(0);
        inner.next_txn = inner.next_txn.max(max_seen + 1);
        let active: Vec<LocalTxnId> = Vec::new();
        inner.log.append_forced(&LogRecord::Checkpoint { active });
        inner.up = true;
        for t in &outcome.committed {
            inner.terminated.insert(*t, LocalRunState::Committed);
        }
        for t in &outcome.aborted {
            inner.terminated.insert(*t, LocalRunState::Aborted);
        }
        for t in &outcome.losers {
            inner.terminated.insert(*t, LocalRunState::Aborted);
        }
        Ok(RecoveryReport {
            committed: outcome.committed.iter().copied().collect(),
            rolled_back: outcome.losers.iter().copied().collect(),
            in_doubt: Vec::new(),
            replayed: outcome.redo_applied + outcome.undo_applied,
            torn_tail: outcome.torn_tail_truncated,
        })
    }

    fn kind(&self) -> &'static str {
        "occ"
    }

    fn stats(&self) -> EngineStats {
        self.inner.lock().stats
    }

    fn dump(&self) -> AmcResult<BTreeMap<ObjectId, Value>> {
        let mut inner = self.inner.lock();
        Ok(inner.store.scan()?.into_iter().collect())
    }

    fn bulk_load(&self, data: &[(ObjectId, Value)]) -> AmcResult<()> {
        self.load(data.iter().copied())
    }

    fn log_stats(&self) -> amc_wal::LogStats {
        self.inner.lock().log.stats()
    }

    fn attach_obs(&self, sink: amc_obs::ObsSink, site: amc_types::SiteId) {
        self.inner.lock().log.attach_obs(sink, site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Operation as Op;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }

    fn engine_with(data: &[(u64, i64)]) -> OccEngine {
        let e = OccEngine::with_defaults();
        e.load(data.iter().map(|&(o, val)| (obj(o), v(val))))
            .unwrap();
        e
    }

    #[test]
    fn basic_roundtrip() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        assert_eq!(
            e.execute(t, &Op::Read { obj: obj(1) }).unwrap(),
            OpResult::Value(v(10))
        );
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(20),
            },
        )
        .unwrap();
        // Reads-own-writes through the buffer.
        assert_eq!(
            e.execute(t, &Op::Read { obj: obj(1) }).unwrap(),
            OpResult::Value(v(20))
        );
        // Not visible to others before commit.
        let t2 = e.begin().unwrap();
        assert_eq!(
            e.execute(t2, &Op::Read { obj: obj(1) }).unwrap(),
            OpResult::Value(v(10))
        );
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(20)));
    }

    #[test]
    fn stale_reader_fails_validation() {
        let e = engine_with(&[(1, 10)]);
        let reader = e.begin().unwrap();
        e.execute(reader, &Op::Read { obj: obj(1) }).unwrap();
        // A writer slips in and commits.
        let writer = e.begin().unwrap();
        e.execute(
            writer,
            &Op::Write {
                obj: obj(1),
                value: v(11),
            },
        )
        .unwrap();
        e.commit(writer).unwrap();
        // The reader also wrote something, so its serialization point
        // matters; validation must kill it.
        e.execute(
            reader,
            &Op::Write {
                obj: obj(2),
                value: v(1),
            },
        )
        .unwrap_err(); // obj 2 does not exist -> NotFound, fine
        e.execute(
            reader,
            &Op::Increment {
                obj: obj(1),
                delta: 1,
            },
        )
        .unwrap();
        let err = e.commit(reader).unwrap_err();
        assert_eq!(err, AmcError::Aborted(AbortReason::ValidationFailed));
        assert_eq!(e.state_of(reader), Some(LocalRunState::Aborted));
        // The blind writer's value stands.
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(11)));
        assert_eq!(e.stats().erroneous_aborts, 1);
    }

    #[test]
    fn non_conflicting_transactions_both_commit() {
        let e = engine_with(&[(1, 10), (2, 20)]);
        let a = e.begin().unwrap();
        let b = e.begin().unwrap();
        e.execute(
            a,
            &Op::Increment {
                obj: obj(1),
                delta: 1,
            },
        )
        .unwrap();
        e.execute(
            b,
            &Op::Increment {
                obj: obj(2),
                delta: 1,
            },
        )
        .unwrap();
        e.commit(a).unwrap();
        e.commit(b).unwrap();
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(11)));
        assert_eq!(d.get(&obj(2)), Some(&v(21)));
    }

    #[test]
    fn concurrent_increments_conflict_under_occ() {
        // Unlike the 2PL engine + L1 increment locks, plain OCC treats an
        // increment as read-modify-write: one of two concurrent increments
        // must fail validation.
        let e = engine_with(&[(1, 0)]);
        let a = e.begin().unwrap();
        let b = e.begin().unwrap();
        e.execute(
            a,
            &Op::Increment {
                obj: obj(1),
                delta: 1,
            },
        )
        .unwrap();
        e.execute(
            b,
            &Op::Increment {
                obj: obj(1),
                delta: 1,
            },
        )
        .unwrap();
        e.commit(a).unwrap();
        assert_eq!(
            e.commit(b).unwrap_err(),
            AmcError::Aborted(AbortReason::ValidationFailed)
        );
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(1)));
    }

    #[test]
    fn abort_discards_buffers() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(99),
            },
        )
        .unwrap();
        e.abort(t, AbortReason::Intended).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn committed_state_survives_crash() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        e.crash();
        let report = e.recover().unwrap();
        assert!(report.committed.contains(&t));
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(42)));
    }

    #[test]
    fn active_transactions_die_on_crash() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.crash();
        e.recover().unwrap();
        assert_eq!(e.state_of(t), Some(LocalRunState::Aborted));
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn read_only_transaction_never_validates_writes() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(t, &Op::Read { obj: obj(1) }).unwrap();
        // Another writer commits.
        let w = e.begin().unwrap();
        e.execute(
            w,
            &Op::Write {
                obj: obj(1),
                value: v(11),
            },
        )
        .unwrap();
        e.commit(w).unwrap();
        // Backward validation kills the stale reader too (its read is part
        // of its serialization footprint).
        assert!(e.commit(t).is_err());
    }

    #[test]
    fn reopen_from_durable_log_recovers_committed_state() {
        let dir = std::env::temp_dir().join(format!("amc-occ-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.wal");
        let _ = std::fs::remove_file(&path);

        let t_committed = {
            let (e, _) = OccEngine::open_durable(64, 128, SiteId::new(2), &path).unwrap();
            e.load([(obj(1), v(10)), (obj(2), v(20))]).unwrap();
            let t = e.begin().unwrap();
            e.execute(
                t,
                &Op::Increment {
                    obj: obj(1),
                    delta: 5,
                },
            )
            .unwrap();
            e.commit(t).unwrap();
            // A second transaction buffers a write but never commits: its
            // private workspace dies with the process.
            let dangling = e.begin().unwrap();
            e.execute(
                dangling,
                &Op::Write {
                    obj: obj(2),
                    value: v(99),
                },
            )
            .unwrap();
            t
        };

        let (e, report) = OccEngine::open_durable(64, 128, SiteId::new(2), &path).unwrap();
        assert!(report.committed.contains(&t_committed), "{report:?}");
        assert!(report.in_doubt.is_empty(), "OCC has no ready state");
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(15)));
        assert_eq!(d.get(&obj(2)), Some(&v(20)), "uncommitted buffer is gone");
        let fresh = e.begin().unwrap();
        assert!(fresh.raw() > t_committed.raw(), "no local-id collision");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delete_and_insert_via_buffer() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(t, &Op::Delete { obj: obj(1) }).unwrap();
        assert!(matches!(
            e.execute(t, &Op::Read { obj: obj(1) }),
            Err(AmcError::NotFound(_))
        ));
        e.execute(
            t,
            &Op::Insert {
                obj: obj(1),
                value: v(5),
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(5)));
    }
}
