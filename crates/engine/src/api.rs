//! Engine traits and shared reporting types.
//!
//! [`LocalEngine`] is the paper's integration contract: "we only demand each
//! of the existing systems to have a transaction management ... the
//! corresponding interface has to provide calls for *begin*, *abort* and
//! *commit* of a transaction" (§2). Everything the commit protocols of §3.2
//! and §3.3 do must go through this trait.
//!
//! [`PreparableEngine`] adds the ready state of §3.1. Real integrations do
//! not have it — it exists here so the 2PC baseline can be measured against
//! the two portable protocols.

use amc_obs::ObsSink;
use amc_types::{
    AbortReason, AmcResult, LocalRunState, LocalTxnId, ObjectId, OpResult, Operation, SiteId, Value,
};
use amc_wal::LogStats;
use std::collections::BTreeMap;

/// Counters every engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted for any reason.
    pub aborts: u64,
    /// Aborts initiated by the engine itself (deadlock, timeout,
    /// validation, crash) — the paper's *erroneous* aborts.
    pub erroneous_aborts: u64,
    /// Operations executed.
    pub ops: u64,
    /// Lock waits observed (2PL engines only).
    pub lock_waits: u64,
}

/// What restart recovery did (surfaced to the federation for E5/E8).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit survived.
    pub committed: Vec<LocalTxnId>,
    /// Transactions rolled back (losers at the crash).
    pub rolled_back: Vec<LocalTxnId>,
    /// 2PC in-doubt transactions awaiting a coordinator decision.
    pub in_doubt: Vec<LocalTxnId>,
    /// WAL records applied during replay (redo + undo applications).
    pub replayed: u64,
    /// Whether a torn final WAL frame was truncated away at open.
    pub torn_tail: bool,
}

/// The unmodifiable local transaction manager interface (§2).
///
/// Implementations are `Sync`: the central system drives many global
/// transactions against the same engine concurrently.
pub trait LocalEngine: Send + Sync {
    /// Start a new local transaction.
    fn begin(&self) -> AmcResult<LocalTxnId>;

    /// Execute one operation inside `txn`.
    ///
    /// On an engine-initiated abort (deadlock victim, timeout, validation
    /// failure, crash) the transaction is already rolled back when the
    /// error surfaces; the caller must not call [`LocalEngine::abort`]
    /// again.
    fn execute(&self, txn: LocalTxnId, op: &Operation) -> AmcResult<OpResult>;

    /// Commit `txn`. For an unmodified engine this transition is **atomic**
    /// (§3.1): there is no observable intermediate state and no way to
    /// interpose a global decision.
    fn commit(&self, txn: LocalTxnId) -> AmcResult<()>;

    /// Abort `txn`, rolling back its effects.
    fn abort(&self, txn: LocalTxnId, reason: AbortReason) -> AmcResult<()>;

    /// Observed state of a transaction (`None` once forgotten).
    fn state_of(&self, txn: LocalTxnId) -> Option<LocalRunState>;

    /// Whether the site is up.
    fn is_up(&self) -> bool;

    /// Simulate a site crash: volatile state (buffer pool, log tail,
    /// active transactions, lock table) is lost.
    fn crash(&self);

    /// Simulate a crash **during a log force**: `keep_frames` frames of the
    /// volatile tail become durable and, when `torn_frame` is set, the next
    /// frame lands checksum-corrupt for restart recovery to truncate.
    ///
    /// The default falls back to a clean [`LocalEngine::crash`] (no tail
    /// survives) so engines without a partial-force model stay correct.
    fn crash_partial(&self, keep_frames: u32, torn_frame: bool) {
        let _ = (keep_frames, torn_frame);
        self.crash();
    }

    /// Run restart recovery after a crash; the engine accepts work again
    /// afterwards.
    fn recover(&self) -> AmcResult<RecoveryReport>;

    /// Engine flavour, for reports ("2pl", "occ").
    fn kind(&self) -> &'static str;

    /// Counters.
    fn stats(&self) -> EngineStats;

    /// Administrative snapshot of **committed** state. Only meaningful when
    /// no transaction is in flight (tests and the verification oracle call
    /// it at quiescence).
    fn dump(&self) -> AmcResult<BTreeMap<ObjectId, Value>>;

    /// Bulk-load committed initial data (setup path, outside any
    /// transaction). Flushes to stable storage.
    fn bulk_load(&self, data: &[(ObjectId, Value)]) -> AmcResult<()>;

    /// Write-ahead-log counters (experiment E4).
    fn log_stats(&self) -> LogStats;

    /// Attach an observability sink (events attributed to `site`). The
    /// default discards the sink — an *unmodifiable* existing system owes
    /// us no telemetry; the in-tree engines forward it to their WAL so
    /// forces show up in per-transaction timelines.
    fn attach_obs(&self, sink: ObsSink, site: SiteId) {
        let _ = (sink, site);
    }
}

/// The *modified* engine interface classical 2PC needs (§3.1): a ready
/// state reachable before commit, durable across crashes.
pub trait PreparableEngine: LocalEngine {
    /// Drive `txn` to the ready state: all its changes are on stable
    /// storage and the transaction can follow either global decision, even
    /// across a crash.
    fn prepare(&self, txn: LocalTxnId) -> AmcResult<()>;

    /// The 1PC fast-path entry point: execute `ops` inside `txn` and drive
    /// it to the ready state in one call, so the op records and the
    /// prepare record land in the **same group-commit batch** — one log
    /// force covers both, and the reply to the combined dispatch doubles
    /// as the site's vote.
    ///
    /// The durable outcome is identical to `execute`* + `prepare`: restart
    /// recovery resurrects a piggybacked prepare exactly like a classic
    /// one. The default does exactly that sequence — engines whose
    /// `execute` appends its log records unforced and whose `prepare`
    /// forces the tail already get the single combined force for free.
    ///
    /// On an engine-initiated abort mid-ops the transaction is already
    /// rolled back when the error surfaces (same contract as
    /// [`LocalEngine::execute`]); the prepare record is never written.
    fn apply_and_prepare(&self, txn: LocalTxnId, ops: &[Operation]) -> AmcResult<Vec<OpResult>> {
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            results.push(self.execute(txn, op)?);
        }
        self.prepare(txn)?;
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.begins, 0);
        assert_eq!(s.commits + s.aborts + s.ops, 0);
    }

    #[test]
    fn recovery_report_default_is_empty() {
        let r = RecoveryReport::default();
        assert!(r.committed.is_empty() && r.rolled_back.is_empty() && r.in_doubt.is_empty());
    }
}
