//! # amc-engine
//!
//! The "existing database systems" of the paper's Fig. 1, built from
//! scratch and then deliberately **sealed**: the federation only ever talks
//! to them through [`api::LocalEngine`] — `begin`, `execute`, `commit`,
//! `abort` — because that is all a pre-existing transaction manager offers
//! (§2). There is *no* ready state on that trait; the extended
//! [`api::PreparableEngine`] models the "modified" engine classical 2PC
//! would require (§3.1), and only the 2PC baseline is allowed to use it.
//!
//! Two heterogeneous implementations:
//!
//! * [`tpl::TwoPLEngine`] — strict two-phase locking over page locks, WAL
//!   with value logging, restart recovery. Also implements
//!   `PreparableEngine` so the 2PC baseline has something to run on.
//! * [`occ::OccEngine`] — optimistic (backward validation) scheduler: no
//!   read locks, private write buffers, validation at commit. It does
//!   **not** implement `PreparableEngine`, which faithfully models the
//!   paper's observation that a federation containing such an engine cannot
//!   run classical 2PC at all.
//!
//! Both engines abort transactions on their own initiative — deadlock
//! victims, lock timeouts, failed validation, crashes — which is precisely
//! the "erroneous abort after ready" hazard that drives §3.2's redo
//! protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod occ;
pub mod tpl;

pub use api::{EngineStats, LocalEngine, PreparableEngine, RecoveryReport};
pub use occ::OccEngine;
pub use tpl::{TplConfig, TwoPLEngine};
