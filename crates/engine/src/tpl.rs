//! The strict two-phase-locking engine.
//!
//! A faithful miniature of the classical architecture the paper assumes for
//! "existing" systems: page-grained strict 2PL, write-ahead value logging,
//! no-force/steal buffering, restart recovery. Engine-initiated aborts
//! (deadlock victim, lock timeout, crash) surface as
//! `AmcError::Aborted(reason)` with an *erroneous* reason — the §3.2 hazard.
//!
//! Locking granule: the **bucket-head page** of the touched object (the
//! whole overflow chain shares its head's lock), which is what makes the
//! Fig. 8 scenario real — two different objects on the same page conflict at
//! L0 even when their L1 operations commute.
//!
//! Synchronization: the engine has **no** single state mutex. Each component
//! carries its own — the transaction table (`TxnTable`), the buffer pool /
//! page store, the WAL (behind [`GroupCommitter`]), and the striped page
//! lock manager — so lock waits, modelled op service time, and commit-record
//! forces no longer serialize unrelated transactions (E9 measures exactly
//! this). Internal lock order: `txns` → `store` → `wal`; page locks are
//! acquired while holding none of the three. Strict 2PL is what keeps the
//! out-of-mutex WAL appends sound: conflicting updates are ordered by their
//! page lock, which is held past the append, so the log orders every
//! conflicting pair exactly as the store applied them.

use crate::api::{EngineStats, LocalEngine, PreparableEngine, RecoveryReport};
use amc_lock::{blocking::AcquireResult, BlockingLockManager, PageMode};
use amc_storage::{PageStore, StableStorage};
use amc_types::{
    AbortReason, AmcError, AmcResult, LocalRunState, LocalTxnId, ObjectId, OpResult, Operation,
    PageId, SiteId, Value,
};
use amc_wal::{GroupCommitConfig, GroupCommitter, LogManager, LogRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Construction parameters for a [`TwoPLEngine`].
#[derive(Debug, Clone)]
pub struct TplConfig {
    /// Hash buckets in the page store.
    pub buckets: u32,
    /// Buffer pool frames.
    pub pool_frames: usize,
    /// How long a lock request may wait before the engine aborts the
    /// requester with [`AbortReason::LockTimeout`].
    pub lock_timeout: Duration,
    /// Parked waiters re-run deadlock detection at this interval.
    pub deadlock_check: Duration,
    /// Modelled service time per operation, spent while holding the page
    /// lock (zero disables). Benchmarks use it to restore the 1991-scale
    /// ratio between local work and messaging, so that *re-executing* a
    /// transaction (the §3.2 redo) costs what the paper assumes it costs.
    pub op_service_time: Duration,
    /// Group-commit batching for the WAL. The default (zero force latency,
    /// zero linger) degenerates to `append_forced` semantics, so the
    /// deterministic simulator and single-threaded tests are unaffected.
    pub group_commit: GroupCommitConfig,
}

impl Default for TplConfig {
    fn default() -> Self {
        TplConfig {
            buckets: 64,
            pool_frames: 128,
            lock_timeout: Duration::from_secs(2),
            deadlock_check: Duration::from_millis(2),
            op_service_time: Duration::ZERO,
            group_commit: GroupCommitConfig::default(),
        }
    }
}

#[derive(Debug)]
struct TxnCtx {
    state: LocalRunState,
    /// Undo entries in execution order: `(object, image before the update,
    /// image after the update)`.
    undo: Vec<(ObjectId, Option<Value>, Option<Value>)>,
}

/// Transaction metadata, liveness flag and counters — one of the engine's
/// independently locked components.
struct TxnTable {
    active: HashMap<LocalTxnId, TxnCtx>,
    terminated: HashMap<LocalTxnId, LocalRunState>,
    next_txn: u64,
    up: bool,
    stats: EngineStats,
}

/// A strict-2PL local database engine.
pub struct TwoPLEngine {
    txns: Mutex<TxnTable>,
    store: Mutex<PageStore>,
    wal: GroupCommitter,
    locks: BlockingLockManager<PageId, LocalTxnId, PageMode>,
    cfg: TplConfig,
    /// The site this engine serves, carried in `SiteDown` errors so report
    /// tables attribute failures to the real site (0 = unattached).
    site: AtomicU32,
}

impl TwoPLEngine {
    /// A fresh engine over a fresh simulated disk, serving `site`.
    pub fn new_at(cfg: TplConfig, site: SiteId) -> Self {
        let store = PageStore::open(
            StableStorage::new(cfg.buckets as usize + 8),
            cfg.buckets,
            cfg.pool_frames,
        )
        .expect("fresh store opens");
        TwoPLEngine {
            txns: Mutex::new(TxnTable {
                active: HashMap::new(),
                terminated: HashMap::new(),
                next_txn: 1,
                up: true,
                stats: EngineStats::default(),
            }),
            store: Mutex::new(store),
            wal: GroupCommitter::new(LogManager::new(), cfg.group_commit),
            locks: BlockingLockManager::new(cfg.deadlock_check),
            cfg,
            site: AtomicU32::new(site.raw()),
        }
    }

    /// A fresh engine not yet attributed to a site.
    pub fn new(cfg: TplConfig) -> Self {
        Self::new_at(cfg, SiteId::new(0))
    }

    /// Open an engine whose WAL is backed by the durable frame file at
    /// `path`, replaying whatever survived a previous process into a fresh
    /// store. Returns the running engine and what recovery found: committed
    /// transactions are redone, losers discarded, and in-doubt (prepared)
    /// transactions resurrected in the ready state with their page locks
    /// re-held, awaiting the coordinator's decision.
    pub fn open_durable(
        cfg: TplConfig,
        site: SiteId,
        path: impl AsRef<std::path::Path>,
    ) -> AmcResult<(Self, RecoveryReport)> {
        let log = LogManager::open_durable(path)?;
        let store = PageStore::open(
            StableStorage::new(cfg.buckets as usize + 8),
            cfg.buckets,
            cfg.pool_frames,
        )?;
        let engine = TwoPLEngine {
            txns: Mutex::new(TxnTable {
                active: HashMap::new(),
                terminated: HashMap::new(),
                next_txn: 1,
                // Down until recover() replays the log and re-opens the door.
                up: false,
                stats: EngineStats::default(),
            }),
            store: Mutex::new(store),
            wal: GroupCommitter::new(log, cfg.group_commit),
            locks: BlockingLockManager::new(cfg.deadlock_check),
            cfg,
            site: AtomicU32::new(site.raw()),
        };
        let report = engine.recover()?;
        Ok((engine, report))
    }

    /// Convenience: default configuration.
    pub fn with_defaults() -> Self {
        Self::new(TplConfig::default())
    }

    /// The site this engine reports in `SiteDown` errors.
    fn site(&self) -> SiteId {
        SiteId::new(self.site.load(Ordering::Relaxed))
    }

    fn site_down(&self) -> AmcError {
        AmcError::SiteDown(self.site())
    }

    /// Pre-load committed state without going through a transaction (test
    /// and workload setup). Flushes to stable storage. When the WAL is
    /// durable the load is journalled as one committed transaction, so the
    /// baseline survives a process restart (the store itself is volatile
    /// across processes — only the log file persists).
    pub fn load(&self, data: impl IntoIterator<Item = (ObjectId, Value)>) -> AmcResult<()> {
        if !self.wal.with_log(|log| log.is_durable()) {
            let mut store = self.store.lock();
            for (o, v) in data {
                store.put(o, v)?;
            }
            return store.flush();
        }
        let txn = {
            let mut txns = self.txns.lock();
            let t = LocalTxnId::new(txns.next_txn);
            txns.next_txn += 1;
            t
        };
        self.wal.append(&LogRecord::Begin { txn });
        {
            let mut store = self.store.lock();
            for (o, v) in data {
                let before = store.get(o)?;
                store.put(o, v)?;
                self.wal.append(&LogRecord::Update {
                    txn,
                    obj: o,
                    before,
                    after: Some(v),
                });
            }
            store.flush()?;
        }
        if !self.wal.append_durable(&LogRecord::Commit { txn }) {
            return Err(self.site_down());
        }
        Ok(())
    }

    /// Apply one operation to the store, returning `(result, before, after)`.
    fn apply_op(
        store: &mut PageStore,
        op: &Operation,
    ) -> AmcResult<(OpResult, Option<Value>, Option<Value>)> {
        match *op {
            Operation::Read { obj } => {
                let v = store.get(obj)?.ok_or(AmcError::NotFound(obj))?;
                Ok((OpResult::Value(v), Some(v), Some(v)))
            }
            Operation::Write { obj, value } => {
                let before = store.get(obj)?.ok_or(AmcError::NotFound(obj))?;
                store.put(obj, value)?;
                Ok((OpResult::Done, Some(before), Some(value)))
            }
            Operation::Increment { obj, delta } => {
                let before = store.get(obj)?.ok_or(AmcError::NotFound(obj))?;
                let after = before.incremented(delta);
                store.put(obj, after)?;
                Ok((OpResult::Done, Some(before), Some(after)))
            }
            Operation::Insert { obj, value } => {
                if store.get(obj)?.is_some() {
                    return Err(AmcError::AlreadyExists(obj));
                }
                store.put(obj, value)?;
                Ok((OpResult::Done, None, Some(value)))
            }
            Operation::Delete { obj } => {
                let before = store.remove(obj)?.ok_or(AmcError::NotFound(obj))?;
                Ok((OpResult::Done, Some(before), None))
            }
            Operation::Reserve { obj, amount } => {
                let before = store.get(obj)?.ok_or(AmcError::NotFound(obj))?;
                if before.counter < amount as i64 {
                    return Err(AmcError::InsufficientStock {
                        obj,
                        have: before.counter,
                        want: amount,
                    });
                }
                let after = before.incremented(-(amount as i64));
                store.put(obj, after)?;
                Ok((OpResult::Done, Some(before), Some(after)))
            }
        }
    }

    /// Roll back and terminate `txn`; must be called *without* any engine
    /// component mutex held. The transaction's page locks stay held for the
    /// whole rollback (strict 2PL), so nobody observes intermediate undo
    /// state even though the component mutexes interleave.
    fn abort_internal(&self, txn: LocalTxnId, reason: AbortReason) -> AmcResult<()> {
        let ctx = {
            let mut txns = self.txns.lock();
            let Some(ctx) = txns.active.remove(&txn) else {
                return Err(AmcError::UnknownTxn);
            };
            ctx
        };
        let was_prepared = ctx.state == LocalRunState::Ready;
        // Undo in reverse, logging compensations so forward replay of this
        // (finished) transaction nets out.
        {
            let mut store = self.store.lock();
            for &(obj, before, after) in ctx.undo.iter().rev() {
                match before {
                    Some(v) => {
                        store.put(obj, v)?;
                    }
                    None => {
                        store.remove(obj)?;
                    }
                }
                self.wal.append(&LogRecord::Update {
                    txn,
                    obj,
                    before: after,
                    after: before,
                });
            }
        }
        if was_prepared {
            // The prepare record was *forced*: if the abort stayed volatile,
            // a later crash would resurrect this transaction in doubt after
            // the coordinator has already collected our Finished ack — and
            // nobody retransmits a collected decision, so the doubt would
            // never resolve. One force closes the window; never-prepared
            // transactions keep the unforced presumed-abort fast path.
            if !self.wal.append_durable(&LogRecord::Abort { txn }) {
                return Err(self.site_down());
            }
        } else {
            self.wal.append(&LogRecord::Abort { txn });
        }
        {
            let mut txns = self.txns.lock();
            txns.terminated.insert(txn, LocalRunState::Aborted);
            txns.stats.aborts += 1;
            if reason.is_erroneous() {
                txns.stats.erroneous_aborts += 1;
            }
        }
        self.locks.release_txn(txn);
        Ok(())
    }

    /// Shared crash path: `partial` carries `(keep_frames, torn)` when the
    /// crash strikes mid-`force()`, persisting part of the log tail.
    fn crash_impl(&self, partial: Option<(u32, bool)>) {
        let victims: Vec<LocalTxnId> = {
            let mut txns = self.txns.lock();
            txns.up = false;
            self.store.lock().crash();
            // Waking parked committers (epoch bump) happens here, while the
            // liveness flag is already down — they fail with SiteDown.
            match partial {
                Some((keep, torn)) => self.wal.crash_during_force(keep as usize, torn),
                None => self.wal.crash(),
            }
            let victims: Vec<LocalTxnId> = txns.active.keys().copied().collect();
            for t in &victims {
                let ctx = txns.active.remove(t).expect("listed");
                // Prepared transactions stay undecided: recovery will
                // resurrect them from their forced Prepare records.
                if ctx.state != LocalRunState::Ready {
                    txns.terminated.insert(*t, LocalRunState::Aborted);
                    txns.stats.aborts += 1;
                    txns.stats.erroneous_aborts += 1;
                }
            }
            victims
        };
        // Free the lock table so parked waiters wake (they will observe the
        // site is down and fail their operation).
        for t in victims {
            self.locks.release_txn(t);
        }
    }

    /// The L0 lock hold count right now (observed by E1's instrumentation).
    pub fn locks_held(&self) -> usize {
        self.locks.granted_count()
    }

    /// Lock-manager counters (waits, victims) for reports.
    pub fn lock_stats(&self) -> amc_lock::LockStats {
        self.locks.stats()
    }

    /// Disk/buffer counters for E4.
    pub fn io_stats(
        &self,
    ) -> (
        amc_storage::disk::DiskStats,
        amc_storage::buffer::BufferStats,
    ) {
        self.store.lock().stats()
    }

    /// Reset every statistics counter.
    pub fn reset_stats(&self) {
        self.txns.lock().stats = EngineStats::default();
        self.wal.with_log(|log| log.reset_stats());
        self.store.lock().reset_stats();
        self.locks.reset_stats();
    }
}

impl LocalEngine for TwoPLEngine {
    fn begin(&self) -> AmcResult<LocalTxnId> {
        let mut txns = self.txns.lock();
        if !txns.up {
            return Err(self.site_down());
        }
        let txn = LocalTxnId::new(txns.next_txn);
        txns.next_txn += 1;
        txns.active.insert(
            txn,
            TxnCtx {
                state: LocalRunState::Running,
                undo: Vec::new(),
            },
        );
        txns.stats.begins += 1;
        // `txns` → `wal` nesting keeps the Begin record atomic with the
        // table insert (a crash can't separate them).
        self.wal.append(&LogRecord::Begin { txn });
        Ok(txn)
    }

    fn execute(&self, txn: LocalTxnId, op: &Operation) -> AmcResult<OpResult> {
        // Phase 1: validate the transaction and find the locking granule.
        {
            let txns = self.txns.lock();
            if !txns.up {
                return Err(self.site_down());
            }
            match txns.active.get(&txn) {
                Some(ctx) if ctx.state == LocalRunState::Running => {}
                Some(ctx) => {
                    return Err(AmcError::InvalidState(format!(
                        "execute in state {}",
                        ctx.state
                    )))
                }
                None => return Err(AmcError::UnknownTxn),
            }
        }
        let page: PageId = self.store.lock().page_of(op.object());

        // Phase 2: block on the page lock with no component mutex held.
        let mode = if op.is_update() {
            PageMode::Exclusive
        } else {
            PageMode::Shared
        };
        match self.locks.acquire(txn, page, mode, self.cfg.lock_timeout) {
            AcquireResult::Granted => {}
            AcquireResult::Deadlock => {
                self.abort_internal(txn, AbortReason::Deadlock)?;
                return Err(AmcError::Aborted(AbortReason::Deadlock));
            }
            AcquireResult::Timeout => {
                self.abort_internal(txn, AbortReason::LockTimeout)?;
                return Err(AmcError::Aborted(AbortReason::LockTimeout));
            }
        }

        // Modelled local work: holds the page lock (acquired above), which
        // serializes only transactions touching this page — not the engine.
        if !self.cfg.op_service_time.is_zero() {
            std::thread::sleep(self.cfg.op_service_time);
        }

        // Phase 3: apply to the store, then log + register undo under the
        // transaction table. The page lock (held past commit) orders every
        // conflicting pair identically in the store and the log; a crash
        // between the two phases is driver-initiated and quiesced in both
        // runtimes, so the store image cannot outlive its log record.
        let applied = {
            let mut store = self.store.lock();
            Self::apply_op(&mut store, op)
        };
        let (result, before, after) = match applied {
            Ok(x) => x,
            Err(e) => {
                // Logical failure (NotFound/AlreadyExists): the transaction
                // stays running; the caller decides whether to abort. The
                // page lock is retained (2PL).
                self.txns.lock().stats.ops += 1;
                return Err(e);
            }
        };
        let mut txns = self.txns.lock();
        if !txns.up {
            // Crashed while we were applying; the store image is gone too.
            return Err(self.site_down());
        }
        txns.stats.ops += 1;
        if op.is_update() {
            let Some(ctx) = txns.active.get_mut(&txn) else {
                return Err(AmcError::UnknownTxn);
            };
            ctx.undo.push((op.object(), before, after));
            self.wal.append(&LogRecord::Update {
                txn,
                obj: op.object(),
                before,
                after,
            });
        }
        Ok(result)
    }

    fn commit(&self, txn: LocalTxnId) -> AmcResult<()> {
        {
            let txns = self.txns.lock();
            if !txns.up {
                return Err(self.site_down());
            }
            if !txns.active.contains_key(&txn) {
                return Err(AmcError::UnknownTxn);
            }
        }
        // The unmodified engine's atomic running->committed transition:
        // append + force the commit record (§3.1) — via group commit, with
        // no component mutex held, so concurrent committers share one force.
        if !self.wal.append_durable(&LogRecord::Commit { txn }) {
            // A crash wiped the record before it was forced: the commit
            // never happened (crash_impl already drained the transaction).
            return Err(self.site_down());
        }
        {
            let mut txns = self.txns.lock();
            // The record is durable, so the transaction is committed even
            // if a crash raced us here and drained `active` already —
            // recovery will redo it; make the terminal state agree.
            if txns.active.remove(&txn).is_some() {
                txns.stats.commits += 1;
            }
            txns.terminated.insert(txn, LocalRunState::Committed);
        }
        self.locks.release_txn(txn);
        Ok(())
    }

    fn abort(&self, txn: LocalTxnId, reason: AbortReason) -> AmcResult<()> {
        {
            let txns = self.txns.lock();
            if !txns.up {
                return Err(self.site_down());
            }
        }
        self.abort_internal(txn, reason)
    }

    fn state_of(&self, txn: LocalTxnId) -> Option<LocalRunState> {
        let txns = self.txns.lock();
        txns.active
            .get(&txn)
            .map(|c| c.state)
            .or_else(|| txns.terminated.get(&txn).copied())
    }

    fn is_up(&self) -> bool {
        self.txns.lock().up
    }

    fn crash(&self) {
        self.crash_impl(None);
    }

    fn crash_partial(&self, keep_frames: u32, torn_frame: bool) {
        self.crash_impl(Some((keep_frames, torn_frame)));
    }

    fn recover(&self) -> AmcResult<RecoveryReport> {
        // `txns` → `store` → `wal` — the engine-wide lock order; holding
        // the first two quiesces the engine for the whole replay.
        let mut txns = self.txns.lock();
        if txns.up {
            return Err(AmcError::InvalidState("recover on a running site".into()));
        }
        let mut store = self.store.lock();
        // Replay the durable log into the store.
        let outcome = self.wal.with_log(|log| {
            amc_wal::recover(log, |obj, img| {
                match img {
                    Some(v) => {
                        store.put(obj, v)?;
                    }
                    None => {
                        store.remove(obj)?;
                    }
                }
                Ok(())
            })
        })?;
        store.flush()?;

        let report = RecoveryReport {
            committed: outcome.committed.iter().copied().collect(),
            rolled_back: outcome.losers.iter().copied().collect(),
            in_doubt: outcome.in_doubt.iter().copied().collect(),
            replayed: outcome.redo_applied + outcome.undo_applied,
            torn_tail: outcome.torn_tail_truncated,
        };

        // Record replayed terminal states, so that after a process restart
        // a duplicate decision for an already-finished transaction is a
        // no-op instead of an unknown-txn error.
        for t in &outcome.committed {
            txns.terminated.insert(*t, LocalRunState::Committed);
        }
        for t in &outcome.aborted {
            txns.terminated.insert(*t, LocalRunState::Aborted);
        }
        for t in &outcome.losers {
            txns.terminated.insert(*t, LocalRunState::Aborted);
        }

        // Resurrect in-doubt transactions: rebuild their undo lists from the
        // log and re-take exclusive locks on their pages so they stay
        // isolated until the coordinator decides (the blocking 2PC hazard).
        let records = self.wal.with_log(|log| log.stable_records())?;
        // When the table was rebuilt from a durable log, fresh local ids
        // must not collide with replayed ones.
        let max_seen = records
            .iter()
            .filter_map(|(_, r)| r.txn())
            .map(|t| t.raw())
            .max()
            .unwrap_or(0);
        txns.next_txn = txns.next_txn.max(max_seen + 1);
        let mut doubt_pages: HashMap<LocalTxnId, Vec<PageId>> = HashMap::new();
        for t in &outcome.in_doubt {
            txns.active.insert(
                *t,
                TxnCtx {
                    state: LocalRunState::Ready,
                    undo: Vec::new(),
                },
            );
        }
        for (_, r) in &records {
            if let LogRecord::Update {
                txn,
                obj,
                before,
                after,
                ..
            } = r
            {
                if outcome.in_doubt.contains(txn) {
                    let page = store.page_of(*obj);
                    doubt_pages.entry(*txn).or_default().push(page);
                    txns.active
                        .get_mut(txn)
                        .expect("inserted above")
                        .undo
                        .push((*obj, *before, *after));
                }
            }
        }
        // Write a checkpoint: everything replayed is flushed; in-doubt txns
        // remain active across it.
        let active: Vec<LocalTxnId> = txns.active.keys().copied().collect();
        self.wal.with_log(|log| {
            log.append_forced(&LogRecord::Checkpoint { active });
        });
        txns.up = true;
        drop(store);
        drop(txns);

        // Nothing else is running during recovery, so these grants are
        // immediate.
        for (txn, pages) in doubt_pages {
            for p in pages {
                let r = self
                    .locks
                    .acquire(txn, p, PageMode::Exclusive, Duration::from_secs(1));
                if r != AcquireResult::Granted {
                    return Err(AmcError::Protocol(format!(
                        "could not re-lock page {p} for in-doubt {txn}: {r:?}"
                    )));
                }
            }
        }
        Ok(report)
    }

    fn kind(&self) -> &'static str {
        "2pl"
    }

    fn stats(&self) -> EngineStats {
        self.txns.lock().stats
    }

    fn dump(&self) -> AmcResult<BTreeMap<ObjectId, Value>> {
        Ok(self.store.lock().scan()?.into_iter().collect())
    }

    fn bulk_load(&self, data: &[(ObjectId, Value)]) -> AmcResult<()> {
        self.load(data.iter().copied())
    }

    fn log_stats(&self) -> amc_wal::LogStats {
        self.wal.stats()
    }

    fn attach_obs(&self, sink: amc_obs::ObsSink, site: SiteId) {
        self.site.store(site.raw(), Ordering::Relaxed);
        self.wal.with_log(|log| log.attach_obs(sink, site));
    }
}

impl PreparableEngine for TwoPLEngine {
    fn prepare(&self, txn: LocalTxnId) -> AmcResult<()> {
        {
            let mut txns = self.txns.lock();
            if !txns.up {
                return Err(self.site_down());
            }
            let Some(ctx) = txns.active.get_mut(&txn) else {
                return Err(AmcError::UnknownTxn);
            };
            if ctx.state != LocalRunState::Running {
                return Err(AmcError::InvalidState(format!(
                    "prepare in state {}",
                    ctx.state
                )));
            }
            ctx.state = LocalRunState::Ready;
        }
        // The §3.1 contract: all changes durable before answering ready.
        // Prepare records ride the same group-commit batches as commits.
        if !self.wal.append_durable(&LogRecord::Prepare { txn }) {
            // Crash before the force: the prepare never became durable, so
            // no vote may be cast (recovery will not resurrect this txn).
            return Err(self.site_down());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Operation as Op;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }

    fn engine_with(data: &[(u64, i64)]) -> TwoPLEngine {
        let e = TwoPLEngine::with_defaults();
        e.load(data.iter().map(|&(o, val)| (obj(o), v(val))))
            .unwrap();
        e
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        assert_eq!(
            e.execute(t, &Op::Read { obj: obj(1) }).unwrap(),
            OpResult::Value(v(10))
        );
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(20),
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        assert_eq!(e.state_of(t), Some(LocalRunState::Committed));
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(20)));
    }

    #[test]
    fn abort_rolls_back_everything() {
        let e = engine_with(&[(1, 10), (2, 20)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(99),
            },
        )
        .unwrap();
        e.execute(t, &Op::Delete { obj: obj(2) }).unwrap();
        e.execute(
            t,
            &Op::Insert {
                obj: obj(3),
                value: v(30),
            },
        )
        .unwrap();
        e.abort(t, AbortReason::Intended).unwrap();
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(10)));
        assert_eq!(d.get(&obj(2)), Some(&v(20)));
        assert_eq!(d.get(&obj(3)), None);
        assert_eq!(e.state_of(t), Some(LocalRunState::Aborted));
    }

    #[test]
    fn increment_applies_delta() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Increment {
                obj: obj(1),
                delta: -3,
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(7)));
    }

    #[test]
    fn logical_errors_do_not_abort() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        assert!(matches!(
            e.execute(t, &Op::Read { obj: obj(99) }),
            Err(AmcError::NotFound(_))
        ));
        assert!(matches!(
            e.execute(
                t,
                &Op::Insert {
                    obj: obj(1),
                    value: v(0)
                }
            ),
            Err(AmcError::AlreadyExists(_))
        ));
        // Still running and usable.
        assert_eq!(e.state_of(t), Some(LocalRunState::Running));
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(11),
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(11)));
    }

    #[test]
    fn committed_state_survives_crash() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.commit(t).unwrap();
        e.crash();
        assert!(!e.is_up());
        let report = e.recover().unwrap();
        assert!(report.committed.contains(&t));
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(42)));
    }

    #[test]
    fn invisible_uncommitted_work_vanishes_on_crash() {
        // Nothing of the transaction was forced: recovery sees no trace and
        // the volatile update is simply gone.
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.crash();
        let report = e.recover().unwrap();
        assert!(report.rolled_back.is_empty());
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
        assert_eq!(e.state_of(t), Some(LocalRunState::Aborted));
    }

    #[test]
    fn torn_tail_crash_recovers_durable_prefix() {
        // Commit A durably, then leave B's records in the volatile tail and
        // crash mid-force: one frame becomes durable, the next lands torn.
        // Recovery must truncate the torn frame and land exactly on A's
        // committed state — twice, to prove idempotence (E8).
        let e = engine_with(&[(1, 10), (2, 20)]);
        let a = e.begin().unwrap();
        e.execute(
            a,
            &Op::Write {
                obj: obj(1),
                value: v(11),
            },
        )
        .unwrap();
        e.commit(a).unwrap();
        let b = e.begin().unwrap();
        e.execute(
            b,
            &Op::Write {
                obj: obj(2),
                value: v(99),
            },
        )
        .unwrap();
        // Tail now holds B's Begin + Update; keep the Begin, tear the rest.
        e.crash_partial(1, true);
        let report = e.recover().unwrap();
        assert!(report.committed.contains(&a));
        assert!(report.rolled_back.contains(&b), "B's Begin survived: loser");
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(11)));
        assert_eq!(d.get(&obj(2)), Some(&v(20)), "torn update never applied");
        // Crash again cleanly and re-recover: same state.
        e.crash();
        e.recover().unwrap();
        let d2 = e.dump().unwrap();
        assert_eq!(d2.get(&obj(1)), Some(&v(11)));
        assert_eq!(d2.get(&obj(2)), Some(&v(20)));
    }

    #[test]
    fn durable_uncommitted_work_is_rolled_back_by_recovery() {
        let e = engine_with(&[(1, 10), (2, 20)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        // A second transaction commits, group-forcing the tail — t's update
        // record is now durable without its commit.
        let other = e.begin().unwrap();
        e.execute(
            other,
            &Op::Write {
                obj: obj(2),
                value: v(21),
            },
        )
        .unwrap();
        e.commit(other).unwrap();
        e.crash();
        let report = e.recover().unwrap();
        assert!(report.rolled_back.contains(&t), "report: {report:?}");
        assert!(report.committed.contains(&other));
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(10)), "loser undone");
        assert_eq!(d.get(&obj(2)), Some(&v(21)), "winner redone");
        assert_eq!(e.state_of(t), Some(LocalRunState::Aborted));
    }

    #[test]
    fn prepared_transaction_survives_crash_in_doubt() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.prepare(t).unwrap();
        assert_eq!(e.state_of(t), Some(LocalRunState::Ready));
        e.crash();
        let report = e.recover().unwrap();
        assert_eq!(report.in_doubt, vec![t]);
        assert_eq!(e.state_of(t), Some(LocalRunState::Ready));

        // The in-doubt transaction still blocks access to its pages: a new
        // transaction touching object 1 must time out.
        let t2 = e.begin().unwrap();
        let err = e
            .execute(t2, &Op::Read { obj: obj(1) })
            .expect_err("page is locked by the in-doubt txn");
        assert!(matches!(
            err,
            AmcError::Aborted(AbortReason::LockTimeout) | AmcError::Aborted(AbortReason::Deadlock)
        ));

        // Coordinator decides commit: the change lands.
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(42)));
    }

    #[test]
    fn prepared_transaction_can_abort_after_recovery() {
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.execute(
            t,
            &Op::Write {
                obj: obj(1),
                value: v(42),
            },
        )
        .unwrap();
        e.prepare(t).unwrap();
        e.crash();
        e.recover().unwrap();
        e.abort(t, AbortReason::GlobalDecision).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn conflicting_writers_serialize() {
        let e = std::sync::Arc::new(engine_with(&[(1, 0)]));
        let n = 4;
        let per = 10;
        let mut handles = Vec::new();
        for _ in 0..n {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < per {
                    let t = e.begin().unwrap();
                    match e.execute(
                        t,
                        &Op::Increment {
                            obj: obj(1),
                            delta: 1,
                        },
                    ) {
                        Ok(_) => {
                            e.commit(t).unwrap();
                            done += 1;
                        }
                        Err(AmcError::Aborted(_)) => {} // deadlock victim: retry
                        Err(e2) => panic!("unexpected: {e2}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(n * per)));
    }

    #[test]
    fn deadlock_produces_erroneous_abort() {
        // Force two objects onto different pages with enough buckets, then
        // build the classic crossed ordering.
        let e = std::sync::Arc::new({
            let cfg = TplConfig {
                lock_timeout: Duration::from_millis(500),
                ..TplConfig::default()
            };
            let e = TwoPLEngine::new(cfg);
            e.load((0..32).map(|i| (obj(i), v(0)))).unwrap();
            e
        });
        // Find two objects on different pages.
        let (a, b) = {
            let store = e.store.lock();
            let pa = store.page_of(obj(0));
            let other = (1..32)
                .find(|i| store.page_of(obj(*i)) != pa)
                .expect("64 buckets, 32 objects: some differ");
            (obj(0), obj(other))
        };
        let e1 = e.clone();
        let e2 = e.clone();
        let (a1, b1) = (a, b);
        let h1 = std::thread::spawn(move || {
            let t = e1.begin().unwrap();
            e1.execute(
                t,
                &Op::Write {
                    obj: a1,
                    value: v(1),
                },
            )
            .unwrap();
            std::thread::sleep(Duration::from_millis(30));
            match e1.execute(
                t,
                &Op::Write {
                    obj: b1,
                    value: v(1),
                },
            ) {
                Ok(_) => {
                    e1.commit(t).unwrap();
                    true
                }
                Err(AmcError::Aborted(r)) => {
                    assert!(r.is_erroneous());
                    false
                }
                Err(other) => panic!("unexpected {other}"),
            }
        });
        let h2 = std::thread::spawn(move || {
            let t = e2.begin().unwrap();
            e2.execute(
                t,
                &Op::Write {
                    obj: b,
                    value: v(2),
                },
            )
            .unwrap();
            std::thread::sleep(Duration::from_millis(30));
            match e2.execute(
                t,
                &Op::Write {
                    obj: a,
                    value: v(2),
                },
            ) {
                Ok(_) => {
                    e2.commit(t).unwrap();
                    true
                }
                Err(AmcError::Aborted(r)) => {
                    assert!(r.is_erroneous());
                    false
                }
                Err(other) => panic!("unexpected {other}"),
            }
        });
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        assert!(r1 || r2, "at least one transaction survives the deadlock");
        assert!(
            e.stats().erroneous_aborts >= 1 || (r1 && r2),
            "victim recorded as erroneous abort"
        );
    }

    #[test]
    fn stats_accumulate() {
        let e = engine_with(&[(1, 0)]);
        let t = e.begin().unwrap();
        e.execute(t, &Op::Read { obj: obj(1) }).unwrap();
        e.commit(t).unwrap();
        let t2 = e.begin().unwrap();
        e.abort(t2, AbortReason::Intended).unwrap();
        let s = e.stats();
        assert_eq!(s.begins, 2);
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.erroneous_aborts, 0);
        assert_eq!(s.ops, 1);
    }

    #[test]
    fn unknown_txn_is_rejected() {
        let e = engine_with(&[]);
        let ghost = LocalTxnId::new(999);
        assert!(matches!(e.commit(ghost), Err(AmcError::UnknownTxn)));
        assert!(matches!(
            e.abort(ghost, AbortReason::Intended),
            Err(AmcError::UnknownTxn)
        ));
        assert!(matches!(
            e.execute(ghost, &Op::Read { obj: obj(1) }),
            Err(AmcError::UnknownTxn)
        ));
        assert_eq!(e.state_of(ghost), None);
    }

    #[test]
    fn operations_rejected_while_down() {
        let e = engine_with(&[(1, 1)]);
        e.crash();
        assert!(matches!(e.begin(), Err(AmcError::SiteDown(_))));
        e.recover().unwrap();
        assert!(e.begin().is_ok());
    }

    #[test]
    fn crashed_site_reports_its_real_id() {
        // Regression: the engine used to report SiteDown(u32::MAX), a
        // sentinel that leaked into error attribution and report tables.
        let e = TwoPLEngine::new_at(TplConfig::default(), SiteId::new(7));
        e.crash();
        match e.begin() {
            Err(AmcError::SiteDown(s)) => assert_eq!(s, SiteId::new(7)),
            other => panic!("expected SiteDown(site-7), got {other:?}"),
        }
        match e.commit(LocalTxnId::new(1)) {
            Err(AmcError::SiteDown(s)) => assert_eq!(s, SiteId::new(7)),
            other => panic!("expected SiteDown(site-7), got {other:?}"),
        }
    }

    #[test]
    fn concurrent_commits_share_group_forces() {
        // With a modelled force latency, committers arriving while the
        // leader's force is in flight must batch behind the next one.
        let cfg = TplConfig {
            group_commit: GroupCommitConfig {
                force_latency: Duration::from_millis(2),
                ..GroupCommitConfig::default()
            },
            ..TplConfig::default()
        };
        let e = std::sync::Arc::new(TwoPLEngine::new(cfg));
        e.load((0..8).map(|i| (obj(i), v(0)))).unwrap();
        let threads = 8u64;
        let per = 5u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..per {
                    let tx = e.begin().unwrap();
                    match e.execute(
                        tx,
                        &Op::Increment {
                            obj: obj(t),
                            delta: 1,
                        },
                    ) {
                        Ok(_) => e.commit(tx).unwrap(),
                        Err(AmcError::Aborted(_)) => {} // page collision victim
                        Err(other) => panic!("unexpected {other}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = e.log_stats();
        assert!(
            s.batched_commits > s.group_forces,
            "expected batching: {} commits acked over {} group forces",
            s.batched_commits,
            s.group_forces
        );
        // Every acknowledged commit is durable.
        e.crash();
        let report = e.recover().unwrap();
        let total: i64 = e.dump().unwrap().values().map(|val| val.counter).sum();
        assert_eq!(
            total,
            e.stats().commits as i64,
            "committed increments survive: {report:?}"
        );
    }

    #[test]
    fn reopen_from_durable_log_recovers_committed_and_in_doubt() {
        let dir = std::env::temp_dir().join(format!("amc-tpl-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.wal");
        let _ = std::fs::remove_file(&path);

        let (t_committed, t_prepared) = {
            let (e, report) =
                TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(3), &path).unwrap();
            assert!(report.committed.is_empty(), "fresh file, nothing to find");
            e.load([(obj(1), v(10)), (obj(2), v(20))]).unwrap();
            let t = e.begin().unwrap();
            e.execute(
                t,
                &Op::Increment {
                    obj: obj(1),
                    delta: 5,
                },
            )
            .unwrap();
            e.commit(t).unwrap();
            let p = e.begin().unwrap();
            e.execute(
                p,
                &Op::Write {
                    obj: obj(2),
                    value: v(99),
                },
            )
            .unwrap();
            e.prepare(p).unwrap();
            // The engine is dropped here without any shutdown — the moral
            // equivalent of SIGKILL; only forced frames survive in the file.
            (t, p)
        };

        let (e, report) =
            TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(3), &path).unwrap();
        assert!(report.committed.contains(&t_committed), "{report:?}");
        assert_eq!(report.in_doubt, vec![t_prepared], "{report:?}");
        let d = e.dump().unwrap();
        assert_eq!(d.get(&obj(1)), Some(&v(15)), "load + committed increment");
        // The in-doubt update was redone and stays isolated behind its
        // re-held page lock until the coordinator decides.
        assert_eq!(d.get(&obj(2)), Some(&v(99)));
        assert_eq!(e.state_of(t_prepared), Some(LocalRunState::Ready));

        // Fresh local ids must not collide with replayed ones.
        let fresh = e.begin().unwrap();
        assert!(fresh.raw() > t_prepared.raw(), "{fresh} vs {t_prepared}");
        e.abort(fresh, AbortReason::Intended).unwrap();

        // Coordinator decides commit: the in-doubt value stands, durably.
        e.commit(t_prepared).unwrap();
        drop(e);
        let (e, report) =
            TwoPLEngine::open_durable(TplConfig::default(), SiteId::new(3), &path).unwrap();
        assert!(report.in_doubt.is_empty(), "{report:?}");
        assert_eq!(e.dump().unwrap().get(&obj(2)), Some(&v(99)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn apply_and_prepare_forces_once_and_recovers_like_classic_prepare() {
        // The fast-path entry point: op records and the prepare record must
        // share one log force, and the crash/recovery outcome must be
        // indistinguishable from execute + prepare.
        let e = engine_with(&[(1, 10)]);
        let forces_before = e.log_stats().forces;
        let t = e.begin().unwrap();
        let results = e
            .apply_and_prepare(
                t,
                &[
                    Op::Increment {
                        obj: obj(1),
                        delta: 5,
                    },
                    Op::Read { obj: obj(1) },
                ],
            )
            .unwrap();
        assert_eq!(results, vec![OpResult::Done, OpResult::Value(v(15))]);
        assert_eq!(e.state_of(t), Some(LocalRunState::Ready));
        assert_eq!(
            e.log_stats().forces - forces_before,
            1,
            "ops + prepare share a single force"
        );
        // Crash in the ready state: recovery resurrects the piggybacked
        // prepare exactly like a classic one — in doubt, pages re-locked.
        e.crash();
        let report = e.recover().unwrap();
        assert_eq!(report.in_doubt, vec![t]);
        assert_eq!(e.state_of(t), Some(LocalRunState::Ready));
        e.commit(t).unwrap();
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(15)));
    }

    #[test]
    fn aborted_prepared_transaction_stays_aborted_across_crash() {
        // The abort of a *prepared* transaction must be durable before the
        // call returns: the coordinator collects our Finished ack and never
        // retransmits the decision again, so a crash that lost a volatile
        // abort would resurrect the transaction in doubt with nobody left
        // to resolve it — its applied ops leaking into the dump forever.
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        e.apply_and_prepare(
            t,
            &[Op::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )
        .unwrap();
        let forces_before = e.log_stats().forces;
        e.abort(t, AbortReason::GlobalDecision).unwrap();
        assert_eq!(
            e.log_stats().forces - forces_before,
            1,
            "the abort of a prepared transaction must force"
        );
        e.crash();
        let report = e.recover().unwrap();
        assert!(report.in_doubt.is_empty(), "{report:?}");
        assert_eq!(e.state_of(t), Some(LocalRunState::Aborted));
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn apply_and_prepare_engine_abort_leaves_no_prepare() {
        // An engine-initiated failure mid-ops must leave the transaction
        // rolled back with no durable prepare record.
        let e = engine_with(&[(1, 10)]);
        let t = e.begin().unwrap();
        let err = e
            .apply_and_prepare(
                t,
                &[
                    Op::Increment {
                        obj: obj(1),
                        delta: 5,
                    },
                    Op::Read { obj: obj(99) },
                ],
            )
            .expect_err("object 99 does not exist");
        assert!(matches!(err, AmcError::NotFound(_)));
        // Logical errors keep the transaction running; abort it and verify
        // nothing prepared survives a crash.
        e.abort(t, AbortReason::Intended).unwrap();
        e.crash();
        let report = e.recover().unwrap();
        assert!(report.in_doubt.is_empty(), "{report:?}");
        assert_eq!(e.dump().unwrap().get(&obj(1)), Some(&v(10)));
    }

    #[test]
    fn double_crash_recover_cycles() {
        let e = engine_with(&[(1, 1)]);
        for round in 0..3 {
            let t = e.begin().unwrap();
            e.execute(
                t,
                &Op::Increment {
                    obj: obj(1),
                    delta: 1,
                },
            )
            .unwrap();
            e.commit(t).unwrap();
            e.crash();
            e.recover().unwrap();
            assert_eq!(
                e.dump().unwrap().get(&obj(1)),
                Some(&v(2 + round)),
                "round {round}"
            );
        }
    }
}
