//! Seeded randomness and latency models.
//!
//! Every source of randomness in a simulation flows from one [`SimRng`]
//! seeded at construction, so a `(seed, workload, schedule)` triple fully
//! determines the run.

use amc_types::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic PRNG with simulation-flavoured helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Seeded constructor — same seed, same stream.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Fork an independent, deterministic child stream (e.g. one per site)
    /// so adding draws at one site never perturbs another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.rng.gen())
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.rng.gen_range(0..n)
    }

    /// Uniform in an inclusive range.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen_bool(p)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Exponentially distributed duration with the given mean (inverse
    /// transform sampling; used for think times and inter-arrival gaps).
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
        let x = -(u.ln()) * mean.micros() as f64;
        SimDuration::from_micros(x.min(1e15) as u64)
    }

    /// Zipf-distributed rank in `[0, n)` with skew `theta` (0 = uniform).
    ///
    /// Uses the rejection-free CDF-inversion over a precomputed-free
    /// approximation: for the modest `n` the workloads use (≤ 1e6) a direct
    /// power-law inversion is accurate enough and allocation-free.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        if theta <= f64::EPSILON {
            return self.below(n);
        }
        // Inverse-CDF of the continuous approximation of Zipf: ranks near 0
        // are hot. Exponent s = theta in (0, ~1.5].
        let u = self.unit().max(1e-12);
        let s = 1.0 - theta;
        let x = if s.abs() < 1e-9 {
            // theta == 1: H(x) ~ ln(x); invert via exp.
            (n as f64).powf(u)
        } else {
            // H(x) ~ (x^s - 1)/s; invert.
            ((u * ((n as f64).powf(s) - 1.0)) + 1.0).powf(1.0 / s)
        };
        (x as u64).min(n - 1)
    }
}

/// How long a message (or disk op) takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Always the same.
    Fixed(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
    /// Exponential with the given mean, clamped to `[min, 10*mean]`.
    Exponential {
        /// Mean latency.
        mean: SimDuration,
        /// Lower clamp (propagation floor).
        min: SimDuration,
    },
}

impl LatencyModel {
    /// Draw one latency.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                SimDuration::from_micros(rng.range_inclusive(lo.micros(), hi.micros()))
            }
            LatencyModel::Exponential { mean, min } => {
                let d = rng.exponential(mean);
                let cap = SimDuration::from_micros(mean.micros().saturating_mul(10));
                SimDuration::from_micros(
                    d.micros()
                        .clamp(min.micros(), cap.micros().max(min.micros())),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.below(1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.below(1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.fork();
        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.fork();
        // Same fork point -> same child stream.
        for _ in 0..16 {
            assert_eq!(child1.below(100), child2.below(100));
        }
        // Draws on the child do not perturb the parent.
        let p1: Vec<u64> = (0..16).map(|_| parent1.below(100)).collect();
        let _burn: Vec<u64> = (0..1000).map(|_| child2.below(100)).collect();
        let p2: Vec<u64> = (0..16).map(|_| parent2.below(100)).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let mut rng = SimRng::new(11);
        let mean = SimDuration::from_micros(1_000);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).micros()).sum();
        let avg = total as f64 / n as f64;
        assert!((800.0..1200.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let mut rng = SimRng::new(5);
        let n = 10u64;
        let mut counts = [0u64; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(n, 0.0) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let mut rng = SimRng::new(5);
        let n = 1000u64;
        let mut head = 0u64;
        let trials = 10_000;
        for _ in 0..trials {
            if rng.zipf(n, 0.99) < 10 {
                head += 1;
            }
        }
        // With strong skew, the hottest 1% of ranks should take far more
        // than 1% of draws.
        assert!(head > trials / 10, "head draws: {head}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut rng = SimRng::new(9);
        for theta in [0.0, 0.5, 0.9, 0.99, 1.2] {
            for _ in 0..1000 {
                assert!(rng.zipf(17, theta) < 17);
            }
        }
    }

    #[test]
    fn latency_models_sample_sanely() {
        let mut rng = SimRng::new(1);
        assert_eq!(
            LatencyModel::Fixed(SimDuration(5)).sample(&mut rng),
            SimDuration(5)
        );
        for _ in 0..100 {
            let d = LatencyModel::Uniform(SimDuration(10), SimDuration(20)).sample(&mut rng);
            assert!((10..=20).contains(&d.micros()));
            let e = LatencyModel::Exponential {
                mean: SimDuration(100),
                min: SimDuration(10),
            }
            .sample(&mut rng);
            assert!(e.micros() >= 10 && e.micros() <= 1000);
        }
    }
}
