//! The event queue: a virtual clock plus a priority queue of opaque events.
//!
//! Total order is `(time, sequence)` — two events scheduled for the same
//! instant fire in scheduling order, which is what makes whole simulations
//! bit-for-bit reproducible.

use amc_types::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling into the past is a
    /// bug in the driver; it is clamped to *now* so the queue stays
    /// monotone, and flagged in debug builds.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event's timestamp without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.now(), SimTime(20));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "x");
        q.pop();
        q.schedule_after(SimDuration(50), "y");
        assert_eq!(q.pop(), Some((SimTime(150), "y")));
    }

    #[test]
    fn clock_is_monotone_even_with_past_schedule() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "x");
        q.pop();
        // Bug in driver: schedules at t=10 < now=100. Release builds clamp.
        if cfg!(debug_assertions) {
            // In debug, this is a panic (caught here to keep the test one
            // binary); skip the clamp check.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                q.schedule_at(SimTime(10), "late");
            }));
            assert!(r.is_err());
        } else {
            q.schedule_at(SimTime(10), "late");
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime(100));
        }
    }

    proptest! {
        /// Pops come out sorted by time, and equal-time events preserve
        /// scheduling order (the determinism contract).
        #[test]
        fn pops_are_time_ordered_and_stable(times in proptest::collection::vec(0u64..50, 1..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule_at(SimTime(*t), (SimTime(*t), i));
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((at, (scheduled_at, seq))) = q.pop() {
                prop_assert_eq!(at, scheduled_at);
                if let Some((lt, lseq)) = last {
                    prop_assert!(at >= lt, "time went backwards");
                    if at == lt {
                        prop_assert!(seq > lseq, "equal-time order not FIFO");
                    }
                }
                prop_assert_eq!(q.now(), at);
                last = Some((at, seq));
            }
        }
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime(1), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
