//! Seeded reconfiguration schedules: the nemesis lane for **online
//! topology changes**.
//!
//! The sharded router (`amc-shard`) supports adding, removing and
//! replacing sites mid-workload; the dangerous window is the
//! reconfiguration itself — the drain, the data migration, the epoch
//! bump. This module generates deterministic schedules that strike
//! inside that window: a [`ReconfigPlan`] interleaves topology changes
//! with the workload at transaction-count offsets (the router runs on
//! real threads, so virtual time is the wrong clock — "after N
//! transactions" is the reproducible coordinate), and can couple a
//! change with a site kill timed to land *during* the migration it
//! triggers.
//!
//! Same `(config, seed)` pair, same schedule, forever — the regression
//! tests and the E14 chaos lane both replay plans by seed.
//!
//! The vocabulary deliberately mirrors `amc_shard::SiteChange` without
//! depending on it (`amc-shard` sits above this crate in the dependency
//! order); the test harness translates.

use crate::rng::SimRng;
use amc_types::SiteId;

/// One topology change (plus optional chaos riding on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigStep {
    /// Bring a fresh site into the fleet.
    AddSite {
        /// The new site.
        site: SiteId,
    },
    /// Retire `old`; its data and nominal identity migrate to
    /// `successor`.
    RemoveSite {
        /// The site leaving.
        old: SiteId,
        /// The member inheriting its objects.
        successor: SiteId,
    },
    /// Like [`ReconfigStep::RemoveSite`], with the nemesis marking
    /// `victim` unreachable just before the change is applied and
    /// reviving it after `revive_after_ms` — timed to land inside the
    /// migration window, which must retry around the outage and still
    /// conserve every object.
    RemoveSiteWithKill {
        /// The site leaving.
        old: SiteId,
        /// The member inheriting its objects.
        successor: SiteId,
        /// The fleet member the nemesis takes down.
        victim: SiteId,
        /// Milliseconds until the victim answers again.
        revive_after_ms: u64,
    },
}

/// One scheduled reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// Fire after this many workload transactions have finished.
    pub after_txns: u64,
    /// What changes.
    pub step: ReconfigStep,
}

/// An ordered reconfiguration schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconfigPlan {
    events: Vec<ReconfigEvent>,
}

impl ReconfigPlan {
    /// No reconfigurations.
    pub fn none() -> Self {
        Self::default()
    }

    /// The schedule, ascending by `after_txns`.
    pub fn events(&self) -> &[ReconfigEvent] {
        &self.events
    }

    /// Number of scheduled changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Shape of a generated schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigConfig {
    /// Initial fleet size (sites `1..=sites`).
    pub sites: u32,
    /// Spare site ids available for adds (`sites+1..=sites+spares`).
    pub spares: u32,
    /// Total workload transactions the plan spans.
    pub txns: u64,
    /// Changes to schedule (the generator may produce fewer when the
    /// fleet floor blocks removals).
    pub events: u32,
    /// Probability that a removal carries a nemesis kill.
    pub kill_probability: f64,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            sites: 3,
            spares: 2,
            txns: 200,
            events: 3,
            kill_probability: 0.5,
        }
    }
}

/// Draw a valid reconfiguration schedule from a seed.
///
/// Invariants the generator maintains (so every plan is executable):
/// adds only introduce non-members from the spare pool, removals only
/// fire while the fleet has at least two members, successors and kill
/// victims are always members of the *post-change* fleet, and offsets
/// ascend strictly so two changes never race.
pub fn generate_reconfig(cfg: &ReconfigConfig, seed: u64) -> ReconfigPlan {
    assert!(cfg.sites >= 1, "at least one initial site");
    let mut rng = SimRng::new(seed ^ 0xC0FF_EE00_5EED_0001);
    let mut fleet: Vec<SiteId> = (1..=cfg.sites).map(SiteId::new).collect();
    let mut spares: Vec<SiteId> = (cfg.sites + 1..=cfg.sites + cfg.spares)
        .map(SiteId::new)
        .collect();
    let mut events = Vec::new();
    let mut at = 0u64;
    for _ in 0..cfg.events {
        // Spread offsets across the workload, strictly ascending.
        let span = cfg.txns.max(1) / u64::from(cfg.events.max(1));
        at += 1 + rng.below(span.max(1));
        let can_add = !spares.is_empty();
        let can_remove = fleet.len() >= 2;
        let step = match (can_add, can_remove) {
            (false, false) => break,
            (true, false) => pop_random(&mut rng, &mut spares).map(|site| {
                fleet.push(site);
                ReconfigStep::AddSite { site }
            }),
            (false, true) => Some(remove_step(&mut rng, &mut fleet, cfg.kill_probability)),
            (true, true) => {
                if rng.chance(0.5) {
                    pop_random(&mut rng, &mut spares).map(|site| {
                        fleet.push(site);
                        ReconfigStep::AddSite { site }
                    })
                } else {
                    Some(remove_step(&mut rng, &mut fleet, cfg.kill_probability))
                }
            }
        };
        let Some(step) = step else { break };
        events.push(ReconfigEvent {
            after_txns: at,
            step,
        });
    }
    ReconfigPlan { events }
}

/// Remove a random fleet member in favour of a random survivor,
/// optionally riding a nemesis kill of another survivor.
fn remove_step(rng: &mut SimRng, fleet: &mut Vec<SiteId>, kill_probability: f64) -> ReconfigStep {
    let old = fleet.remove(rng.below(fleet.len() as u64) as usize);
    let successor = fleet[rng.below(fleet.len() as u64) as usize];
    if rng.chance(kill_probability) {
        // The victim must survive the change (it gets revived and must
        // still hold consistent state) — any post-change member works,
        // including the successor: that is the harshest case, since the
        // migration's writes target it.
        let victim = fleet[rng.below(fleet.len() as u64) as usize];
        ReconfigStep::RemoveSiteWithKill {
            old,
            successor,
            victim,
            revive_after_ms: 1 + rng.below(40),
        }
    } else {
        ReconfigStep::RemoveSite { old, successor }
    }
}

fn pop_random(rng: &mut SimRng, pool: &mut Vec<SiteId>) -> Option<SiteId> {
    if pool.is_empty() {
        return None;
    }
    Some(pool.remove(rng.below(pool.len() as u64) as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ReconfigConfig::default();
        for seed in 0..50 {
            assert_eq!(generate_reconfig(&cfg, seed), generate_reconfig(&cfg, seed));
        }
        assert_ne!(
            generate_reconfig(&cfg, 1),
            generate_reconfig(&cfg, 2),
            "different seeds should (overwhelmingly) differ"
        );
    }

    #[test]
    fn plans_are_executable() {
        // Replay every generated plan against a model fleet and check the
        // generator's invariants hold for many seeds.
        let cfg = ReconfigConfig {
            sites: 3,
            spares: 3,
            txns: 300,
            events: 6,
            kill_probability: 0.7,
        };
        for seed in 0..200 {
            let plan = generate_reconfig(&cfg, seed);
            let mut fleet: BTreeSet<SiteId> = (1..=cfg.sites).map(SiteId::new).collect();
            let mut last_at = 0;
            for ev in plan.events() {
                assert!(ev.after_txns > last_at, "offsets strictly ascend");
                last_at = ev.after_txns;
                match ev.step {
                    ReconfigStep::AddSite { site } => {
                        assert!(fleet.insert(site), "add of a member (seed {seed})");
                    }
                    ReconfigStep::RemoveSite { old, successor } => {
                        assert!(fleet.remove(&old), "remove of a non-member (seed {seed})");
                        assert!(fleet.contains(&successor), "successor left (seed {seed})");
                        assert_ne!(old, successor);
                    }
                    ReconfigStep::RemoveSiteWithKill {
                        old,
                        successor,
                        victim,
                        revive_after_ms,
                    } => {
                        assert!(fleet.remove(&old), "remove of a non-member (seed {seed})");
                        assert!(fleet.contains(&successor), "successor left (seed {seed})");
                        assert!(
                            fleet.contains(&victim),
                            "victim not a survivor (seed {seed})"
                        );
                        assert_ne!(old, successor);
                        assert!(revive_after_ms >= 1);
                    }
                }
                assert!(!fleet.is_empty(), "fleet emptied (seed {seed})");
            }
        }
    }

    #[test]
    fn kill_probability_zero_never_kills() {
        let cfg = ReconfigConfig {
            kill_probability: 0.0,
            events: 8,
            spares: 4,
            ..ReconfigConfig::default()
        };
        for seed in 0..50 {
            for ev in generate_reconfig(&cfg, seed).events() {
                assert!(
                    !matches!(ev.step, ReconfigStep::RemoveSiteWithKill { .. }),
                    "seed {seed}"
                );
            }
        }
    }
}
