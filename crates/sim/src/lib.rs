//! # amc-sim
//!
//! A small deterministic discrete-event simulation kernel. The protocol
//! experiments need three things a wall clock cannot give:
//!
//! 1. **Reproducible traces** — Figs. 2/4/6 are reproduced as golden
//!    message/state traces; those must not depend on thread scheduling.
//! 2. **Precise failure injection** — E5 crashes the coordinator *between*
//!    two specific protocol messages; only a virtual clock can express that.
//! 3. **Virtual-time metrics** — lock hold times and time-to-resolution in
//!    logical microseconds, immune to host noise.
//!
//! The kernel is intentionally generic: [`EventQueue`] orders opaque events
//! by `(time, sequence)`; the driver in `amc-core` owns the world state and
//! the event enum. [`SimRng`] wraps a seeded PRNG with the distributions the
//! workloads need, and [`FailurePlan`] describes site crash/restart
//! schedules.
//!
//! [`nemesis`] extends the hand-written schedules into chaos territory:
//! composed crash/partition/loss-burst/torn-tail [`FaultPlan`]s, a seeded
//! generator, and a shrinker that minimizes oracle-violating schedules.
//! [`reconfig`] generates seeded **online-reconfiguration** schedules for
//! the sharded router — topology changes at transaction-count offsets,
//! optionally coupled with a site kill timed to land inside the data
//! migration they trigger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failure;
pub mod nemesis;
pub mod queue;
pub mod reconfig;
pub mod rng;

pub use failure::{FailureEvent, FailureKind, FailurePlan};
pub use nemesis::{
    generate as generate_faults, shrink as shrink_faults, FaultEvent, FaultKind, FaultPlan,
    LinkDir, NemesisConfig, TornTail,
};
pub use queue::EventQueue;
pub use reconfig::{generate_reconfig, ReconfigConfig, ReconfigEvent, ReconfigPlan, ReconfigStep};
pub use rng::{LatencyModel, SimRng};
