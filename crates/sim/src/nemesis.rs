//! The nemesis: composed fault schedules, their seeded generator, and a
//! schedule shrinker.
//!
//! [`FailurePlan`] covers E5's hand-written crash
//! schedules; chaos testing needs more. A [`FaultPlan`] composes four fault
//! families into one virtual-time schedule:
//!
//! * **crash / restart** — whole-site failures, optionally with a **torn
//!   WAL tail** (the crash strikes mid-`force()`, leaving a checksum-corrupt
//!   final frame for restart recovery to truncate);
//! * **partition / heal** — a directed central↔site link severed while both
//!   endpoints stay live (the failure 2PC's blocking argument is about);
//! * **loss burst** — a window in which the network-wide loss probability
//!   spikes.
//!
//! [`generate`] draws a valid plan from a seed — same `(config, seed)` pair,
//! same schedule, forever — and [`shrink`] minimizes a schedule that
//! reproduces an oracle violation to the smallest reproducing prefix, then
//! greedily drops events, Jepsen/QuickCheck style.

use crate::failure::{FailureKind, FailurePlan};
use crate::rng::SimRng;
use amc_types::{SimDuration, SimTime, SiteId};

/// Which direction(s) of a central↔site link a partition severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Site → central severed: votes/acks vanish, decisions still arrive.
    ToCentral,
    /// Central → site severed: decisions vanish, votes still arrive.
    FromCentral,
    /// Both directions severed.
    Both,
}

/// A torn WAL tail accompanying a crash: the crash hits mid-`force()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Tail frames that become fully durable before the tear (clamped to
    /// the tail length at crash time).
    pub keep_frames: u32,
}

/// One fault family event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The site fails. With `torn`, the crash interrupts a log force,
    /// persisting `keep_frames` whole frames plus one torn frame.
    Crash {
        /// Mid-force crash shape, if any.
        torn: Option<TornTail>,
    },
    /// The site restarts and runs local restart recovery.
    Restart,
    /// Sever the site's link(s) with the central system.
    PartitionStart {
        /// Severed direction(s).
        dir: LinkDir,
    },
    /// Heal whatever partition is open for this site.
    PartitionHeal,
    /// Begin a network-wide loss burst at this probability.
    LossBurstStart {
        /// Per-message loss probability during the burst.
        probability: f64,
    },
    /// End the loss burst, restoring baseline loss.
    LossBurstEnd,
    /// The *leading coordinator replica* dies mid-protocol, after
    /// replicating `after_votes` prepare votes of the transaction it was
    /// driving — the Paxos Commit in-doubt window. Carries
    /// [`SiteId::CENTRAL`] by convention.
    CoordinatorCrash {
        /// Replicated prepare votes before the incumbent dies (≥ 1).
        after_votes: u32,
    },
    /// A standby coordinator replica claims ballot leadership and
    /// finishes every in-doubt transaction from the acceptor logs.
    CoordinatorTakeover {
        /// The standby's ballot tie-break id (must not be the incumbent's 0).
        replica: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When it fires.
    pub at: SimTime,
    /// The site it concerns. Loss bursts are network-wide and carry
    /// [`SiteId::CENTRAL`] by convention.
    pub site: SiteId,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered, composable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build directly from an event list (the shrinker's constructor).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Add a clean crash.
    pub fn crash(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            site,
            kind: FaultKind::Crash { torn: None },
        });
        self
    }

    /// Add a crash that tears the WAL tail mid-force.
    pub fn crash_torn(mut self, site: SiteId, at: SimTime, keep_frames: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            site,
            kind: FaultKind::Crash {
                torn: Some(TornTail { keep_frames }),
            },
        });
        self
    }

    /// Add a restart.
    pub fn restart(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            site,
            kind: FaultKind::Restart,
        });
        self
    }

    /// Add a crash at `at` and a restart `outage` later.
    pub fn outage(self, site: SiteId, at: SimTime, outage: SimDuration) -> Self {
        self.crash(site, at).restart(site, at + outage)
    }

    /// Sever the site's central link(s) at `at`.
    pub fn partition(mut self, site: SiteId, at: SimTime, dir: LinkDir) -> Self {
        self.events.push(FaultEvent {
            at,
            site,
            kind: FaultKind::PartitionStart { dir },
        });
        self
    }

    /// Heal the site's open partition at `at`.
    pub fn heal(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            site,
            kind: FaultKind::PartitionHeal,
        });
        self
    }

    /// Sever at `at`, heal `hold` later.
    pub fn partition_window(
        self,
        site: SiteId,
        at: SimTime,
        hold: SimDuration,
        dir: LinkDir,
    ) -> Self {
        self.partition(site, at, dir).heal(site, at + hold)
    }

    /// The leading coordinator replica dies at `at`, `after_votes`
    /// replicated prepare votes into the transaction it is driving.
    pub fn coordinator_crash(mut self, at: SimTime, after_votes: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            site: SiteId::CENTRAL,
            kind: FaultKind::CoordinatorCrash { after_votes },
        });
        self
    }

    /// Standby `replica` takes over ballot leadership at `at`.
    pub fn coordinator_takeover(mut self, at: SimTime, replica: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            site: SiteId::CENTRAL,
            kind: FaultKind::CoordinatorTakeover { replica },
        });
        self
    }

    /// Incumbent dies at `at`; standby `replica` takes over `hold` later.
    pub fn coordinator_outage(
        self,
        at: SimTime,
        hold: SimDuration,
        after_votes: u32,
        replica: u32,
    ) -> Self {
        self.coordinator_crash(at, after_votes)
            .coordinator_takeover(at + hold, replica)
    }

    /// Raise network-wide loss to `probability` for `hold`.
    pub fn loss_burst(mut self, at: SimTime, hold: SimDuration, probability: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            site: SiteId::CENTRAL,
            kind: FaultKind::LossBurstStart { probability },
        });
        self.events.push(FaultEvent {
            at: at + hold,
            site: SiteId::CENTRAL,
            kind: FaultKind::LossBurstEnd,
        });
        self
    }

    /// The events in time order (stable for equal timestamps).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut e = self.events.clone();
        e.sort_by_key(|ev| ev.at);
        e
    }

    /// Number of events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan consisting of the first `n` events in time order. Because
    /// [`FaultPlan::validate`] only constrains alternation *prefixes*, every
    /// prefix of a valid plan is itself valid.
    pub fn truncated(&self, n: usize) -> FaultPlan {
        let mut events = self.events();
        events.truncate(n);
        FaultPlan { events }
    }

    /// Validate the schedule. Per site, crash/restart must alternate
    /// (starting up) and partition start/heal must alternate (starting
    /// healed); loss bursts must alternate globally; burst probabilities
    /// must lie in `[0, 1]`. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut down: HashMap<SiteId, bool> = HashMap::new();
        let mut cut: HashMap<SiteId, bool> = HashMap::new();
        let mut burst = false;
        let mut leaderless = false;
        for ev in self.events() {
            match ev.kind {
                FaultKind::Crash { .. } => {
                    let d = down.entry(ev.site).or_insert(false);
                    if *d {
                        return Err(format!(
                            "{} crashes at {} while already down",
                            ev.site, ev.at
                        ));
                    }
                    *d = true;
                }
                FaultKind::Restart => {
                    let d = down.entry(ev.site).or_insert(false);
                    if !*d {
                        return Err(format!("{} restarts at {} while up", ev.site, ev.at));
                    }
                    *d = false;
                }
                FaultKind::PartitionStart { .. } => {
                    if ev.site.is_central() {
                        return Err(format!(
                            "partition event at {} targets the central site; name the \
                             non-central endpoint of the link",
                            ev.at
                        ));
                    }
                    let c = cut.entry(ev.site).or_insert(false);
                    if *c {
                        return Err(format!(
                            "{} partitions at {} while already partitioned",
                            ev.site, ev.at
                        ));
                    }
                    *c = true;
                }
                FaultKind::PartitionHeal => {
                    let c = cut.entry(ev.site).or_insert(false);
                    if !*c {
                        return Err(format!(
                            "{} heals at {} while not partitioned",
                            ev.site, ev.at
                        ));
                    }
                    *c = false;
                }
                FaultKind::LossBurstStart { probability } => {
                    if !(0.0..=1.0).contains(&probability) {
                        return Err(format!(
                            "loss burst at {} has probability {probability} outside [0, 1]",
                            ev.at
                        ));
                    }
                    if burst {
                        return Err(format!(
                            "loss burst starts at {} while one is already active",
                            ev.at
                        ));
                    }
                    burst = true;
                }
                FaultKind::LossBurstEnd => {
                    if !burst {
                        return Err(format!("loss burst ends at {} with none active", ev.at));
                    }
                    burst = false;
                }
                FaultKind::CoordinatorCrash { after_votes } => {
                    if after_votes == 0 {
                        return Err(format!(
                            "coordinator crash at {} after zero votes — the incumbent \
                             dies before any vote is replicated, which is a plain \
                             central crash",
                            ev.at
                        ));
                    }
                    if leaderless {
                        return Err(format!(
                            "coordinator crashes at {} with no leader in place",
                            ev.at
                        ));
                    }
                    leaderless = true;
                }
                FaultKind::CoordinatorTakeover { replica } => {
                    if replica == 0 {
                        return Err(format!(
                            "takeover at {} by replica 0, the incumbent's own ballot id",
                            ev.at
                        ));
                    }
                    if !leaderless {
                        return Err(format!(
                            "takeover at {} while the incumbent still leads",
                            ev.at
                        ));
                    }
                    leaderless = false;
                }
            }
        }
        Ok(())
    }
}

impl From<&FailurePlan> for FaultPlan {
    /// Lift a legacy E5 crash/restart schedule into the composed form.
    fn from(plan: &FailurePlan) -> Self {
        FaultPlan {
            events: plan
                .events()
                .into_iter()
                .map(|ev| FaultEvent {
                    at: ev.at,
                    site: ev.site,
                    kind: match ev.kind {
                        FailureKind::Crash => FaultKind::Crash { torn: None },
                        FailureKind::Restart => FaultKind::Restart,
                    },
                })
                .collect(),
        }
    }
}

/// Knobs for the seeded schedule generator.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// Non-central sites faults may target.
    pub sites: Vec<SiteId>,
    /// All fault activity completes (restart/heal/burst-end included)
    /// strictly before this time, leaving the tail of the run for the
    /// protocols to quiesce.
    pub fault_horizon: SimTime,
    /// Maximum incidents (an incident is a crash+restart, a
    /// partition+heal, or a burst start+end pair) across the plan.
    pub max_incidents: usize,
    /// Allow whole-site crash/restart incidents.
    pub allow_crashes: bool,
    /// Allow torn WAL tails on crashes.
    pub allow_torn_tails: bool,
    /// Allow link partitions.
    pub allow_partitions: bool,
    /// Allow network-wide loss bursts.
    pub allow_loss_bursts: bool,
    /// Allow the central site itself to crash (tests presumed abort).
    pub include_central_crash: bool,
    /// Allow leading-coordinator-replica crashes with standby takeover
    /// (Paxos Commit schedules). Off by default: the classical harnesses
    /// have no standby to hand leadership to, and existing seeds must
    /// keep generating the exact same plans.
    pub allow_coordinator_crashes: bool,
    /// Coordinator replica count for takeover events (`2f+1`; the
    /// incumbent is replica 0, standbys are `1..replicas`). Ignored
    /// unless coordinator crashes are allowed.
    pub coordinator_replicas: u32,
    /// Shortest incident duration.
    pub min_hold: SimDuration,
    /// Longest incident duration.
    pub max_hold: SimDuration,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            sites: vec![SiteId::new(1), SiteId::new(2)],
            fault_horizon: SimTime(5_000_000), // 5 virtual seconds
            max_incidents: 6,
            allow_crashes: true,
            allow_torn_tails: true,
            allow_partitions: true,
            allow_loss_bursts: true,
            include_central_crash: true,
            allow_coordinator_crashes: false,
            coordinator_replicas: 3,
            min_hold: SimDuration::from_micros(5_000),
            max_hold: SimDuration::from_micros(200_000),
        }
    }
}

/// Generate a valid composed fault schedule from `seed`.
///
/// Determinism contract: same `(cfg, seed)`, same plan. The generator keeps
/// one timeline cursor per lane — each site is a lane (its crashes and
/// partitions never overlap, so a plan never partitions a down site), and
/// the network-wide burst is its own lane — which makes every emitted plan
/// pass [`FaultPlan::validate`] by construction.
pub fn generate(cfg: &NemesisConfig, seed: u64) -> FaultPlan {
    let mut rng = SimRng::new(seed);
    let mut plan = FaultPlan::none();

    // Candidate incident kinds under the config's switches.
    #[derive(Clone, Copy)]
    enum Incident {
        Crash,
        CentralCrash,
        CoordCrash,
        Partition,
        Burst,
    }
    let mut kinds: Vec<Incident> = Vec::new();
    if cfg.allow_crashes && !cfg.sites.is_empty() {
        // Weight site crashes double: they exercise the most machinery.
        kinds.push(Incident::Crash);
        kinds.push(Incident::Crash);
    }
    if cfg.allow_crashes && cfg.include_central_crash {
        kinds.push(Incident::CentralCrash);
    }
    if cfg.allow_partitions && !cfg.sites.is_empty() {
        kinds.push(Incident::Partition);
        kinds.push(Incident::Partition);
    }
    if cfg.allow_loss_bursts {
        kinds.push(Incident::Burst);
    }
    if cfg.allow_coordinator_crashes && cfg.coordinator_replicas >= 2 {
        // Weight double: the whole point of a replicated coordinator.
        kinds.push(Incident::CoordCrash);
        kinds.push(Incident::CoordCrash);
    }
    if kinds.is_empty() || cfg.max_incidents == 0 {
        return plan;
    }

    // Per-lane cursors: the next time a lane is free. Lane 0..sites.len()
    // are the configured sites, then the central site, then the burst lane.
    let span = cfg.fault_horizon.0;
    let n_incidents = rng.range_inclusive(1, cfg.max_incidents as u64);
    let mut site_free: Vec<u64> = vec![0; cfg.sites.len()];
    let mut central_free: u64 = 0;
    let mut burst_free: u64 = 0;

    for _ in 0..n_incidents {
        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let hold = rng.range_inclusive(cfg.min_hold.micros(), cfg.max_hold.micros());
        let (free, site) = match kind {
            Incident::Crash | Incident::Partition => {
                let i = rng.below(cfg.sites.len() as u64) as usize;
                (&mut site_free[i], cfg.sites[i])
            }
            // Coordinator crashes share the central lane: a plan never
            // kills the incumbent replica while the central site is down.
            Incident::CentralCrash | Incident::CoordCrash => (&mut central_free, SiteId::CENTRAL),
            Incident::Burst => (&mut burst_free, SiteId::CENTRAL),
        };
        // Place the incident uniformly in the lane's remaining room; skip
        // it when the lane is too crowded to finish before the horizon.
        let latest_start = match span.checked_sub(hold) {
            Some(l) if l > *free => l,
            _ => continue,
        };
        let start = rng.range_inclusive(*free + 1, latest_start);
        *free = start + hold;
        let (at, end) = (SimTime(start), SimTime(start + hold));
        plan = match kind {
            Incident::Crash => {
                if cfg.allow_torn_tails && rng.chance(0.5) {
                    let keep = rng.below(3) as u32;
                    plan.crash_torn(site, at, keep).restart(site, end)
                } else {
                    plan.outage(site, at, SimDuration::from_micros(hold))
                }
            }
            Incident::CentralCrash => plan.outage(site, at, SimDuration::from_micros(hold)),
            Incident::CoordCrash => {
                let after_votes = 1 + rng.below(3) as u32;
                let replica = 1 + rng.below(u64::from(cfg.coordinator_replicas) - 1) as u32;
                plan.coordinator_outage(at, SimDuration::from_micros(hold), after_votes, replica)
            }
            Incident::Partition => {
                let dir = match rng.below(3) {
                    0 => LinkDir::ToCentral,
                    1 => LinkDir::FromCentral,
                    _ => LinkDir::Both,
                };
                plan.partition_window(site, at, SimDuration::from_micros(hold), dir)
            }
            Incident::Burst => {
                let p = 0.3 + 0.7 * rng.unit();
                plan.loss_burst(at, SimDuration::from_micros(hold), p)
            }
        };
    }
    debug_assert!(plan.validate().is_ok(), "generator emitted invalid plan");
    plan
}

/// Minimize a fault schedule that makes `reproduces` return `true`.
///
/// Two passes, both deterministic:
/// 1. **Prefix search** — find the shortest time-ordered prefix that still
///    reproduces (the violation usually hinges on the first few faults);
/// 2. **Greedy removal** — try deleting each remaining event (latest
///    first), keeping deletions that leave the plan valid and still
///    reproducing.
///
/// `reproduces` is typically "run the simulation with this plan and check
/// the oracle"; it must be deterministic for the result to mean anything.
/// If the full plan does not reproduce, it is returned unchanged.
pub fn shrink(plan: &FaultPlan, mut reproduces: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    if !reproduces(plan) {
        return plan.clone();
    }
    // Pass 1: shortest reproducing prefix.
    let mut best = plan.clone();
    for n in 0..plan.len() {
        let prefix = plan.truncated(n);
        debug_assert!(prefix.validate().is_ok());
        if reproduces(&prefix) {
            best = prefix;
            break;
        }
    }
    // Pass 2: greedy single-event removal, latest event first (earlier
    // events more often carry the causal load).
    let mut events = best.events();
    let mut i = events.len();
    while i > 0 {
        i -= 1;
        let mut candidate = events.clone();
        candidate.remove(i);
        let candidate = FaultPlan::from_events(candidate);
        if candidate.validate().is_ok() && reproduces(&candidate) {
            events.remove(i);
        }
    }
    FaultPlan::from_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> SiteId {
        SiteId::new(n)
    }

    #[test]
    fn builders_produce_valid_plans() {
        let plan = FaultPlan::none()
            .outage(s(1), SimTime(100), SimDuration(50))
            .partition_window(s(2), SimTime(120), SimDuration(80), LinkDir::Both)
            .loss_burst(SimTime(300), SimDuration(40), 0.9)
            .crash_torn(s(2), SimTime(500), 1)
            .restart(s(2), SimTime(600));
        plan.validate().unwrap();
        assert_eq!(plan.len(), 8);
        let events = plan.events();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn validation_catches_overlapping_incidents() {
        let double_crash = FaultPlan::none()
            .crash(s(1), SimTime(10))
            .crash(s(1), SimTime(20));
        assert!(double_crash.validate().is_err());

        let heal_without_partition = FaultPlan::none().heal(s(1), SimTime(10));
        assert!(heal_without_partition.validate().is_err());

        let double_burst = FaultPlan::none()
            .loss_burst(SimTime(10), SimDuration(100), 0.5)
            .loss_burst(SimTime(50), SimDuration(100), 0.5);
        assert!(double_burst.validate().is_err());

        let bad_probability = FaultPlan::none().loss_burst(SimTime(10), SimDuration(5), 1.5);
        assert!(bad_probability.validate().is_err());

        let central_partition =
            FaultPlan::none().partition(SiteId::CENTRAL, SimTime(10), LinkDir::Both);
        assert!(central_partition.validate().is_err());
    }

    #[test]
    fn crash_and_partition_on_different_sites_may_overlap() {
        let plan = FaultPlan::none()
            .outage(s(1), SimTime(100), SimDuration(500))
            .partition_window(s(2), SimTime(200), SimDuration(500), LinkDir::ToCentral);
        plan.validate().unwrap();
    }

    #[test]
    fn legacy_failure_plans_lift() {
        let legacy = FailurePlan::none().outage(s(2), SimTime(100), SimDuration(50));
        let plan = FaultPlan::from(&legacy);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 2);
        assert!(matches!(
            plan.events()[0].kind,
            FaultKind::Crash { torn: None }
        ));
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let cfg = NemesisConfig::default();
        for seed in 0..200 {
            let a = generate(&cfg, seed);
            let b = generate(&cfg, seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            a.validate()
                .unwrap_or_else(|e| panic!("seed {seed} invalid: {e}"));
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let cfg = NemesisConfig::default();
        let distinct: std::collections::BTreeSet<usize> =
            (0..50).map(|seed| generate(&cfg, seed).len()).collect();
        assert!(distinct.len() > 1, "all 50 plans have identical length");
    }

    #[test]
    fn generated_faults_respect_the_horizon() {
        let cfg = NemesisConfig::default();
        for seed in 0..100 {
            for ev in generate(&cfg, seed).events() {
                assert!(
                    ev.at < cfg.fault_horizon,
                    "seed {seed}: event at {} beyond horizon",
                    ev.at
                );
            }
        }
    }

    #[test]
    fn generator_honours_switches() {
        let cfg = NemesisConfig {
            allow_crashes: false,
            allow_loss_bursts: false,
            ..NemesisConfig::default()
        };
        for seed in 0..50 {
            for ev in generate(&cfg, seed).events() {
                assert!(
                    matches!(
                        ev.kind,
                        FaultKind::PartitionStart { .. } | FaultKind::PartitionHeal
                    ),
                    "seed {seed}: unexpected {ev:?}"
                );
            }
        }
    }

    #[test]
    fn all_faults_off_means_empty_plans() {
        let cfg = NemesisConfig {
            allow_crashes: false,
            allow_partitions: false,
            allow_loss_bursts: false,
            ..NemesisConfig::default()
        };
        assert!(generate(&cfg, 7).is_empty());
    }

    #[test]
    fn coordinator_lanes_validate_and_generate() {
        let plan = FaultPlan::none()
            .coordinator_outage(SimTime(100), SimDuration(50), 2, 1)
            .coordinator_outage(SimTime(300), SimDuration(50), 1, 2);
        plan.validate().unwrap();

        let double_crash = FaultPlan::none()
            .coordinator_crash(SimTime(10), 1)
            .coordinator_crash(SimTime(20), 1);
        assert!(double_crash.validate().is_err());
        let orphan_takeover = FaultPlan::none().coordinator_takeover(SimTime(10), 1);
        assert!(orphan_takeover.validate().is_err());
        let zero_votes = FaultPlan::none().coordinator_crash(SimTime(10), 0);
        assert!(zero_votes.validate().is_err());
        let incumbent_takeover = FaultPlan::none()
            .coordinator_crash(SimTime(10), 1)
            .coordinator_takeover(SimTime(20), 0);
        assert!(incumbent_takeover.validate().is_err());

        // The generator emits the new lane (valid, deterministic) when
        // allowed, and never otherwise — existing seeds are untouched.
        let cfg = NemesisConfig {
            allow_coordinator_crashes: true,
            allow_crashes: false,
            allow_partitions: false,
            allow_loss_bursts: false,
            ..NemesisConfig::default()
        };
        let mut saw_takeover = false;
        for seed in 0..100u64 {
            let plan = generate(&cfg, seed);
            assert_eq!(plan, generate(&cfg, seed), "seed {seed} not reproducible");
            plan.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for ev in plan.events() {
                match ev.kind {
                    FaultKind::CoordinatorCrash { after_votes } => assert!(after_votes >= 1),
                    FaultKind::CoordinatorTakeover { replica } => {
                        saw_takeover = true;
                        assert!(replica >= 1 && replica < cfg.coordinator_replicas);
                    }
                    other => panic!("seed {seed}: unexpected {other:?}"),
                }
            }
        }
        assert!(saw_takeover, "100 seeds never produced a takeover");
        let default_plans_unchanged = (0..100u64)
            .flat_map(|s| generate(&NemesisConfig::default(), s).events())
            .all(|ev| {
                !matches!(
                    ev.kind,
                    FaultKind::CoordinatorCrash { .. } | FaultKind::CoordinatorTakeover { .. }
                )
            });
        assert!(default_plans_unchanged);
    }

    #[test]
    fn prefixes_of_valid_plans_are_valid() {
        let cfg = NemesisConfig::default();
        for seed in 0..50 {
            let plan = generate(&cfg, seed);
            for n in 0..=plan.len() {
                plan.truncated(n)
                    .validate()
                    .unwrap_or_else(|e| panic!("seed {seed} prefix {n}: {e}"));
            }
        }
    }

    #[test]
    fn shrinker_finds_the_minimal_prefix() {
        // The "oracle" fires as soon as the plan contains site 1's crash.
        let plan = FaultPlan::none()
            .loss_burst(SimTime(10), SimDuration(10), 0.5)
            .outage(s(1), SimTime(100), SimDuration(50))
            .partition_window(s(2), SimTime(300), SimDuration(50), LinkDir::Both);
        let trigger = |p: &FaultPlan| {
            p.events()
                .iter()
                .any(|e| e.site == s(1) && matches!(e.kind, FaultKind::Crash { .. }))
        };
        let small = shrink(&plan, trigger);
        small.validate().unwrap();
        assert_eq!(small.len(), 1, "exactly the crash remains: {small:?}");
        assert!(trigger(&small));
    }

    #[test]
    fn shrinker_returns_full_plan_when_nothing_reproduces() {
        let plan = FaultPlan::none().outage(s(1), SimTime(10), SimDuration(5));
        let shrunk = shrink(&plan, |_| false);
        assert_eq!(shrunk, plan);
    }

    #[test]
    fn shrinker_on_conjunctive_triggers_keeps_both_events() {
        // Violation needs the crash AND the partition.
        let plan = FaultPlan::none()
            .outage(s(1), SimTime(100), SimDuration(50))
            .loss_burst(SimTime(200), SimDuration(20), 0.7)
            .partition_window(s(2), SimTime(300), SimDuration(50), LinkDir::Both);
        let trigger = |p: &FaultPlan| {
            let evs = p.events();
            let crash = evs
                .iter()
                .any(|e| e.site == s(1) && matches!(e.kind, FaultKind::Crash { .. }));
            let cut = evs
                .iter()
                .any(|e| matches!(e.kind, FaultKind::PartitionStart { .. }));
            crash && cut
        };
        let small = shrink(&plan, trigger);
        small.validate().unwrap();
        assert!(trigger(&small));
        assert_eq!(small.len(), 2, "crash + partition survive: {small:?}");
    }
}
