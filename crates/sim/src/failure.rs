//! Failure schedules for experiment E5 (blocking under crashes).
//!
//! A [`FailurePlan`] is a declarative list of site crash/restart events in
//! virtual time. The simulation driver merges the plan into its event queue
//! at start-up; during the run a crashed site drops inbound messages and
//! its engine loses volatile state (buffer pool, log tail) exactly as the
//! storage substrate models it.

use amc_types::{SimDuration, SimTime, SiteId};

/// What happens to a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The site fails: volatile state lost, messages dropped until restart.
    Crash,
    /// The site restarts: local restart recovery runs, then it answers
    /// again.
    Restart,
}

/// One scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which site.
    pub site: SiteId,
    /// Crash or restart.
    pub kind: FailureKind,
}

/// An ordered schedule of failure events.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a crash at `at`.
    pub fn crash(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            site,
            kind: FailureKind::Crash,
        });
        self
    }

    /// Add a restart at `at`.
    pub fn restart(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            site,
            kind: FailureKind::Restart,
        });
        self
    }

    /// Add a crash at `at` followed by a restart `outage` later.
    pub fn outage(self, site: SiteId, at: SimTime, outage: SimDuration) -> Self {
        self.crash(site, at).restart(site, at + outage)
    }

    /// The events in time order (stable for equal timestamps).
    pub fn events(&self) -> Vec<FailureEvent> {
        let mut e = self.events.clone();
        e.sort_by_key(|ev| ev.at);
        e
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate: every crash/restart pair for a site alternates, starting
    /// with a crash. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut down: HashMap<SiteId, bool> = HashMap::new();
        for ev in self.events() {
            let is_down = down.entry(ev.site).or_insert(false);
            match ev.kind {
                FailureKind::Crash if *is_down => {
                    return Err(format!(
                        "{} crashes at {} while already down",
                        ev.site, ev.at
                    ))
                }
                FailureKind::Restart if !*is_down => {
                    return Err(format!("{} restarts at {} while up", ev.site, ev.at))
                }
                FailureKind::Crash => *is_down = true,
                FailureKind::Restart => *is_down = false,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_builds_crash_then_restart() {
        let plan = FailurePlan::none().outage(SiteId::new(2), SimTime(100), SimDuration(50));
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FailureKind::Crash);
        assert_eq!(events[0].at, SimTime(100));
        assert_eq!(events[1].kind, FailureKind::Restart);
        assert_eq!(events[1].at, SimTime(150));
        plan.validate().unwrap();
    }

    #[test]
    fn events_are_time_sorted() {
        let plan = FailurePlan::none()
            .crash(SiteId::new(1), SimTime(200))
            .crash(SiteId::new(2), SimTime(100));
        let events = plan.events();
        assert_eq!(events[0].site, SiteId::new(2));
        assert_eq!(events[1].site, SiteId::new(1));
    }

    #[test]
    fn validation_rejects_double_crash() {
        let plan = FailurePlan::none()
            .crash(SiteId::new(1), SimTime(10))
            .crash(SiteId::new(1), SimTime(20));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validation_rejects_restart_while_up() {
        let plan = FailurePlan::none().restart(SiteId::new(1), SimTime(10));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn empty_plan_is_valid() {
        assert!(FailurePlan::none().is_empty());
        FailurePlan::none().validate().unwrap();
    }
}
