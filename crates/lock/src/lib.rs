//! # amc-lock
//!
//! A generic lock manager used at **both** levels of the multi-level
//! transaction hierarchy (§4 of the paper):
//!
//! * at **L0** the local 2PL engines lock *pages* in `Shared`/`Exclusive`
//!   mode ([`modes::PageMode`]);
//! * at **L1** the central system locks *objects* in semantic modes derived
//!   from operation commutativity ([`modes::SemanticMode`]) — the Fig. 8
//!   increment lock compatible with itself is the whole point.
//!
//! The core [`table::LockTable`] is **sans-blocking**: requests are granted
//! or queued, never parked, so the same table drives the deterministic
//! simulator and the threaded runtime. [`blocking::BlockingLockManager`]
//! wraps it with condvars, timeouts and automatic deadlock victimisation for
//! real threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod modes;
pub mod table;

pub use blocking::BlockingLockManager;
pub use modes::{LockMode, PageMode, SemanticMode};
pub use table::{victims_from_edges, LockOutcome, LockStats, LockTable};
