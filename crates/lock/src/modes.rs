//! Lock modes and compatibility matrices.
//!
//! A mode set is anything implementing [`LockMode`]. Two concrete sets ship
//! with the crate: the classical page-level `S`/`X` pair and the semantic
//! L1 modes of the multi-level transaction model, where `Increment` is
//! compatible with itself because increments generally commute (§4.1,
//! Fig. 8 of the paper).

use amc_types::Operation;
use std::fmt::Debug;
use std::hash::Hash;

/// A lock mode with a (symmetric) compatibility relation.
pub trait LockMode: Copy + Eq + Hash + Debug + Send + 'static {
    /// Whether a lock in `self` mode may be granted while another
    /// transaction holds `held`.
    fn compatible(self, held: Self) -> bool;

    /// A mode that covers both `self` and `other` for re-entrant holds by
    /// the *same* transaction (used for upgrades). Must be the least mode
    /// whose conflicts are a superset of both.
    fn combine(self, other: Self) -> Self;
}

/// Page-level modes used by the local (L0) two-phase-locking engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode for PageMode {
    fn compatible(self, held: Self) -> bool {
        matches!((self, held), (PageMode::Shared, PageMode::Shared))
    }

    fn combine(self, other: Self) -> Self {
        if self == PageMode::Exclusive || other == PageMode::Exclusive {
            PageMode::Exclusive
        } else {
            PageMode::Shared
        }
    }
}

/// Semantic (L1) modes for global transactions over logical objects.
///
/// Compatibility matrix (✓ = compatible):
///
/// ```text
///            Read   Write  Increment  Escrow
/// Read        ✓       ✗       ✗         ✗
/// Write       ✗       ✗       ✗         ✗
/// Increment   ✗       ✗       ✓         ✗
/// Escrow      ✗       ✗       ✗         ✓
/// ```
///
/// `Increment`/`Increment` compatibility is what lets the two Fig. 8
/// transactions interleave their `Incr(x)` actions; `Escrow`/`Escrow` is
/// the VODAK-style extension for conditional reserves (the engine enforces
/// the bound atomically, so concurrent reserves are safe against each
/// other but not against observers or restocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticMode {
    /// Observes the value.
    Read,
    /// Arbitrarily replaces, inserts or deletes the value.
    Write,
    /// Commutative delta update.
    Increment,
    /// Bounded conditional decrement (escrow reserve).
    Escrow,
}

impl LockMode for SemanticMode {
    fn compatible(self, held: Self) -> bool {
        matches!(
            (self, held),
            (SemanticMode::Read, SemanticMode::Read)
                | (SemanticMode::Increment, SemanticMode::Increment)
                | (SemanticMode::Escrow, SemanticMode::Escrow)
        )
    }

    fn combine(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            // Any mixed hold conflicts with everything, which is exactly
            // Write's row in the matrix.
            SemanticMode::Write
        }
    }
}

impl SemanticMode {
    /// The L1 mode an operation needs, i.e. the lock that blocks exactly the
    /// non-commuting operations (`Operation::commutes_with`).
    pub fn for_operation(op: &Operation) -> SemanticMode {
        match op {
            Operation::Read { .. } => SemanticMode::Read,
            Operation::Increment { .. } => SemanticMode::Increment,
            Operation::Reserve { .. } => SemanticMode::Escrow,
            Operation::Write { .. } | Operation::Insert { .. } | Operation::Delete { .. } => {
                SemanticMode::Write
            }
        }
    }

    /// The degenerate read/write projection used by the E7 ablation: ignore
    /// commutativity and treat increments as plain writes (what a
    /// single-level system would do).
    pub fn for_operation_rw_only(op: &Operation) -> SemanticMode {
        match op {
            Operation::Read { .. } => SemanticMode::Read,
            _ => SemanticMode::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    #[test]
    fn page_matrix() {
        use PageMode::*;
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn semantic_matrix_matches_fig8() {
        use SemanticMode::*;
        assert!(Read.compatible(Read));
        assert!(
            Increment.compatible(Increment),
            "Fig. 8: increments interleave"
        );
        assert!(!Increment.compatible(Read));
        assert!(!Increment.compatible(Write));
        assert!(!Write.compatible(Write));
        assert!(!Read.compatible(Write));
    }

    #[test]
    fn matrices_are_symmetric() {
        for a in [PageMode::Shared, PageMode::Exclusive] {
            for b in [PageMode::Shared, PageMode::Exclusive] {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
        let all = [
            SemanticMode::Read,
            SemanticMode::Write,
            SemanticMode::Increment,
            SemanticMode::Escrow,
        ];
        for a in all {
            for b in all {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn combine_covers_both() {
        // Combined mode must conflict with everything either part conflicts
        // with.
        let all = [
            SemanticMode::Read,
            SemanticMode::Write,
            SemanticMode::Increment,
            SemanticMode::Escrow,
        ];
        for a in all {
            for b in all {
                let c = a.combine(b);
                for other in all {
                    if !a.compatible(other) || !b.compatible(other) {
                        assert!(
                            !c.compatible(other),
                            "{a:?}+{b:?}={c:?} must conflict with {other:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(
            PageMode::Shared.combine(PageMode::Exclusive),
            PageMode::Exclusive
        );
    }

    #[test]
    fn mode_for_operation_agrees_with_commutativity() {
        // Lock compatibility must imply operation commutativity on the same
        // object (the lock-based scheduler is allowed to be conservative,
        // never permissive).
        let obj = ObjectId::new(1);
        let ops = [
            Operation::Read { obj },
            Operation::Write {
                obj,
                value: Value::ZERO,
            },
            Operation::Increment { obj, delta: 1 },
            Operation::Insert {
                obj,
                value: Value::ZERO,
            },
            Operation::Delete { obj },
            Operation::Reserve { obj, amount: 2 },
        ];
        for a in &ops {
            for b in &ops {
                let ma = SemanticMode::for_operation(a);
                let mb = SemanticMode::for_operation(b);
                if ma.compatible(mb) {
                    assert!(
                        a.commutes_with(b),
                        "locks allowed {a} || {b} but they do not commute"
                    );
                }
            }
        }
    }

    #[test]
    fn rw_projection_is_strictly_more_conservative() {
        let obj = ObjectId::new(1);
        let incr = Operation::Increment { obj, delta: 1 };
        assert_eq!(SemanticMode::for_operation(&incr), SemanticMode::Increment);
        assert_eq!(
            SemanticMode::for_operation_rw_only(&incr),
            SemanticMode::Write
        );
    }
}
