//! Blocking façade over the lock table for the threaded runtime.
//!
//! Waiters park on a condvar. A parked waiter periodically re-runs deadlock
//! detection; victims are recorded in a *doomed* set so that every victim —
//! wherever it is parked — wakes up and reports [`AcquireResult::Deadlock`]
//! to its engine, which then aborts the transaction (an *erroneous* abort in
//! the paper's classification, §3.2).

use crate::modes::LockMode;
use crate::table::{LockOutcome, LockStats, LockTable};
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Result of a blocking acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// Lock granted.
    Granted,
    /// The caller was chosen as a deadlock victim; it must abort.
    Deadlock,
    /// The request timed out; the caller should abort (an erroneous abort).
    Timeout,
}

struct Inner<R, T, M> {
    table: LockTable<R, T, M>,
    doomed: HashSet<T>,
}

/// Thread-safe, blocking lock manager.
pub struct BlockingLockManager<R, T, M> {
    inner: Mutex<Inner<R, T, M>>,
    cv: Condvar,
    /// How often parked waiters re-check for deadlock.
    check_interval: Duration,
}

impl<R, T, M> BlockingLockManager<R, T, M>
where
    R: Copy + Eq + Hash + Debug,
    T: Copy + Eq + Ord + Hash + Debug,
    M: LockMode,
{
    /// A manager whose parked waiters re-run deadlock detection every
    /// `check_interval`.
    pub fn new(check_interval: Duration) -> Self {
        BlockingLockManager {
            inner: Mutex::new(Inner {
                table: LockTable::new(),
                doomed: HashSet::new(),
            }),
            cv: Condvar::new(),
            check_interval,
        }
    }

    /// Acquire `mode` on `resource` for `txn`, blocking up to `timeout`.
    ///
    /// On `Deadlock`/`Timeout` the queued request is cancelled; locks the
    /// transaction already holds stay held until [`Self::release_txn`] —
    /// the engine's abort path releases them after rollback, preserving
    /// strict 2PL.
    pub fn acquire(&self, txn: T, resource: R, mode: M, timeout: Duration) -> AcquireResult {
        let start = Instant::now();
        let mut guard = self.inner.lock();
        if guard.doomed.contains(&txn) {
            return AcquireResult::Deadlock;
        }
        match guard.table.request(txn, resource, mode) {
            LockOutcome::Granted => return AcquireResult::Granted,
            LockOutcome::Queued => {}
        }
        loop {
            self.cv.wait_for(&mut guard, self.check_interval);
            if guard.doomed.contains(&txn) {
                self.cancel_wait(&mut guard, txn);
                return AcquireResult::Deadlock;
            }
            if guard.table.holds(txn, resource)
                && guard.table.held_mode(txn, resource).is_some_and(|held| {
                    // The promoted mode covers the request iff combining
                    // changes nothing.
                    held.combine(mode) == held
                })
            {
                return AcquireResult::Granted;
            }
            // Re-run detection; doom every victim and wake them.
            let victims = guard.table.detect_deadlock_victims();
            if !victims.is_empty() {
                for v in &victims {
                    guard.doomed.insert(*v);
                }
                self.cv.notify_all();
                if guard.doomed.contains(&txn) {
                    self.cancel_wait(&mut guard, txn);
                    return AcquireResult::Deadlock;
                }
            }
            if start.elapsed() >= timeout {
                self.cancel_wait(&mut guard, txn);
                return AcquireResult::Timeout;
            }
        }
    }

    /// Remove `txn`'s queued request while **keeping every grant it
    /// holds** — the victim's rollback still needs its locks (strict 2PL).
    /// Wakes anyone the cancellation unblocks.
    fn cancel_wait(&self, guard: &mut Inner<R, T, M>, txn: T) {
        let woken = guard.table.cancel_waits(txn);
        if !woken.is_empty() {
            self.cv.notify_all();
        }
    }

    /// Release every lock `txn` holds (commit or post-rollback abort).
    pub fn release_txn(&self, txn: T) {
        let mut guard = self.inner.lock();
        guard.doomed.remove(&txn);
        let woken = guard.table.release_all(txn);
        if !woken.is_empty() {
            self.cv.notify_all();
        }
    }

    /// Snapshot of the table's counters.
    pub fn stats(&self) -> LockStats {
        self.inner.lock().table.stats()
    }

    /// Reset counters.
    pub fn reset_stats(&self) {
        self.inner.lock().table.reset_stats();
    }

    /// Number of locks currently granted (for tests/metrics).
    pub fn granted_count(&self) -> usize {
        self.inner.lock().table.granted_count()
    }

    /// Invariant check pass-through for property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.inner.lock().table.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::PageMode;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    const LONG: Duration = Duration::from_secs(5);

    fn mgr() -> Arc<BlockingLockManager<u32, u64, PageMode>> {
        Arc::new(BlockingLockManager::new(Duration::from_millis(2)))
    }

    #[test]
    fn uncontended_acquire_is_immediate() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        m.release_txn(1);
    }

    #[test]
    fn waiter_wakes_on_release() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let m2 = m.clone();
        let h = thread::spawn(move || m2.acquire(2, 10, PageMode::Exclusive, LONG));
        thread::sleep(Duration::from_millis(20));
        m.release_txn(1);
        assert_eq!(h.join().unwrap(), AcquireResult::Granted);
        m.release_txn(2);
    }

    #[test]
    fn deadlock_dooms_exactly_one() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(2, 20, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let ma = m.clone();
        let a = thread::spawn(move || {
            let r = ma.acquire(1, 20, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                ma.release_txn(1);
            }
            r
        });
        let mb = m.clone();
        let b = thread::spawn(move || {
            let r = mb.acquire(2, 10, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                mb.release_txn(2);
            }
            r
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        let deadlocks = [ra, rb]
            .iter()
            .filter(|r| **r == AcquireResult::Deadlock)
            .count();
        assert_eq!(deadlocks, 1, "exactly one victim: got {ra:?}/{rb:?}");
        assert_eq!(
            [ra, rb]
                .iter()
                .filter(|r| **r == AcquireResult::Granted)
                .count(),
            1
        );
        m.release_txn(1);
        m.release_txn(2);
    }

    #[test]
    fn timeout_fires_when_holder_sits() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let r = m.acquire(2, 10, PageMode::Exclusive, Duration::from_millis(30));
        assert_eq!(r, AcquireResult::Timeout);
        // Holder unaffected.
        assert_eq!(m.granted_count(), 1);
        m.release_txn(1);
    }

    #[test]
    fn hammer_counter_with_exclusive_locks() {
        // N threads × K increments on a shared counter guarded by the lock
        // manager: the counter must end exactly N*K — mutual exclusion.
        let m = mgr();
        let counter = Arc::new(AtomicU64::new(0));
        let n_threads = 8u64;
        let k = 50u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(thread::spawn(move || {
                for i in 0..k {
                    let txn = t * k + i + 1;
                    assert_eq!(
                        m.acquire(txn, 1, PageMode::Exclusive, LONG),
                        AcquireResult::Granted
                    );
                    let v = counter.load(Ordering::Relaxed);
                    // Non-atomic read-modify-write, protected only by the
                    // lock manager.
                    std::hint::black_box(&v);
                    counter.store(v + 1, Ordering::Relaxed);
                    m.release_txn(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), n_threads * k);
        m.check_invariants().unwrap();
    }

    #[test]
    fn readers_proceed_in_parallel() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Shared, LONG),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(2, 10, PageMode::Shared, LONG),
            AcquireResult::Granted
        );
        assert_eq!(m.granted_count(), 2);
        m.release_txn(1);
        m.release_txn(2);
    }
}
