//! Blocking façade over the lock table for the threaded runtime.
//!
//! The table is **striped**: resources hash to one of N independently
//! mutexed [`LockTable`] shards, so unrelated acquisitions never contend on
//! a single manager mutex (the convoy the E9 experiment measures). Waiters
//! park on their stripe's condvar. A parked waiter periodically re-runs
//! deadlock detection over a **merged** wait-for snapshot (all stripes
//! locked in index order, held stripe released first — a cycle can span
//! stripes); victims are recorded in a *doomed* set so that every victim —
//! wherever it is parked — wakes up and reports [`AcquireResult::Deadlock`]
//! to its engine, which then aborts the transaction (an *erroneous* abort in
//! the paper's classification, §3.2).
//!
//! Lock ordering: a stripe mutex may be taken while holding nothing, or in
//! ascending index order (merged detection); the doomed set is a leaf taken
//! under at most one stripe. Nothing takes a stripe while holding `doomed`.

use crate::modes::LockMode;
use crate::table::{victims_from_edges, LockOutcome, LockStats, LockTable};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of a blocking acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// Lock granted.
    Granted,
    /// The caller was chosen as a deadlock victim; it must abort.
    Deadlock,
    /// The request timed out; the caller should abort (an erroneous abort).
    Timeout,
}

/// Default stripe count — plenty for the worker-thread counts E9 sweeps.
const DEFAULT_STRIPES: usize = 16;

struct Stripe<R, T, M> {
    table: Mutex<LockTable<R, T, M>>,
    cv: Condvar,
}

/// Thread-safe, blocking, striped lock manager.
pub struct BlockingLockManager<R, T, M> {
    stripes: Vec<Stripe<R, T, M>>,
    /// Deadlock victims not yet aborted; global because a victim may be
    /// parked on any stripe.
    doomed: Mutex<HashSet<T>>,
    /// Victims chosen by the merged detector (per-stripe tables never run
    /// their own detection here).
    victims: AtomicU64,
    /// How often parked waiters re-check for deadlock.
    check_interval: Duration,
}

impl<R, T, M> BlockingLockManager<R, T, M>
where
    R: Copy + Eq + Hash + Debug,
    T: Copy + Eq + Ord + Hash + Debug,
    M: LockMode,
{
    /// A manager with the default stripe count whose parked waiters re-run
    /// deadlock detection every `check_interval`.
    pub fn new(check_interval: Duration) -> Self {
        Self::with_stripes(check_interval, DEFAULT_STRIPES)
    }

    /// A manager sharded into `stripes` independently mutexed tables.
    pub fn with_stripes(check_interval: Duration, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        BlockingLockManager {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    table: Mutex::new(LockTable::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            doomed: Mutex::new(HashSet::new()),
            victims: AtomicU64::new(0),
            check_interval,
        }
    }

    /// Number of stripes (tests/metrics).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, resource: &R) -> &Stripe<R, T, M> {
        let mut h = DefaultHasher::new();
        resource.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Whether `txn`'s grant on `resource` covers `mode` (the promoted mode
    /// covers the request iff combining changes nothing).
    fn covered(table: &LockTable<R, T, M>, txn: T, resource: R, mode: M) -> bool {
        table.holds(txn, resource)
            && table
                .held_mode(txn, resource)
                .is_some_and(|held| held.combine(mode) == held)
    }

    /// Acquire `mode` on `resource` for `txn`, blocking up to `timeout`.
    ///
    /// On `Deadlock`/`Timeout` the queued request is cancelled; locks the
    /// transaction already holds stay held until [`Self::release_txn`] —
    /// the engine's abort path releases them after rollback, preserving
    /// strict 2PL.
    pub fn acquire(&self, txn: T, resource: R, mode: M, timeout: Duration) -> AcquireResult {
        let start = Instant::now();
        let stripe = self.stripe_of(&resource);
        let mut table = stripe.table.lock();
        if self.doomed.lock().contains(&txn) {
            return AcquireResult::Deadlock;
        }
        match table.request(txn, resource, mode) {
            LockOutcome::Granted => return AcquireResult::Granted,
            LockOutcome::Queued => {}
        }
        loop {
            stripe.cv.wait_for(&mut table, self.check_interval);
            if self.doomed.lock().contains(&txn) {
                Self::cancel_wait(stripe, &mut table, txn);
                return AcquireResult::Deadlock;
            }
            if Self::covered(&table, txn, resource, mode) {
                return AcquireResult::Granted;
            }
            // Merged detection needs every stripe; drop ours first so the
            // ascending-order sweep never deadlocks with another detector.
            drop(table);
            self.detect_and_doom();
            table = stripe.table.lock();
            if self.doomed.lock().contains(&txn) {
                Self::cancel_wait(stripe, &mut table, txn);
                return AcquireResult::Deadlock;
            }
            if Self::covered(&table, txn, resource, mode) {
                // Granted while we were detecting.
                return AcquireResult::Granted;
            }
            if start.elapsed() >= timeout {
                Self::cancel_wait(stripe, &mut table, txn);
                return AcquireResult::Timeout;
            }
        }
    }

    /// Run deadlock detection over the merged wait-for snapshot and doom
    /// every victim. Caller must hold **no** stripe lock.
    fn detect_and_doom(&self) {
        let victims = {
            let guards: Vec<MutexGuard<'_, LockTable<R, T, M>>> =
                self.stripes.iter().map(|s| s.table.lock()).collect();
            let mut edges = Vec::new();
            for g in &guards {
                edges.extend(g.wait_for_edges());
            }
            victims_from_edges(&edges)
        };
        if victims.is_empty() {
            return;
        }
        {
            let mut doomed = self.doomed.lock();
            for v in &victims {
                doomed.insert(*v);
            }
        }
        self.victims
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        // A victim may be parked on any stripe.
        for s in &self.stripes {
            s.cv.notify_all();
        }
    }

    /// Remove `txn`'s queued request while **keeping every grant it
    /// holds** — the victim's rollback still needs its locks (strict 2PL).
    /// Wakes anyone the cancellation unblocks.
    fn cancel_wait(stripe: &Stripe<R, T, M>, table: &mut LockTable<R, T, M>, txn: T) {
        let woken = table.cancel_waits(txn);
        if !woken.is_empty() {
            stripe.cv.notify_all();
        }
    }

    /// Release every lock `txn` holds (commit or post-rollback abort).
    pub fn release_txn(&self, txn: T) {
        self.doomed.lock().remove(&txn);
        for stripe in &self.stripes {
            let woken = stripe.table.lock().release_all(txn);
            if !woken.is_empty() {
                stripe.cv.notify_all();
            }
        }
    }

    /// Counters summed across stripes (victims come from the merged
    /// detector).
    pub fn stats(&self) -> LockStats {
        let mut total = LockStats::default();
        for stripe in &self.stripes {
            let s = stripe.table.lock().stats();
            total.requests += s.requests;
            total.immediate += s.immediate;
            total.waits += s.waits;
            total.upgrades += s.upgrades;
            total.victims += s.victims;
        }
        total.victims += self.victims.load(Ordering::Relaxed);
        total
    }

    /// Reset counters.
    pub fn reset_stats(&self) {
        for stripe in &self.stripes {
            stripe.table.lock().reset_stats();
        }
        self.victims.store(0, Ordering::Relaxed);
    }

    /// Number of locks currently granted (for tests/metrics).
    pub fn granted_count(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.table.lock().granted_count())
            .sum()
    }

    /// Invariant check pass-through for property tests. Grant compatibility
    /// is per-resource, and a resource lives on exactly one stripe, so
    /// checking each stripe covers the whole table.
    pub fn check_invariants(&self) -> Result<(), String> {
        for stripe in &self.stripes {
            stripe.table.lock().check_invariants()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::PageMode;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    const LONG: Duration = Duration::from_secs(5);

    fn mgr() -> Arc<BlockingLockManager<u32, u64, PageMode>> {
        Arc::new(BlockingLockManager::new(Duration::from_millis(2)))
    }

    #[test]
    fn uncontended_acquire_is_immediate() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        m.release_txn(1);
    }

    #[test]
    fn waiter_wakes_on_release() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let m2 = m.clone();
        let h = thread::spawn(move || m2.acquire(2, 10, PageMode::Exclusive, LONG));
        thread::sleep(Duration::from_millis(20));
        m.release_txn(1);
        assert_eq!(h.join().unwrap(), AcquireResult::Granted);
        m.release_txn(2);
    }

    #[test]
    fn deadlock_dooms_exactly_one() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(2, 20, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let ma = m.clone();
        let a = thread::spawn(move || {
            let r = ma.acquire(1, 20, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                ma.release_txn(1);
            }
            r
        });
        let mb = m.clone();
        let b = thread::spawn(move || {
            let r = mb.acquire(2, 10, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                mb.release_txn(2);
            }
            r
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        let deadlocks = [ra, rb]
            .iter()
            .filter(|r| **r == AcquireResult::Deadlock)
            .count();
        assert_eq!(deadlocks, 1, "exactly one victim: got {ra:?}/{rb:?}");
        assert_eq!(
            [ra, rb]
                .iter()
                .filter(|r| **r == AcquireResult::Granted)
                .count(),
            1
        );
        m.release_txn(1);
        m.release_txn(2);
    }

    #[test]
    fn cross_stripe_deadlock_is_detected() {
        // Force the two resources onto *different* stripes, so the cycle is
        // invisible to any single stripe's table and only the merged
        // snapshot can see it.
        let m = Arc::new(BlockingLockManager::<u32, u64, PageMode>::with_stripes(
            Duration::from_millis(2),
            4,
        ));
        let (mut r1, mut r2) = (1u32, 2u32);
        'search: for a in 0..1000u32 {
            for b in (a + 1)..1000u32 {
                let s = |r: u32| {
                    let mut h = DefaultHasher::new();
                    r.hash(&mut h);
                    (h.finish() as usize) % 4
                };
                if s(a) != s(b) {
                    (r1, r2) = (a, b);
                    break 'search;
                }
            }
        }
        assert_eq!(
            m.acquire(1, r1, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(2, r2, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let ma = m.clone();
        let a = thread::spawn(move || {
            let r = ma.acquire(1, r2, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                ma.release_txn(1);
            }
            r
        });
        let mb = m.clone();
        let b = thread::spawn(move || {
            let r = mb.acquire(2, r1, PageMode::Exclusive, LONG);
            if r != AcquireResult::Granted {
                mb.release_txn(2);
            }
            r
        });
        let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
        assert_eq!(
            [ra, rb]
                .iter()
                .filter(|r| **r == AcquireResult::Deadlock)
                .count(),
            1,
            "exactly one victim: got {ra:?}/{rb:?}"
        );
        assert!(m.stats().victims >= 1);
        m.release_txn(1);
        m.release_txn(2);
    }

    #[test]
    fn timeout_fires_when_holder_sits() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Exclusive, LONG),
            AcquireResult::Granted
        );
        let r = m.acquire(2, 10, PageMode::Exclusive, Duration::from_millis(30));
        assert_eq!(r, AcquireResult::Timeout);
        // Holder unaffected.
        assert_eq!(m.granted_count(), 1);
        m.release_txn(1);
    }

    #[test]
    fn hammer_counter_with_exclusive_locks() {
        // N threads × K increments on a shared counter guarded by the lock
        // manager: the counter must end exactly N*K — mutual exclusion.
        let m = mgr();
        let counter = Arc::new(AtomicU64::new(0));
        let n_threads = 8u64;
        let k = 50u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(thread::spawn(move || {
                for i in 0..k {
                    let txn = t * k + i + 1;
                    assert_eq!(
                        m.acquire(txn, 1, PageMode::Exclusive, LONG),
                        AcquireResult::Granted
                    );
                    let v = counter.load(Ordering::Relaxed);
                    // Non-atomic read-modify-write, protected only by the
                    // lock manager.
                    std::hint::black_box(&v);
                    counter.store(v + 1, Ordering::Relaxed);
                    m.release_txn(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), n_threads * k);
        m.check_invariants().unwrap();
    }

    #[test]
    fn stripes_do_not_share_a_mutex() {
        // With one holder camped on each of many resources, every stripe's
        // grant is visible through the summed accessors.
        let m = mgr();
        assert!(m.stripe_count() > 1);
        for r in 0..64u32 {
            assert_eq!(
                m.acquire(u64::from(r) + 1, r, PageMode::Exclusive, LONG),
                AcquireResult::Granted
            );
        }
        assert_eq!(m.granted_count(), 64);
        assert_eq!(m.stats().requests, 64);
        for r in 0..64u64 {
            m.release_txn(r + 1);
        }
        assert_eq!(m.granted_count(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn readers_proceed_in_parallel() {
        let m = mgr();
        assert_eq!(
            m.acquire(1, 10, PageMode::Shared, LONG),
            AcquireResult::Granted
        );
        assert_eq!(
            m.acquire(2, 10, PageMode::Shared, LONG),
            AcquireResult::Granted
        );
        assert_eq!(m.granted_count(), 2);
        m.release_txn(1);
        m.release_txn(2);
    }
}
