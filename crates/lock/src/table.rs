//! The sans-blocking lock table.
//!
//! Requests either succeed immediately or join a FIFO queue; nothing ever
//! parks a thread in here. Drivers decide what "waiting" means: the
//! deterministic simulator re-schedules the actor, the blocking wrapper
//! parks on a condvar.
//!
//! Fairness: a request joins the queue if it conflicts with the granted set
//! *or* if anyone is already queued (no barging), except that re-entrant
//! requests and in-place upgrades by a sole holder are always served.
//!
//! Deadlocks are detected on demand from the wait-for graph; victims are the
//! youngest transaction (largest id) on each cycle, matching the common
//! "restart the cheapest" heuristic and keeping tests deterministic.

use crate::modes::LockMode;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held (possibly it already was).
    Granted,
    /// The request joined the wait queue.
    Queued,
}

/// Accounting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total requests.
    pub requests: u64,
    /// Granted without waiting.
    pub immediate: u64,
    /// Requests that had to queue.
    pub waits: u64,
    /// In-place upgrades.
    pub upgrades: u64,
    /// Deadlock victims chosen.
    pub victims: u64,
}

#[derive(Debug)]
struct ResourceState<T, M> {
    /// One entry per holder; a holder's mode is the `combine` of everything
    /// it acquired on this resource.
    granted: Vec<(T, M)>,
    /// FIFO wait queue.
    queue: VecDeque<(T, M)>,
}

impl<T, M> Default for ResourceState<T, M> {
    fn default() -> Self {
        ResourceState {
            granted: Vec::new(),
            queue: VecDeque::new(),
        }
    }
}

/// A lock table over resources `R`, owners `T` and modes `M`.
#[derive(Debug)]
pub struct LockTable<R, T, M> {
    resources: HashMap<R, ResourceState<T, M>>,
    held: HashMap<T, HashSet<R>>,
    stats: LockStats,
}

impl<R, T, M> Default for LockTable<R, T, M>
where
    R: Copy + Eq + Hash + Debug,
    T: Copy + Eq + Ord + Hash + Debug,
    M: LockMode,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<R, T, M> LockTable<R, T, M>
where
    R: Copy + Eq + Hash + Debug,
    T: Copy + Eq + Ord + Hash + Debug,
    M: LockMode,
{
    /// An empty table.
    pub fn new() -> Self {
        LockTable {
            resources: HashMap::new(),
            held: HashMap::new(),
            stats: LockStats::default(),
        }
    }

    /// Request `mode` on `resource` for `txn`.
    pub fn request(&mut self, txn: T, resource: R, mode: M) -> LockOutcome {
        self.stats.requests += 1;
        let state = self.resources.entry(resource).or_default();

        if let Some(pos) = state.granted.iter().position(|(t, _)| *t == txn) {
            let current = state.granted[pos].1;
            let wanted = current.combine(mode);
            if wanted == current {
                // Re-entrant: already covered.
                self.stats.immediate += 1;
                return LockOutcome::Granted;
            }
            // Upgrade: allowed in place iff compatible with every *other*
            // holder. Upgrades do not respect the queue — queued requests
            // conflict with our existing grant anyway, so serving them first
            // would deadlock immediately.
            let ok = state
                .granted
                .iter()
                .all(|(t, m)| *t == txn || wanted.compatible(*m));
            if ok {
                state.granted[pos].1 = wanted;
                self.stats.upgrades += 1;
                self.stats.immediate += 1;
                return LockOutcome::Granted;
            }
            // Upgrades queue at the *front*: they block everyone behind them
            // anyway, and front placement makes the upgrade deadlock (two
            // S-holders both upgrading) visible to the detector.
            state.queue.push_front((txn, wanted));
            self.stats.waits += 1;
            return LockOutcome::Queued;
        }

        let compatible_with_granted = state.granted.iter().all(|(_, m)| mode.compatible(*m));
        if compatible_with_granted && state.queue.is_empty() {
            state.granted.push((txn, mode));
            self.held.entry(txn).or_default().insert(resource);
            self.stats.immediate += 1;
            return LockOutcome::Granted;
        }
        state.queue.push_back((txn, mode));
        self.stats.waits += 1;
        LockOutcome::Queued
    }

    /// Release everything `txn` holds and cancel any wait it has queued.
    /// Returns the transactions newly granted as a result.
    pub fn release_all(&mut self, txn: T) -> Vec<T> {
        let mut woken = Vec::new();
        // Purge the transaction's own queued requests *before* promoting
        // anyone: promotion after the grant removal could otherwise hand a
        // freed resource straight back to the dead transaction's stale
        // queue entry.
        let queued_on: Vec<R> = self
            .resources
            .iter()
            .filter(|(_, s)| s.queue.iter().any(|(t, _)| *t == txn))
            .map(|(r, _)| *r)
            .collect();
        for r in &queued_on {
            if let Some(state) = self.resources.get_mut(r) {
                state.queue.retain(|(t, _)| *t != txn);
            }
        }
        let resources: Vec<R> = self.held.remove(&txn).into_iter().flatten().collect();
        for r in resources {
            if let Some(state) = self.resources.get_mut(&r) {
                state.granted.retain(|(t, _)| *t != txn);
            }
            woken.extend(self.promote(r));
        }
        // Cancelling a queued entry can unblock requests behind it even on
        // resources where nothing was granted to `txn`.
        for r in queued_on {
            woken.extend(self.promote(r));
        }
        woken.sort();
        woken.dedup();
        woken
    }

    /// Cancel `txn`'s queued requests without touching its grants (a
    /// deadlock victim or timed-out waiter keeps its locks until rollback
    /// has finished — strict 2PL). Returns transactions newly granted
    /// because the cancelled entry was blocking them.
    pub fn cancel_waits(&mut self, txn: T) -> Vec<T> {
        let queued_on: Vec<R> = self
            .resources
            .iter()
            .filter(|(_, s)| s.queue.iter().any(|(t, _)| *t == txn))
            .map(|(r, _)| *r)
            .collect();
        let mut woken = Vec::new();
        for r in queued_on {
            if let Some(state) = self.resources.get_mut(&r) {
                state.queue.retain(|(t, _)| *t != txn);
            }
            woken.extend(self.promote(r));
        }
        woken.sort();
        woken.dedup();
        woken
    }

    /// Grant queued requests from the front while they fit.
    fn promote(&mut self, resource: R) -> Vec<T> {
        let mut woken = Vec::new();
        let Some(state) = self.resources.get_mut(&resource) else {
            return woken;
        };
        while let Some(&(txn, mode)) = state.queue.front() {
            // For an upgrade, ignore the requester's own existing grant.
            let ok = state
                .granted
                .iter()
                .all(|(t, m)| *t == txn || mode.compatible(*m));
            if !ok {
                break;
            }
            state.queue.pop_front();
            if let Some(pos) = state.granted.iter().position(|(t, _)| *t == txn) {
                state.granted[pos].1 = state.granted[pos].1.combine(mode);
            } else {
                state.granted.push((txn, mode));
            }
            self.held.entry(txn).or_default().insert(resource);
            woken.push(txn);
        }
        if state.granted.is_empty() && state.queue.is_empty() {
            self.resources.remove(&resource);
        }
        woken
    }

    /// Whether `txn` currently holds a lock on `resource`.
    pub fn holds(&self, txn: T, resource: R) -> bool {
        self.resources
            .get(&resource)
            .is_some_and(|s| s.granted.iter().any(|(t, _)| *t == txn))
    }

    /// The mode `txn` holds on `resource`, if any.
    pub fn held_mode(&self, txn: T, resource: R) -> Option<M> {
        self.resources
            .get(&resource)
            .and_then(|s| s.granted.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m))
    }

    /// Whether `txn` is queued anywhere.
    pub fn is_waiting(&self, txn: T) -> bool {
        self.resources
            .values()
            .any(|s| s.queue.iter().any(|(t, _)| *t == txn))
    }

    /// Resources held by `txn` (empty if none).
    pub fn held_resources(&self, txn: T) -> Vec<R> {
        self.held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of distinct locks currently granted.
    pub fn granted_count(&self) -> usize {
        self.resources.values().map(|s| s.granted.len()).sum()
    }

    /// Build the wait-for graph: an edge `a -> b` when `a`'s queued request
    /// conflicts with `b`'s grant, or `a` is queued behind `b`'s conflicting
    /// queued request (FIFO order is a real dependency).
    pub fn wait_for_edges(&self) -> Vec<(T, T)> {
        let mut edges = Vec::new();
        for state in self.resources.values() {
            for (i, &(waiter, wmode)) in state.queue.iter().enumerate() {
                for &(holder, hmode) in &state.granted {
                    if holder != waiter && !wmode.compatible(hmode) {
                        edges.push((waiter, holder));
                    }
                }
                for &(ahead, amode) in state.queue.iter().take(i) {
                    if ahead != waiter && !wmode.compatible(amode) {
                        edges.push((waiter, ahead));
                    }
                }
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }

    /// Detect deadlocks and pick one victim per cycle (the youngest, i.e.
    /// largest id). The caller must abort the victims — typically via
    /// [`LockTable::release_all`].
    pub fn detect_deadlock_victims(&mut self) -> Vec<T> {
        let out = victims_from_edges(&self.wait_for_edges());
        self.stats.victims += out.len() as u64;
        out
    }

    /// Accounting so far.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Reset accounting.
    pub fn reset_stats(&mut self) {
        self.stats = LockStats::default();
    }

    /// Invariant check used by property tests: no two holders of a resource
    /// have incompatible modes.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (r, state) in &self.resources {
            for (i, &(t1, m1)) in state.granted.iter().enumerate() {
                for &(t2, m2) in state.granted.iter().skip(i + 1) {
                    if t1 != t2 && !m1.compatible(m2) {
                        return Err(format!(
                            "incompatible grants on {r:?}: {t1:?}:{m1:?} vs {t2:?}:{m2:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Pick one victim per cycle (the youngest, i.e. largest id) from a
/// wait-for edge list. Factored out of [`LockTable::detect_deadlock_victims`]
/// so the striped blocking manager can run detection over a **merged**
/// snapshot of several tables' edges (a cycle can span stripes).
pub fn victims_from_edges<T>(edges: &[(T, T)]) -> Vec<T>
where
    T: Copy + Eq + Ord + Hash,
{
    let mut adj: HashMap<T, Vec<T>> = HashMap::new();
    for (a, b) in edges {
        adj.entry(*a).or_default().push(*b);
    }
    // Iterative DFS with colouring; collect one victim per cycle found,
    // then conceptually remove it and keep scanning (a single pass is
    // enough for the small graphs the engines produce; callers re-run
    // detection after aborting victims anyway).
    let mut victims: HashSet<T> = HashSet::new();
    let mut colour: HashMap<T, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let nodes: Vec<T> = {
        let mut n: Vec<T> = adj.keys().copied().collect();
        n.sort();
        n
    };
    for start in nodes {
        if colour.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // stack of (node, next child index)
        let mut stack: Vec<(T, usize)> = vec![(start, 0)];
        colour.insert(start, 1);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(&node).cloned().unwrap_or_default();
            if *idx >= children.len() {
                colour.insert(node, 2);
                stack.pop();
                continue;
            }
            let child = children[*idx];
            *idx += 1;
            if victims.contains(&child) {
                continue; // already scheduled for abort; edge is moot
            }
            match colour.get(&child).copied().unwrap_or(0) {
                0 => {
                    colour.insert(child, 1);
                    stack.push((child, 0));
                }
                1 => {
                    // Found a cycle: everything on the stack from child
                    // to the top participates.
                    let cycle_start = stack
                        .iter()
                        .position(|(n, _)| *n == child)
                        .expect("on-stack node must be in stack");
                    let victim = stack[cycle_start..]
                        .iter()
                        .map(|(n, _)| *n)
                        .max()
                        .expect("cycle is non-empty");
                    victims.insert(victim);
                }
                _ => {}
            }
        }
    }
    let mut out: Vec<T> = victims.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{PageMode, SemanticMode};

    type T = LockTable<u32, u64, PageMode>;

    #[test]
    fn shared_locks_coexist() {
        let mut t = T::new();
        assert_eq!(t.request(1, 10, PageMode::Shared), LockOutcome::Granted);
        assert_eq!(t.request(2, 10, PageMode::Shared), LockOutcome::Granted);
        assert!(t.holds(1, 10) && t.holds(2, 10));
        t.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_conflicts_queue_fifo() {
        let mut t = T::new();
        assert_eq!(t.request(1, 10, PageMode::Exclusive), LockOutcome::Granted);
        assert_eq!(t.request(2, 10, PageMode::Shared), LockOutcome::Queued);
        assert_eq!(t.request(3, 10, PageMode::Shared), LockOutcome::Queued);
        let woken = t.release_all(1);
        assert_eq!(woken, vec![2, 3], "both shared waiters wake together");
        assert!(t.holds(2, 10) && t.holds(3, 10));
    }

    #[test]
    fn no_barging_past_queue() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        t.request(2, 10, PageMode::Exclusive); // queued
                                               // A shared request would be compatible with the grant but must not
                                               // overtake the queued X.
        assert_eq!(t.request(3, 10, PageMode::Shared), LockOutcome::Queued);
        let woken = t.release_all(1);
        assert_eq!(woken, vec![2], "X goes first");
        assert!(!t.holds(3, 10));
        let woken = t.release_all(2);
        assert_eq!(woken, vec![3]);
    }

    #[test]
    fn reentrant_requests_are_free() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        assert_eq!(t.request(1, 10, PageMode::Shared), LockOutcome::Granted);
        assert_eq!(t.granted_count(), 1);
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        assert_eq!(t.request(1, 10, PageMode::Exclusive), LockOutcome::Granted);
        assert_eq!(t.held_mode(1, 10), Some(PageMode::Exclusive));
        assert_eq!(t.stats().upgrades, 1);
    }

    #[test]
    fn contended_upgrade_waits_then_wins() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        t.request(2, 10, PageMode::Shared);
        assert_eq!(t.request(1, 10, PageMode::Exclusive), LockOutcome::Queued);
        let woken = t.release_all(2);
        assert_eq!(woken, vec![1]);
        assert_eq!(t.held_mode(1, 10), Some(PageMode::Exclusive));
    }

    #[test]
    fn upgrade_deadlock_is_detected() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        t.request(2, 10, PageMode::Shared);
        t.request(1, 10, PageMode::Exclusive); // waits on 2
        t.request(2, 10, PageMode::Exclusive); // waits on 1 -> cycle
        let victims = t.detect_deadlock_victims();
        assert_eq!(victims, vec![2], "youngest transaction dies");
        let woken = t.release_all(2);
        assert_eq!(woken, vec![1]);
        assert_eq!(t.held_mode(1, 10), Some(PageMode::Exclusive));
    }

    #[test]
    fn classic_two_resource_deadlock() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Exclusive);
        t.request(2, 20, PageMode::Exclusive);
        t.request(1, 20, PageMode::Exclusive); // 1 waits on 2
        t.request(2, 10, PageMode::Exclusive); // 2 waits on 1
        assert_eq!(t.detect_deadlock_victims(), vec![2]);
    }

    #[test]
    fn no_false_deadlocks_on_chains() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Exclusive);
        t.request(2, 10, PageMode::Exclusive);
        t.request(3, 10, PageMode::Exclusive);
        assert!(t.detect_deadlock_victims().is_empty());
    }

    #[test]
    fn queue_order_dependency_detected() {
        // 1 holds S; 2 queues X; 3 queues S behind 2. 3 waits-for 2.
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        t.request(2, 10, PageMode::Exclusive);
        t.request(3, 10, PageMode::Shared);
        let edges = t.wait_for_edges();
        assert!(edges.contains(&(2, 1)));
        assert!(edges.contains(&(3, 2)));
        assert!(!edges.contains(&(3, 1)), "S does not conflict with S");
    }

    #[test]
    fn release_all_cancels_waits() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Exclusive);
        t.request(2, 10, PageMode::Exclusive);
        assert!(t.is_waiting(2));
        t.release_all(2); // victim aborted while waiting
        assert!(!t.is_waiting(2));
        assert!(t.holds(1, 10));
    }

    #[test]
    fn increment_mode_interleaves_fig8() {
        let mut t: LockTable<u64, u64, SemanticMode> = LockTable::new();
        // Fig. 8: T1 and T2 both increment x (object 1) — no waiting.
        assert_eq!(
            t.request(1, 1, SemanticMode::Increment),
            LockOutcome::Granted
        );
        assert_eq!(
            t.request(2, 1, SemanticMode::Increment),
            LockOutcome::Granted
        );
        // ... but a reader must wait for both.
        assert_eq!(t.request(3, 1, SemanticMode::Read), LockOutcome::Queued);
        t.release_all(1);
        assert!(!t.holds(3, 1));
        let woken = t.release_all(2);
        assert_eq!(woken, vec![3]);
    }

    #[test]
    fn stats_track_activity() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Shared);
        t.request(2, 10, PageMode::Exclusive);
        let s = t.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.immediate, 1);
        assert_eq!(s.waits, 1);
    }

    #[test]
    fn empty_resource_entries_are_cleaned_up() {
        let mut t = T::new();
        t.request(1, 10, PageMode::Exclusive);
        t.release_all(1);
        assert_eq!(t.resources.len(), 0);
    }
}
