//! Buffer pool with clock (second-chance) eviction.
//!
//! The pool caches page frames between operations. It is **volatile**:
//! [`BufferPool::crash`] discards every frame, including dirty ones — the
//! WAL (in `amc-wal`) is what makes committed work survive. The engine
//! layer decides when to flush (force at local commit for the 2PC/ready
//! path; redo-from-log otherwise).
//!
//! Access is scoped: [`BufferPool::with_page`] pins a frame for the duration
//! of a closure, so eviction can never pull a page out from under an
//! in-flight operation.

use crate::disk::StableStorage;
use crate::page::Page;
use amc_types::{AmcError, AmcResult, PageId};
use std::collections::HashMap;

/// Hit/miss/eviction accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Requests served from a resident frame.
    pub hits: u64,
    /// Requests that had to read from stable storage.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back during eviction or flush.
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    pinned: bool,
    referenced: bool,
}

/// A fixed-capacity buffer pool over one [`StableStorage`].
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    /// Clock order: rotated vector of resident page ids.
    clock: Vec<PageId>,
    hand: usize,
    stats: BufferStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` frames (must be ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: Vec::with_capacity(capacity),
            hand: 0,
            stats: BufferStats::default(),
        }
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Accounting so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Reset accounting (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Run `f` with mutable access to the page, faulting it in from `disk`
    /// if necessary (or initializing a fresh page when the slot was never
    /// written). The frame is pinned for the duration of `f`.
    ///
    /// `mark_dirty` must be true when `f` may modify the page.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        disk: &mut StableStorage,
        mark_dirty: bool,
        f: impl FnOnce(&mut Page) -> R,
    ) -> AmcResult<R> {
        self.fault_in(id, disk)?;
        let frame = self.frames.get_mut(&id).expect("just faulted in");
        frame.pinned = true;
        frame.referenced = true;
        if mark_dirty {
            frame.dirty = true;
        }
        let out = f(&mut frame.page);
        let frame = self.frames.get_mut(&id).expect("still resident");
        frame.pinned = false;
        Ok(out)
    }

    /// Bounded retries against injected transient read errors before the
    /// failure is surfaced to the engine. Real buffer managers retry media
    /// errors a few times before declaring the page unreadable.
    const READ_RETRIES: usize = 8;

    fn fault_in(&mut self, id: PageId, disk: &mut StableStorage) -> AmcResult<()> {
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            self.evict_one(disk)?;
        }
        let page = match Self::read_with_retry(id, disk)? {
            Some(page) => page,
            None => Page::new(id),
        };
        self.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                pinned: false,
                referenced: true,
            },
        );
        self.clock.push(id);
        Ok(())
    }

    fn read_with_retry(id: PageId, disk: &mut StableStorage) -> AmcResult<Option<Page>> {
        let mut last = None;
        for _ in 0..Self::READ_RETRIES {
            match disk.read_page(id) {
                Err(AmcError::TransientIo(m)) => last = Some(AmcError::TransientIo(m)),
                other => return other,
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    /// Second-chance eviction: sweep the clock, clearing reference bits,
    /// until an unpinned, unreferenced frame is found.
    fn evict_one(&mut self, disk: &mut StableStorage) -> AmcResult<()> {
        if self.clock.is_empty() {
            return Err(AmcError::BufferExhausted);
        }
        // Two full sweeps guarantee progress unless everything is pinned.
        for _ in 0..self.clock.len() * 2 {
            let idx = self.hand % self.clock.len();
            let id = self.clock[idx];
            let frame = self.frames.get_mut(&id).expect("clock entry resident");
            if frame.pinned {
                self.hand += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                self.hand += 1;
                continue;
            }
            if frame.dirty {
                disk.write_page(&frame.page)?;
                self.stats.writebacks += 1;
            }
            self.frames.remove(&id);
            self.clock.remove(idx);
            // Keep the hand where the removed slot was.
            if !self.clock.is_empty() {
                self.hand %= self.clock.len();
            } else {
                self.hand = 0;
            }
            self.stats.evictions += 1;
            return Ok(());
        }
        Err(AmcError::BufferExhausted)
    }

    /// Write one dirty frame back (no-op if clean or absent).
    pub fn flush_page(&mut self, id: PageId, disk: &mut StableStorage) -> AmcResult<()> {
        if let Some(frame) = self.frames.get_mut(&id) {
            if frame.dirty {
                disk.write_page(&frame.page)?;
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Write every dirty frame back (checkpoint).
    pub fn flush_all(&mut self, disk: &mut StableStorage) -> AmcResult<()> {
        let ids: Vec<PageId> = self.frames.keys().copied().collect();
        for id in ids {
            self.flush_page(id, disk)?;
        }
        Ok(())
    }

    /// Crash: lose every frame, dirty or not. Stable storage is untouched.
    pub fn crash(&mut self) {
        self.frames.clear();
        self.clock.clear();
        self.hand = 0;
    }

    /// Test hook: whether a page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.frames.get(&id).is_some_and(|f| f.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn pid(n: u32) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn read_through_and_hit() {
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        pool.with_page(pid(1), &mut disk, true, |p| {
            p.upsert(obj(1), Value::counter(7)).unwrap();
        })
        .unwrap();
        let v = pool
            .with_page(pid(1), &mut disk, false, |p| p.get(obj(1)))
            .unwrap();
        assert_eq!(v, Some(Value::counter(7)));
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut disk = StableStorage::new(16);
        let mut pool = BufferPool::new(2);
        for i in 0..4u32 {
            pool.with_page(pid(i), &mut disk, true, |p| {
                p.upsert(obj(u64::from(i)), Value::counter(i64::from(i)))
                    .unwrap();
            })
            .unwrap();
        }
        assert!(pool.resident() <= 2);
        assert!(pool.stats().evictions >= 2);
        // Evicted dirty pages must be durable.
        let mut fresh = BufferPool::new(2);
        let v = fresh
            .with_page(pid(0), &mut disk, false, |p| p.get(obj(0)))
            .unwrap();
        assert_eq!(v, Some(Value::counter(0)));
    }

    #[test]
    fn crash_loses_unflushed_updates() {
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        pool.with_page(pid(1), &mut disk, true, |p| {
            p.upsert(obj(1), Value::counter(99)).unwrap();
        })
        .unwrap();
        pool.crash();
        let v = pool
            .with_page(pid(1), &mut disk, false, |p| p.get(obj(1)))
            .unwrap();
        assert_eq!(v, None, "dirty frame must not survive a crash");
    }

    #[test]
    fn flush_makes_updates_durable_across_crash() {
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        pool.with_page(pid(1), &mut disk, true, |p| {
            p.upsert(obj(1), Value::counter(5)).unwrap();
        })
        .unwrap();
        pool.flush_all(&mut disk).unwrap();
        assert!(!pool.is_dirty(pid(1)));
        pool.crash();
        let v = pool
            .with_page(pid(1), &mut disk, false, |p| p.get(obj(1)))
            .unwrap();
        assert_eq!(v, Some(Value::counter(5)));
    }

    #[test]
    fn flush_page_is_selective() {
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        for i in 1..=2u32 {
            pool.with_page(pid(i), &mut disk, true, |p| {
                p.upsert(obj(u64::from(i)), Value::counter(1)).unwrap();
            })
            .unwrap();
        }
        pool.flush_page(pid(1), &mut disk).unwrap();
        assert!(!pool.is_dirty(pid(1)));
        assert!(pool.is_dirty(pid(2)));
    }

    #[test]
    fn single_frame_pool_thrashes_but_works() {
        let mut disk = StableStorage::new(64);
        let mut pool = BufferPool::new(1);
        for i in 0..10u32 {
            pool.with_page(pid(i), &mut disk, true, |p| {
                p.upsert(obj(u64::from(i)), Value::counter(i64::from(i)))
                    .unwrap();
            })
            .unwrap();
        }
        for i in 0..10u32 {
            let v = pool
                .with_page(pid(i), &mut disk, false, |p| p.get(obj(u64::from(i))))
                .unwrap();
            assert_eq!(v, Some(Value::counter(i64::from(i))));
        }
    }

    #[test]
    fn transient_read_errors_are_retried() {
        use crate::fault::FaultConfig;
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        pool.with_page(pid(1), &mut disk, true, |p| {
            p.upsert(obj(1), Value::counter(7)).unwrap();
        })
        .unwrap();
        pool.flush_all(&mut disk).unwrap();
        pool.crash(); // force the next access to hit the disk
        disk.inject_faults(FaultConfig {
            read_error_probability: 0.3,
            lost_write_probability: 0.0,
            seed: 21,
        });
        // At p=0.3 and 8 retries, failing a whole access needs 8 straight
        // misses (p ≈ 7e-5); 20 accesses virtually always succeed.
        for _ in 0..20 {
            pool.crash();
            let v = pool
                .with_page(pid(1), &mut disk, false, |p| p.get(obj(1)))
                .unwrap();
            assert_eq!(v, Some(Value::counter(7)));
        }
        assert!(disk.stats().read_faults > 0, "faults actually fired");
    }

    #[test]
    fn persistent_read_errors_surface() {
        use crate::fault::FaultConfig;
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(4);
        pool.with_page(pid(1), &mut disk, true, |p| {
            p.upsert(obj(1), Value::counter(7)).unwrap();
        })
        .unwrap();
        pool.flush_all(&mut disk).unwrap();
        pool.crash();
        disk.inject_faults(FaultConfig {
            read_error_probability: 1.0,
            lost_write_probability: 0.0,
            seed: 2,
        });
        let err = pool
            .with_page(pid(1), &mut disk, false, |p| p.get(obj(1)))
            .unwrap_err();
        assert!(matches!(err, AmcError::TransientIo(_)), "{err:?}");
    }

    #[test]
    fn stats_reset() {
        let mut disk = StableStorage::new(8);
        let mut pool = BufferPool::new(2);
        pool.with_page(pid(1), &mut disk, false, |_| ()).unwrap();
        assert_ne!(pool.stats(), BufferStats::default());
        pool.reset_stats();
        assert_eq!(pool.stats(), BufferStats::default());
    }
}
