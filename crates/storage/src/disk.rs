//! Simulated stable storage.
//!
//! A flat array of page images with **atomic page writes** (the classical
//! stable-storage assumption the paper inherits from [Gra 78]): a write
//! either fully replaces the page image or does not happen; there are no
//! torn pages. Contents survive crashes — only the buffer pool is volatile.
//!
//! I/O is counted so experiment E4 can report physical writes per protocol.
//!
//! The nemesis can attach a seeded [`FaultConfig`] to a disk: reads then
//! fail transiently with some probability (callers retry — see
//! `BufferPool`), and writes can be silently *lost* (acknowledged but never
//! stored), the classic fault stable-storage constructions mask.

use crate::fault::{FaultConfig, FaultState};
use crate::page::{Page, PAGE_SIZE};
use amc_types::{AmcError, AmcResult, PageId};
use bytes::Bytes;

/// Cumulative I/O statistics for one simulated disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Page images read.
    pub reads: u64,
    /// Page images written.
    pub writes: u64,
    /// Injected transient read errors.
    pub read_faults: u64,
    /// Writes acknowledged but silently lost (injected).
    pub lost_writes: u64,
}

/// A simulated disk holding page images.
#[derive(Debug, Clone)]
pub struct StableStorage {
    pages: Vec<Option<Bytes>>,
    stats: DiskStats,
    faults: Option<FaultState>,
}

impl StableStorage {
    /// A disk with room for `capacity` pages, all initially unallocated.
    pub fn new(capacity: usize) -> Self {
        StableStorage {
            pages: vec![None; capacity],
            stats: DiskStats::default(),
            faults: None,
        }
    }

    /// Attach a seeded fault configuration. Subsequent reads/writes fail
    /// according to its probabilities, deterministically per seed.
    pub fn inject_faults(&mut self, cfg: FaultConfig) {
        self.faults = Some(FaultState::new(cfg));
    }

    /// Detach fault injection; the disk behaves perfectly again.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Number of page slots on the disk.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// Grow the disk if `page` lies beyond the current capacity.
    fn ensure(&mut self, page: PageId) {
        let idx = page.raw() as usize;
        if idx >= self.pages.len() {
            self.pages.resize(idx + 1, None);
        }
    }

    /// Atomically write a page image.
    ///
    /// With faults injected, the write may be silently **lost**: it is
    /// acknowledged (`Ok`) but the previous image stays on the medium —
    /// exactly the failure a caller cannot detect without reading back.
    pub fn write_page(&mut self, page: &Page) -> AmcResult<()> {
        self.ensure(page.id());
        self.stats.writes += 1;
        if let Some(f) = &mut self.faults {
            if f.rng.chance(f.cfg.lost_write_probability) {
                self.stats.lost_writes += 1;
                return Ok(());
            }
        }
        let img = Bytes::copy_from_slice(&page.to_bytes());
        self.pages[page.id().raw() as usize] = Some(img);
        Ok(())
    }

    /// Read and verify a page image. `Ok(None)` when the slot was never
    /// written (a fresh page the store will initialize).
    ///
    /// With faults injected, the read may fail with
    /// [`AmcError::TransientIo`]; retrying redraws the fault dice.
    pub fn read_page(&mut self, id: PageId) -> AmcResult<Option<Page>> {
        if let Some(f) = &mut self.faults {
            if f.rng.chance(f.cfg.read_error_probability) {
                self.stats.read_faults += 1;
                return Err(AmcError::TransientIo(format!(
                    "injected read error on {id}"
                )));
            }
        }
        let idx = id.raw() as usize;
        let Some(Some(img)) = self.pages.get(idx) else {
            return Ok(None);
        };
        self.stats.reads += 1;
        if img.len() != PAGE_SIZE {
            return Err(AmcError::Corruption(format!(
                "stored image for {id} has {} bytes",
                img.len()
            )));
        }
        let page = Page::from_bytes(img)?;
        if page.id() != id {
            return Err(AmcError::Corruption(format!(
                "slot {id} holds page {}",
                page.id()
            )));
        }
        Ok(Some(page))
    }

    /// True when the slot holds a page image.
    pub fn is_allocated(&self, id: PageId) -> bool {
        self.pages
            .get(id.raw() as usize)
            .is_some_and(Option::is_some)
    }

    /// I/O counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset the I/O counters (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Test hook: corrupt one byte of a stored image to exercise checksum
    /// verification.
    pub fn corrupt_page(&mut self, id: PageId, byte_offset: usize) {
        if let Some(Some(img)) = self.pages.get_mut(id.raw() as usize) {
            let mut raw = img.to_vec();
            if byte_offset < raw.len() {
                raw[byte_offset] ^= 0xff;
                *img = Bytes::from(raw);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    #[test]
    fn write_then_read_roundtrips() {
        let mut disk = StableStorage::new(4);
        let mut p = Page::new(PageId::new(2));
        p.upsert(ObjectId::new(9), Value::counter(5)).unwrap();
        disk.write_page(&p).unwrap();
        let back = disk.read_page(PageId::new(2)).unwrap().unwrap();
        assert_eq!(back, p);
        assert_eq!(
            disk.stats(),
            DiskStats {
                reads: 1,
                writes: 1,
                ..DiskStats::default()
            }
        );
    }

    #[test]
    fn unallocated_reads_are_none() {
        let mut disk = StableStorage::new(4);
        assert!(disk.read_page(PageId::new(1)).unwrap().is_none());
        assert!(disk.read_page(PageId::new(100)).unwrap().is_none());
        assert!(!disk.is_allocated(PageId::new(1)));
    }

    #[test]
    fn disk_grows_on_demand() {
        let mut disk = StableStorage::new(1);
        let p = Page::new(PageId::new(10));
        disk.write_page(&p).unwrap();
        assert!(disk.capacity() >= 11);
        assert!(disk.is_allocated(PageId::new(10)));
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let mut disk = StableStorage::new(2);
        let mut p = Page::new(PageId::new(1));
        p.upsert(ObjectId::new(1), Value::counter(1)).unwrap();
        disk.write_page(&p).unwrap();
        p.upsert(ObjectId::new(1), Value::counter(2)).unwrap();
        disk.write_page(&p).unwrap();
        let back = disk.read_page(PageId::new(1)).unwrap().unwrap();
        assert_eq!(back.get(ObjectId::new(1)), Some(Value::counter(2)));
    }

    #[test]
    fn corruption_surfaces_as_error() {
        let mut disk = StableStorage::new(2);
        disk.write_page(&Page::new(PageId::new(1))).unwrap();
        disk.corrupt_page(PageId::new(1), 200);
        assert!(matches!(
            disk.read_page(PageId::new(1)),
            Err(AmcError::Corruption(_))
        ));
    }

    #[test]
    fn injected_read_errors_are_transient() {
        let mut disk = StableStorage::new(2);
        let mut p = Page::new(PageId::new(1));
        p.upsert(ObjectId::new(1), Value::counter(3)).unwrap();
        disk.write_page(&p).unwrap();
        disk.inject_faults(FaultConfig {
            read_error_probability: 0.5,
            lost_write_probability: 0.0,
            seed: 11,
        });
        let mut errors = 0;
        let mut oks = 0;
        for _ in 0..100 {
            match disk.read_page(PageId::new(1)) {
                Err(AmcError::TransientIo(_)) => errors += 1,
                Ok(Some(page)) => {
                    assert_eq!(page.get(ObjectId::new(1)), Some(Value::counter(3)));
                    oks += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(errors > 10 && oks > 10, "errors {errors}, oks {oks}");
        assert_eq!(disk.stats().read_faults, errors);
        disk.clear_faults();
        assert!(disk.read_page(PageId::new(1)).is_ok());
    }

    #[test]
    fn lost_writes_keep_the_old_image() {
        let mut disk = StableStorage::new(2);
        let mut p = Page::new(PageId::new(1));
        p.upsert(ObjectId::new(1), Value::counter(1)).unwrap();
        disk.write_page(&p).unwrap();
        disk.inject_faults(FaultConfig {
            read_error_probability: 0.0,
            lost_write_probability: 1.0,
            seed: 5,
        });
        p.upsert(ObjectId::new(1), Value::counter(2)).unwrap();
        disk.write_page(&p).unwrap(); // acknowledged ...
        assert_eq!(disk.stats().lost_writes, 1);
        disk.clear_faults();
        let back = disk.read_page(PageId::new(1)).unwrap().unwrap();
        assert_eq!(
            back.get(ObjectId::new(1)),
            Some(Value::counter(1)),
            "... but never stored"
        );
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut disk = StableStorage::new(2);
            disk.write_page(&Page::new(PageId::new(1))).unwrap();
            disk.inject_faults(FaultConfig {
                read_error_probability: 0.4,
                lost_write_probability: 0.0,
                seed,
            });
            (0..50)
                .map(|_| disk.read_page(PageId::new(1)).is_err())
                .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds diverge");
    }

    #[test]
    fn wrong_slot_detected() {
        // Write page 3's image, then move it into slot 1 by hand.
        let mut disk = StableStorage::new(4);
        let p = Page::new(PageId::new(3));
        disk.write_page(&p).unwrap();
        let img = disk.pages[3].clone();
        disk.pages[1] = img;
        assert!(matches!(
            disk.read_page(PageId::new(1)),
            Err(AmcError::Corruption(_))
        ));
    }
}
