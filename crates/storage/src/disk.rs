//! Simulated stable storage.
//!
//! A flat array of page images with **atomic page writes** (the classical
//! stable-storage assumption the paper inherits from [Gra 78]): a write
//! either fully replaces the page image or does not happen; there are no
//! torn pages. Contents survive crashes — only the buffer pool is volatile.
//!
//! I/O is counted so experiment E4 can report physical writes per protocol.

use crate::page::{Page, PAGE_SIZE};
use amc_types::{AmcError, AmcResult, PageId};
use bytes::Bytes;

/// Cumulative I/O statistics for one simulated disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Page images read.
    pub reads: u64,
    /// Page images written.
    pub writes: u64,
}

/// A simulated disk holding page images.
#[derive(Debug, Clone)]
pub struct StableStorage {
    pages: Vec<Option<Bytes>>,
    stats: DiskStats,
}

impl StableStorage {
    /// A disk with room for `capacity` pages, all initially unallocated.
    pub fn new(capacity: usize) -> Self {
        StableStorage {
            pages: vec![None; capacity],
            stats: DiskStats::default(),
        }
    }

    /// Number of page slots on the disk.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// Grow the disk if `page` lies beyond the current capacity.
    fn ensure(&mut self, page: PageId) {
        let idx = page.raw() as usize;
        if idx >= self.pages.len() {
            self.pages.resize(idx + 1, None);
        }
    }

    /// Atomically write a page image.
    pub fn write_page(&mut self, page: &Page) -> AmcResult<()> {
        self.ensure(page.id());
        let img = Bytes::copy_from_slice(&page.to_bytes());
        self.pages[page.id().raw() as usize] = Some(img);
        self.stats.writes += 1;
        Ok(())
    }

    /// Read and verify a page image. `Ok(None)` when the slot was never
    /// written (a fresh page the store will initialize).
    pub fn read_page(&mut self, id: PageId) -> AmcResult<Option<Page>> {
        let idx = id.raw() as usize;
        let Some(Some(img)) = self.pages.get(idx) else {
            return Ok(None);
        };
        self.stats.reads += 1;
        if img.len() != PAGE_SIZE {
            return Err(AmcError::Corruption(format!(
                "stored image for {id} has {} bytes",
                img.len()
            )));
        }
        let page = Page::from_bytes(img)?;
        if page.id() != id {
            return Err(AmcError::Corruption(format!(
                "slot {id} holds page {}",
                page.id()
            )));
        }
        Ok(Some(page))
    }

    /// True when the slot holds a page image.
    pub fn is_allocated(&self, id: PageId) -> bool {
        self.pages
            .get(id.raw() as usize)
            .is_some_and(Option::is_some)
    }

    /// I/O counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset the I/O counters (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Test hook: corrupt one byte of a stored image to exercise checksum
    /// verification.
    pub fn corrupt_page(&mut self, id: PageId, byte_offset: usize) {
        if let Some(Some(img)) = self.pages.get_mut(id.raw() as usize) {
            let mut raw = img.to_vec();
            if byte_offset < raw.len() {
                raw[byte_offset] ^= 0xff;
                *img = Bytes::from(raw);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    #[test]
    fn write_then_read_roundtrips() {
        let mut disk = StableStorage::new(4);
        let mut p = Page::new(PageId::new(2));
        p.upsert(ObjectId::new(9), Value::counter(5)).unwrap();
        disk.write_page(&p).unwrap();
        let back = disk.read_page(PageId::new(2)).unwrap().unwrap();
        assert_eq!(back, p);
        assert_eq!(disk.stats(), DiskStats { reads: 1, writes: 1 });
    }

    #[test]
    fn unallocated_reads_are_none() {
        let mut disk = StableStorage::new(4);
        assert!(disk.read_page(PageId::new(1)).unwrap().is_none());
        assert!(disk.read_page(PageId::new(100)).unwrap().is_none());
        assert!(!disk.is_allocated(PageId::new(1)));
    }

    #[test]
    fn disk_grows_on_demand() {
        let mut disk = StableStorage::new(1);
        let p = Page::new(PageId::new(10));
        disk.write_page(&p).unwrap();
        assert!(disk.capacity() >= 11);
        assert!(disk.is_allocated(PageId::new(10)));
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let mut disk = StableStorage::new(2);
        let mut p = Page::new(PageId::new(1));
        p.upsert(ObjectId::new(1), Value::counter(1)).unwrap();
        disk.write_page(&p).unwrap();
        p.upsert(ObjectId::new(1), Value::counter(2)).unwrap();
        disk.write_page(&p).unwrap();
        let back = disk.read_page(PageId::new(1)).unwrap().unwrap();
        assert_eq!(back.get(ObjectId::new(1)), Some(Value::counter(2)));
    }

    #[test]
    fn corruption_surfaces_as_error() {
        let mut disk = StableStorage::new(2);
        disk.write_page(&Page::new(PageId::new(1))).unwrap();
        disk.corrupt_page(PageId::new(1), 200);
        assert!(matches!(
            disk.read_page(PageId::new(1)),
            Err(AmcError::Corruption(_))
        ));
    }

    #[test]
    fn wrong_slot_detected() {
        // Write page 3's image, then move it into slot 1 by hand.
        let mut disk = StableStorage::new(4);
        let p = Page::new(PageId::new(3));
        disk.write_page(&p).unwrap();
        let img = disk.pages[3].clone();
        disk.pages[1] = img;
        assert!(matches!(
            disk.read_page(PageId::new(1)),
            Err(AmcError::Corruption(_))
        ));
    }
}
