//! Seeded disk-fault injection.
//!
//! Real disks fail in two ways a commit protocol must survive: a read can
//! fail transiently (media retry, controller hiccup) and a write can be
//! silently **lost** (acknowledged but never reaching the platter — the
//! fault [Gra 78]'s stable-storage construction exists to mask). The
//! simulator injects both behind a [`FaultConfig`], driven by a local
//! deterministic PRNG so a chaos run reproduces bit-for-bit from its seed.
//!
//! The PRNG is a self-contained splitmix64, deliberately *not* `amc-sim`'s
//! `SimRng`: the storage substrate must stay a leaf crate with no dependency
//! on the simulator (the same crate-independence rule that keeps FNV-1a
//! duplicated between `checksum` and `amc-wal`).

/// Knobs for injected disk faults. All probabilities are per-operation and
/// independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a `read_page` fails with a transient I/O error.
    pub read_error_probability: f64,
    /// Probability that a `write_page` is acknowledged but silently lost.
    pub lost_write_probability: f64,
    /// Seed for the fault PRNG stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            read_error_probability: 0.0,
            lost_write_probability: 0.0,
            seed: 0,
        }
    }
}

/// A tiny deterministic PRNG (splitmix64) for fault decisions.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub(crate) fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `p`.
    pub(crate) fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still consume a draw so enabling/disabling a 100% fault does
            // not shift the stream for later decisions.
            let _ = self.next_u64();
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Live fault state attached to a [`crate::disk::StableStorage`].
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) cfg: FaultConfig,
    pub(crate) rng: FaultRng,
}

impl FaultState {
    pub(crate) fn new(cfg: FaultConfig) -> Self {
        let rng = FaultRng::new(cfg.seed);
        FaultState { cfg, rng }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.chance(0.3), b.chance(0.3));
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut r = FaultRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn mid_probability_is_roughly_calibrated() {
        let mut r = FaultRng::new(7);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
