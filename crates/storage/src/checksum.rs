//! FNV-1a checksums for page and log-record integrity.
//!
//! A cryptographic hash would be overkill: the threat model is torn or
//! stale simulated I/O, not an adversary. FNV-1a is allocation-free,
//! dependency-free and more than strong enough to catch the corruption the
//! test suite injects.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Compute the 64-bit FNV-1a checksum of `data`.
#[inline]
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Incremental FNV-1a hasher for multi-part records.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let base = fnv1a(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(fnv1a(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    proptest! {
        #[test]
        fn incremental_matches_oneshot(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8)) {
            let mut hasher = Fnv1a::new();
            let mut all = Vec::new();
            for chunk in &chunks {
                hasher.update(chunk);
                all.extend_from_slice(chunk);
            }
            prop_assert_eq!(hasher.finish(), fnv1a(&all));
        }
    }
}
