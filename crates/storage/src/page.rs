//! Fixed-size slotted pages.
//!
//! A page stores up to [`Page::CAPACITY`] `(ObjectId, Value)` entries plus a
//! link to an optional overflow page (used by [`crate::store::PageStore`]'s
//! hash-partitioned layout). The on-disk format is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  (b"AMCP")
//! 4       4     page id
//! 8       4     overflow link (u32::MAX = none)
//! 12      2     entry count
//! 14      2     padding (zero)
//! 16      8     FNV-1a checksum over bytes [24, PAGE_SIZE)
//! 24      ...   entries: obj id (8) + value (12), packed
//! ```

use crate::checksum::fnv1a;
use amc_types::{AmcError, AmcResult, ObjectId, PageId, Value};

/// On-disk page size in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Size of the fixed header.
pub const HEADER_SIZE: usize = 24;
/// Size of one packed entry.
pub const ENTRY_SIZE: usize = 8 + 12;

const MAGIC: [u8; 4] = *b"AMCP";
const NO_OVERFLOW: u32 = u32::MAX;

/// An in-memory slotted page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    id: PageId,
    overflow: Option<PageId>,
    entries: Vec<(ObjectId, Value)>,
}

impl Page {
    /// Maximum number of entries a page can hold.
    pub const CAPACITY: usize = (PAGE_SIZE - HEADER_SIZE) / ENTRY_SIZE;

    /// A fresh, empty page.
    pub fn new(id: PageId) -> Self {
        Page {
            id,
            overflow: None,
            entries: Vec::new(),
        }
    }

    /// This page's id.
    #[inline]
    pub fn id(&self) -> PageId {
        self.id
    }

    /// The overflow page chained after this one, if any.
    #[inline]
    pub fn overflow(&self) -> Option<PageId> {
        self.overflow
    }

    /// Set or clear the overflow link.
    pub fn set_overflow(&mut self, next: Option<PageId>) {
        self.overflow = next;
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further entry fits.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= Self::CAPACITY
    }

    /// Look up an object's value on this page (linear scan; pages are small
    /// and hot pages live in the buffer pool).
    pub fn get(&self, obj: ObjectId) -> Option<Value> {
        self.entries
            .iter()
            .find(|(o, _)| *o == obj)
            .map(|(_, v)| *v)
    }

    /// Insert or overwrite an entry. Returns the previous value, or an error
    /// if the page is full and the object is not already present.
    pub fn upsert(&mut self, obj: ObjectId, value: Value) -> AmcResult<Option<Value>> {
        if let Some(slot) = self.entries.iter_mut().find(|(o, _)| *o == obj) {
            let old = slot.1;
            slot.1 = value;
            return Ok(Some(old));
        }
        if self.is_full() {
            return Err(AmcError::InvalidState(format!(
                "page {} full ({} entries)",
                self.id,
                self.entries.len()
            )));
        }
        self.entries.push((obj, value));
        Ok(None)
    }

    /// Remove an entry, returning its value if present.
    pub fn remove(&mut self, obj: ObjectId) -> Option<Value> {
        let pos = self.entries.iter().position(|(o, _)| *o == obj)?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// Iterate over live entries.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Value)> + '_ {
        self.entries.iter().copied()
    }

    /// Serialize to the on-disk format, computing the checksum.
    pub fn to_bytes(&self) -> [u8; PAGE_SIZE] {
        let mut buf = [0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..8].copy_from_slice(&self.id.raw().to_le_bytes());
        let link = self.overflow.map_or(NO_OVERFLOW, PageId::raw);
        buf[8..12].copy_from_slice(&link.to_le_bytes());
        buf[12..14].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let mut off = HEADER_SIZE;
        for (obj, value) in &self.entries {
            buf[off..off + 8].copy_from_slice(&obj.raw().to_le_bytes());
            buf[off + 8..off + 20].copy_from_slice(&value.to_bytes());
            off += ENTRY_SIZE;
        }
        let sum = fnv1a(&buf[HEADER_SIZE..]);
        buf[16..24].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Deserialize from the on-disk format, verifying magic and checksum.
    pub fn from_bytes(bytes: &[u8]) -> AmcResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(AmcError::Corruption(format!(
                "page image is {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        if bytes[0..4] != MAGIC {
            return Err(AmcError::Corruption("bad page magic".into()));
        }
        let stored_sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let actual_sum = fnv1a(&bytes[HEADER_SIZE..]);
        if stored_sum != actual_sum {
            return Err(AmcError::Corruption(format!(
                "checksum mismatch: stored {stored_sum:#x}, computed {actual_sum:#x}"
            )));
        }
        let id = PageId::new(u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")));
        let link = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let overflow = (link != NO_OVERFLOW).then(|| PageId::new(link));
        let count = u16::from_le_bytes(bytes[12..14].try_into().expect("2 bytes")) as usize;
        if count > Self::CAPACITY {
            return Err(AmcError::Corruption(format!(
                "entry count {count} exceeds capacity {}",
                Self::CAPACITY
            )));
        }
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER_SIZE;
        for _ in 0..count {
            let obj = ObjectId::new(u64::from_le_bytes(
                bytes[off..off + 8].try_into().expect("8 bytes"),
            ));
            let value = Value::from_bytes(bytes[off + 8..off + 20].try_into().expect("12 bytes"));
            entries.push((obj, value));
            off += ENTRY_SIZE;
        }
        Ok(Page {
            id,
            overflow,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn capacity_is_sane() {
        assert_eq!(Page::CAPACITY, (4096 - 24) / 20);
        const { assert!(Page::CAPACITY > 100) };
    }

    #[test]
    fn upsert_get_remove() {
        let mut p = Page::new(PageId::new(1));
        assert_eq!(p.upsert(obj(1), Value::counter(10)).unwrap(), None);
        assert_eq!(
            p.upsert(obj(1), Value::counter(20)).unwrap(),
            Some(Value::counter(10))
        );
        assert_eq!(p.get(obj(1)), Some(Value::counter(20)));
        assert_eq!(p.remove(obj(1)), Some(Value::counter(20)));
        assert_eq!(p.get(obj(1)), None);
        assert_eq!(p.remove(obj(1)), None);
    }

    #[test]
    fn full_page_rejects_new_but_accepts_overwrite() {
        let mut p = Page::new(PageId::new(1));
        for i in 0..Page::CAPACITY {
            p.upsert(obj(i as u64), Value::counter(i as i64)).unwrap();
        }
        assert!(p.is_full());
        assert!(p.upsert(obj(999_999), Value::ZERO).is_err());
        // Overwriting an existing entry still works.
        assert!(p.upsert(obj(0), Value::counter(-1)).is_ok());
    }

    #[test]
    fn byte_roundtrip_with_overflow_link() {
        let mut p = Page::new(PageId::new(7));
        p.set_overflow(Some(PageId::new(42)));
        p.upsert(obj(5), Value::tagged(3, 9)).unwrap();
        let back = Page::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.overflow(), Some(PageId::new(42)));
    }

    #[test]
    fn corruption_is_detected() {
        let p = Page::new(PageId::new(1));
        let mut img = p.to_bytes();
        img[100] ^= 0xff;
        assert!(matches!(
            Page::from_bytes(&img),
            Err(AmcError::Corruption(_))
        ));
    }

    #[test]
    fn bad_magic_is_detected() {
        let p = Page::new(PageId::new(1));
        let mut img = p.to_bytes();
        img[0] = b'X';
        assert!(matches!(
            Page::from_bytes(&img),
            Err(AmcError::Corruption(_))
        ));
    }

    #[test]
    fn wrong_length_is_detected() {
        assert!(Page::from_bytes(&[0u8; 100]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random_pages(
            id in any::<u32>(),
            overflow in proptest::option::of(any::<u32>().prop_map(|v| v % (u32::MAX - 1))),
            keys in proptest::collection::btree_set(any::<u64>(), 0..Page::CAPACITY),
        ) {
            let mut p = Page::new(PageId::new(id));
            p.set_overflow(overflow.map(PageId::new));
            for (i, k) in keys.iter().enumerate() {
                p.upsert(ObjectId::new(*k), Value::tagged(i as i64, i as u32)).unwrap();
            }
            let back = Page::from_bytes(&p.to_bytes()).unwrap();
            prop_assert_eq!(back, p);
        }
    }
}
