//! # amc-storage
//!
//! The physical storage substrate underneath every "existing" local database
//! system in the federation. The paper treats local DBMSs as black boxes; to
//! reproduce their behaviour faithfully (page-level access at L0, buffer
//! management, stable vs volatile state across crashes) we build the box
//! from scratch:
//!
//! * [`page::Page`] — a fixed-size slotted page holding `(ObjectId, Value)`
//!   entries, serialized with an FNV-1a checksum.
//! * [`disk::StableStorage`] — a simulated disk with atomic page writes and
//!   I/O accounting. Contents survive crashes.
//! * [`buffer::BufferPool`] — a clock-eviction buffer pool. Contents are
//!   *volatile*: [`buffer::BufferPool::crash`] drops everything, modelling a
//!   site failure.
//! * [`store::PageStore`] — a hash-partitioned object store with overflow
//!   chaining, the engine-facing API (`get`/`put`/`remove`).
//!
//! Crash semantics matter here because both alternative commitment protocols
//! hinge on them: commit-after must redo local transactions lost in a crash
//! (§3.2) and commit-before must answer `prepare` with *aborted* after local
//! restart recovery (§3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod checksum;
pub mod disk;
pub mod fault;
pub mod page;
pub mod store;

pub use buffer::BufferPool;
pub use disk::StableStorage;
pub use fault::FaultConfig;
pub use page::Page;
pub use store::PageStore;
