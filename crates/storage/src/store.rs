//! Hash-partitioned object store with overflow chaining.
//!
//! Layout on the simulated disk:
//!
//! * page 0 — metadata (bucket count, allocation cursor), stored as ordinary
//!   entries so the page machinery (checksums, atomic writes) covers it;
//! * pages `1..=buckets` — bucket heads; object `o` hashes to bucket
//!   `o mod buckets`;
//! * pages `> buckets` — overflow pages, allocated from the cursor and
//!   chained from their bucket via each page's overflow link.
//!
//! The store is the page-level (L0) interface the local engines use. It has
//! **no transactional semantics of its own** — atomicity and durability of
//! engine transactions come from the WAL on top.

use crate::buffer::{BufferPool, BufferStats};
use crate::disk::{DiskStats, StableStorage};
use amc_types::{AmcResult, ObjectId, PageId, Value};

const META_PAGE: PageId = PageId::new(0);
const META_BUCKETS: ObjectId = ObjectId::new(0);
const META_CURSOR: ObjectId = ObjectId::new(1);

/// A persistent object store: `ObjectId -> Value`.
#[derive(Debug)]
pub struct PageStore {
    disk: StableStorage,
    pool: BufferPool,
    buckets: u32,
    next_free: u32,
}

impl PageStore {
    /// Create a fresh store with `buckets` hash buckets and a buffer pool of
    /// `pool_frames` frames, or recover an existing one from `disk`.
    pub fn open(mut disk: StableStorage, buckets: u32, pool_frames: usize) -> AmcResult<Self> {
        assert!(buckets >= 1, "need at least one bucket");
        let mut pool = BufferPool::new(pool_frames);
        let (buckets, next_free) = if disk.is_allocated(META_PAGE) {
            let (b, n) = pool.with_page(META_PAGE, &mut disk, false, |meta| {
                (
                    meta.get(META_BUCKETS).map(|v| v.counter as u32),
                    meta.get(META_CURSOR).map(|v| v.counter as u32),
                )
            })?;
            match (b, n) {
                (Some(b), Some(n)) => (b, n),
                _ => {
                    return Err(amc_types::AmcError::Corruption(
                        "meta page missing fields".into(),
                    ))
                }
            }
        } else {
            let next_free = buckets + 1;
            pool.with_page(META_PAGE, &mut disk, true, |meta| {
                meta.upsert(META_BUCKETS, Value::counter(i64::from(buckets)))?;
                meta.upsert(META_CURSOR, Value::counter(i64::from(next_free)))?;
                Ok::<(), amc_types::AmcError>(())
            })??;
            pool.flush_page(META_PAGE, &mut disk)?;
            (buckets, next_free)
        };
        Ok(PageStore {
            disk,
            pool,
            buckets,
            next_free,
        })
    }

    /// Convenience constructor over a fresh disk.
    pub fn new(buckets: u32, pool_frames: usize) -> Self {
        Self::open(
            StableStorage::new(buckets as usize + 8),
            buckets,
            pool_frames,
        )
        .expect("fresh store cannot fail to open")
    }

    /// The bucket-head page an object hashes to. Exposed so the engines can
    /// use page ids as the L0 locking granule.
    pub fn page_of(&self, obj: ObjectId) -> PageId {
        // Objects 0/1 on the meta page are internal; user objects start at
        // bucket pages. A simple multiplicative scramble avoids pathological
        // clustering of consecutive ids while staying deterministic.
        let h = obj.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        PageId::new(1 + (h % u64::from(self.buckets)) as u32)
    }

    /// Read an object's value.
    pub fn get(&mut self, obj: ObjectId) -> AmcResult<Option<Value>> {
        let mut pid = self.page_of(obj);
        loop {
            let (found, next) = self
                .pool
                .with_page(pid, &mut self.disk, false, |p| (p.get(obj), p.overflow()))?;
            if found.is_some() {
                return Ok(found);
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(None),
            }
        }
    }

    /// Insert or overwrite an object, returning the previous value.
    pub fn put(&mut self, obj: ObjectId, value: Value) -> AmcResult<Option<Value>> {
        let head = self.page_of(obj);
        // Pass 1: overwrite in place if present anywhere on the chain.
        let mut pid = head;
        loop {
            enum Hit {
                Replaced(Option<Value>),
                Next(PageId),
                EndOfChain,
            }
            let hit = self.pool.with_page(pid, &mut self.disk, true, |p| {
                if p.get(obj).is_some() {
                    let old = p.upsert(obj, value).expect("overwrite cannot overflow");
                    Hit::Replaced(old)
                } else {
                    match p.overflow() {
                        Some(n) => Hit::Next(n),
                        None => Hit::EndOfChain,
                    }
                }
            })?;
            match hit {
                Hit::Replaced(old) => return Ok(old),
                Hit::Next(n) => pid = n,
                Hit::EndOfChain => break,
            }
        }
        // Pass 2: insert into the first page on the chain with space.
        let mut pid = head;
        loop {
            enum Ins {
                Done,
                Next(PageId),
                NeedOverflow,
            }
            let ins = self.pool.with_page(pid, &mut self.disk, true, |p| {
                if !p.is_full() {
                    p.upsert(obj, value).expect("space was checked");
                    Ins::Done
                } else {
                    match p.overflow() {
                        Some(n) => Ins::Next(n),
                        None => Ins::NeedOverflow,
                    }
                }
            })?;
            match ins {
                Ins::Done => return Ok(None),
                Ins::Next(n) => pid = n,
                Ins::NeedOverflow => {
                    let fresh = self.allocate_page()?;
                    self.pool.with_page(pid, &mut self.disk, true, |p| {
                        p.set_overflow(Some(fresh));
                    })?;
                    self.pool.with_page(fresh, &mut self.disk, true, |p| {
                        p.upsert(obj, value).expect("fresh page has space");
                    })?;
                    return Ok(None);
                }
            }
        }
    }

    /// Remove an object, returning its value if it was present.
    pub fn remove(&mut self, obj: ObjectId) -> AmcResult<Option<Value>> {
        let mut pid = self.page_of(obj);
        loop {
            let (removed, next) = self
                .pool
                .with_page(pid, &mut self.disk, true, |p| (p.remove(obj), p.overflow()))?;
            if removed.is_some() {
                return Ok(removed);
            }
            match next {
                Some(n) => pid = n,
                None => return Ok(None),
            }
        }
    }

    fn allocate_page(&mut self) -> AmcResult<PageId> {
        let fresh = PageId::new(self.next_free);
        self.next_free += 1;
        let cursor = self.next_free;
        self.pool
            .with_page(META_PAGE, &mut self.disk, true, |meta| {
                meta.upsert(META_CURSOR, Value::counter(i64::from(cursor)))
                    .expect("meta page never fills");
            })?;
        Ok(fresh)
    }

    /// Flush every dirty buffer frame (checkpoint / force).
    pub fn flush(&mut self) -> AmcResult<()> {
        self.pool.flush_all(&mut self.disk)
    }

    /// Flush only the page holding `obj` (plus its chain is *not* needed —
    /// callers that force specific updates know which page they touched).
    pub fn flush_object_page(&mut self, obj: ObjectId) -> AmcResult<()> {
        let mut pid = self.page_of(obj);
        loop {
            self.pool.flush_page(pid, &mut self.disk)?;
            let next = self
                .pool
                .with_page(pid, &mut self.disk, false, |p| p.overflow())?;
            match next {
                Some(n) => pid = n,
                None => return Ok(()),
            }
        }
    }

    /// Simulate a site crash: volatile state is lost, stable state kept.
    pub fn crash(&mut self) {
        self.pool.crash();
    }

    /// Combined I/O and buffer statistics.
    pub fn stats(&self) -> (DiskStats, BufferStats) {
        (self.disk.stats(), self.pool.stats())
    }

    /// Reset statistics counters.
    pub fn reset_stats(&mut self) {
        self.disk.reset_stats();
        self.pool.reset_stats();
    }

    /// Enumerate all user objects (test/verification helper; scans every
    /// allocated page).
    pub fn scan(&mut self) -> AmcResult<Vec<(ObjectId, Value)>> {
        let mut out = Vec::new();
        for b in 1..=self.buckets {
            let mut pid = PageId::new(b);
            loop {
                let (mut entries, next) = self.pool.with_page(pid, &mut self.disk, false, |p| {
                    (p.iter().collect::<Vec<_>>(), p.overflow())
                })?;
                out.append(&mut entries);
                match next {
                    Some(n) => pid = n,
                    None => break,
                }
            }
        }
        out.sort_by_key(|(o, _)| *o);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = PageStore::new(4, 8);
        assert_eq!(s.put(obj(10), Value::counter(1)).unwrap(), None);
        assert_eq!(s.get(obj(10)).unwrap(), Some(Value::counter(1)));
        assert_eq!(
            s.put(obj(10), Value::counter(2)).unwrap(),
            Some(Value::counter(1))
        );
        assert_eq!(s.remove(obj(10)).unwrap(), Some(Value::counter(2)));
        assert_eq!(s.get(obj(10)).unwrap(), None);
    }

    #[test]
    fn overflow_chains_grow_and_serve() {
        // One bucket forces every object onto one chain.
        let mut s = PageStore::new(1, 4);
        let n = Page::CAPACITY * 3;
        for i in 0..n {
            s.put(obj(i as u64 + 10), Value::counter(i as i64)).unwrap();
        }
        for i in 0..n {
            assert_eq!(
                s.get(obj(i as u64 + 10)).unwrap(),
                Some(Value::counter(i as i64)),
                "object {i}"
            );
        }
    }

    #[test]
    fn flush_then_crash_preserves_data() {
        let mut s = PageStore::new(4, 8);
        for i in 0..50u64 {
            s.put(obj(i + 10), Value::counter(i as i64)).unwrap();
        }
        s.flush().unwrap();
        s.crash();
        for i in 0..50u64 {
            assert_eq!(s.get(obj(i + 10)).unwrap(), Some(Value::counter(i as i64)));
        }
    }

    #[test]
    fn crash_without_flush_loses_buffered_updates() {
        let mut s = PageStore::new(4, 64);
        s.put(obj(10), Value::counter(1)).unwrap();
        s.flush().unwrap();
        s.put(obj(10), Value::counter(2)).unwrap();
        s.crash();
        assert_eq!(s.get(obj(10)).unwrap(), Some(Value::counter(1)));
    }

    #[test]
    fn reopen_from_same_disk_recovers_meta() {
        let mut s = PageStore::new(2, 4);
        let n = Page::CAPACITY + 5; // force at least one overflow allocation
        for i in 0..n {
            s.put(obj(i as u64 + 10), Value::counter(i as i64)).unwrap();
        }
        s.flush().unwrap();
        let disk = s.disk.clone();
        let mut reopened = PageStore::open(disk, 2, 4).unwrap();
        for i in 0..n {
            assert_eq!(
                reopened.get(obj(i as u64 + 10)).unwrap(),
                Some(Value::counter(i as i64))
            );
        }
        // Allocation cursor must have been recovered: new inserts must not
        // clobber existing overflow pages.
        for i in 0..Page::CAPACITY {
            reopened
                .put(obj(i as u64 + 100_000), Value::counter(-1))
                .unwrap();
        }
        for i in 0..n {
            assert_eq!(
                reopened.get(obj(i as u64 + 10)).unwrap(),
                Some(Value::counter(i as i64))
            );
        }
    }

    #[test]
    fn scan_returns_everything_sorted() {
        let mut s = PageStore::new(3, 8);
        for i in [30u64, 10, 20] {
            s.put(obj(i), Value::counter(i as i64)).unwrap();
        }
        let all = s.scan().unwrap();
        assert_eq!(
            all,
            vec![
                (obj(10), Value::counter(10)),
                (obj(20), Value::counter(20)),
                (obj(30), Value::counter(30)),
            ]
        );
    }

    #[test]
    fn page_of_is_stable_and_in_range() {
        let s = PageStore::new(7, 4);
        for i in 0..100u64 {
            let p = s.page_of(obj(i));
            assert_eq!(p, s.page_of(obj(i)));
            assert!(p.raw() >= 1 && p.raw() <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random op sequences agree with a HashMap model. Crash semantics
        /// are page-granular: eviction may persist updates before an
        /// explicit flush, so after a crash each key must hold one of the
        /// values written since the last flush (or the flushed value) — we
        /// track the set of *possible* post-crash values per key.
        #[test]
        fn store_matches_model(
            ops in proptest::collection::vec((0u8..5, 2u64..40, any::<i64>()), 1..200),
            buckets in 1u32..6,
            frames in 2usize..10,
        ) {
            let mut store = PageStore::new(buckets, frames);
            let mut model: HashMap<u64, i64> = HashMap::new();
            // key -> values that could legally survive a crash (None = absent).
            let mut possible: HashMap<u64, Vec<Option<i64>>> = HashMap::new();
            for (kind, key, val) in ops {
                // Keep keys clear of the meta ids by offsetting.
                let k = key + 100;
                let o = obj(k);
                match kind {
                    0 => {
                        let got = store.get(o).unwrap().map(|v| v.counter);
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                    1 => {
                        store.put(o, Value::counter(val)).unwrap();
                        model.insert(k, val);
                        possible.entry(k).or_insert_with(|| vec![None]).push(Some(val));
                    }
                    2 => {
                        let got = store.remove(o).unwrap().map(|v| v.counter);
                        prop_assert_eq!(got, model.remove(&k));
                        possible.entry(k).or_insert_with(|| vec![None]).push(None);
                    }
                    3 => {
                        store.flush().unwrap();
                        // After a flush only the current state can survive.
                        possible.clear();
                        for (k, v) in &model {
                            possible.insert(*k, vec![Some(*v)]);
                        }
                    }
                    _ => {
                        store.crash();
                        let surviving: HashMap<u64, i64> = store
                            .scan()
                            .unwrap()
                            .into_iter()
                            .map(|(o, v)| (o.raw(), v.counter))
                            .collect();
                        for (k, got) in &surviving {
                            let allowed = possible.get(k).cloned().unwrap_or_else(|| vec![None]);
                            prop_assert!(
                                allowed.contains(&Some(*got)),
                                "key {} held {} after crash; allowed {:?}",
                                k, got, allowed
                            );
                        }
                        // Keys absent after the crash must have None as a
                        // possible state.
                        for (k, allowed) in &possible {
                            if !surviving.contains_key(k) {
                                prop_assert!(
                                    allowed.contains(&None),
                                    "key {} vanished after crash; allowed {:?}",
                                    k, allowed
                                );
                            }
                        }
                        model = surviving.clone();
                        possible.clear();
                        for (k, v) in &model {
                            possible.insert(*k, vec![Some(*v)]);
                        }
                    }
                }
            }
        }
    }
}
