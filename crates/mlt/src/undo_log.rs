//! The central L1 undo-log.
//!
//! §4.3: "the L1 undo-log can be used to undo local L0 transactions which
//! have to be undone due to the global decision" — and §3.3 allows the
//! undo-log to live "in the global system". This is that component: as a
//! global transaction executes, the global transaction manager appends the
//! inverse of every update action (per site); on a global abort it emits
//! one inverse *program* per site, in reverse execution order.

use amc_types::{GlobalTxnId, Operation, SiteId};
use std::collections::{BTreeMap, HashMap};

/// One logged inverse action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoEntry {
    /// Site where the forward action ran.
    pub site: SiteId,
    /// The inverse action.
    pub inverse: Operation,
}

/// The central undo-log.
#[derive(Debug, Default)]
pub struct CentralUndoLog {
    entries: HashMap<GlobalTxnId, Vec<UndoEntry>>,
}

impl CentralUndoLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an inverse action, in forward execution order.
    pub fn record(&mut self, gtx: GlobalTxnId, site: SiteId, inverse: Operation) {
        self.entries
            .entry(gtx)
            .or_default()
            .push(UndoEntry { site, inverse });
    }

    /// Number of entries logged for `gtx`.
    pub fn len(&self, gtx: GlobalTxnId) -> usize {
        self.entries.get(&gtx).map_or(0, Vec::len)
    }

    /// True when nothing is logged for `gtx`.
    pub fn is_empty(&self, gtx: GlobalTxnId) -> bool {
        self.len(gtx) == 0
    }

    /// The per-site inverse programs, each in **reverse** execution order
    /// (undo walks backwards through the forward history).
    pub fn inverse_programs(&self, gtx: GlobalTxnId) -> BTreeMap<SiteId, Vec<Operation>> {
        let mut out: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        if let Some(entries) = self.entries.get(&gtx) {
            for e in entries.iter().rev() {
                out.entry(e.site).or_default().push(e.inverse);
            }
        }
        out
    }

    /// Drop the log of a finished transaction.
    pub fn forget(&mut self, gtx: GlobalTxnId) {
        self.entries.remove(&gtx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }
    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }
    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn programs_are_per_site_and_reversed() {
        let mut log = CentralUndoLog::new();
        log.record(
            gtx(1),
            site(1),
            Operation::Increment {
                obj: obj(1),
                delta: -5,
            },
        );
        log.record(gtx(1), site(2), Operation::Delete { obj: obj(9) });
        log.record(
            gtx(1),
            site(1),
            Operation::Write {
                obj: obj(2),
                value: Value::counter(7),
            },
        );
        let programs = log.inverse_programs(gtx(1));
        assert_eq!(
            programs.get(&site(1)).unwrap(),
            &vec![
                Operation::Write {
                    obj: obj(2),
                    value: Value::counter(7)
                },
                Operation::Increment {
                    obj: obj(1),
                    delta: -5
                },
            ],
            "site 1's inverses come out newest-first"
        );
        assert_eq!(
            programs.get(&site(2)).unwrap(),
            &vec![Operation::Delete { obj: obj(9) }]
        );
    }

    #[test]
    fn transactions_are_isolated() {
        let mut log = CentralUndoLog::new();
        log.record(gtx(1), site(1), Operation::Delete { obj: obj(1) });
        log.record(gtx(2), site(1), Operation::Delete { obj: obj(2) });
        assert_eq!(log.len(gtx(1)), 1);
        assert_eq!(log.len(gtx(2)), 1);
        assert!(log.inverse_programs(gtx(1)).get(&site(1)).unwrap().len() == 1);
    }

    #[test]
    fn forget_clears() {
        let mut log = CentralUndoLog::new();
        log.record(gtx(1), site(1), Operation::Delete { obj: obj(1) });
        log.forget(gtx(1));
        assert!(log.is_empty(gtx(1)));
        assert!(log.inverse_programs(gtx(1)).is_empty());
    }

    #[test]
    fn unknown_gtx_yields_empty_program() {
        let log = CentralUndoLog::new();
        assert!(log.inverse_programs(gtx(42)).is_empty());
        assert!(log.is_empty(gtx(42)));
    }
}
