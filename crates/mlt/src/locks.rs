//! The L1 (global) lock manager.
//!
//! A policy wrapper over the generic blocking lock manager: object-grained,
//! owned by global transactions, with modes chosen from operation semantics.
//! Strict two-phase at L1: the protocols release a global transaction's L1
//! locks only at its global end (commit after undo/redo obligations are
//! discharged), which is what enforces both §3.2's and §3.3's
//! serializability requirements.
//!
//! [`ConflictPolicy`] selects between the semantic matrix (the paper's
//! proposal) and a read/write-only projection (the E7 ablation, i.e. what a
//! system ignorant of commutativity would do).

use amc_lock::blocking::AcquireResult;
use amc_lock::{BlockingLockManager, LockStats, SemanticMode};
use amc_obs::{EventKind, ObsSink};
use amc_types::{GlobalTxnId, ObjectId, Operation, SiteId};
use std::time::Duration;

/// How L1 modes are derived from operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Commutativity-based modes (§4.1): increments are compatible.
    Semantic,
    /// Read/write projection: every update is a writer (ablation baseline).
    ReadWriteOnly,
}

impl ConflictPolicy {
    /// The L1 mode an operation needs under this policy.
    pub fn mode_for(&self, op: &Operation) -> SemanticMode {
        match self {
            ConflictPolicy::Semantic => SemanticMode::for_operation(op),
            ConflictPolicy::ReadWriteOnly => SemanticMode::for_operation_rw_only(op),
        }
    }
}

/// Blocking L1 lock manager for global transactions.
pub struct L1LockManager {
    inner: BlockingLockManager<ObjectId, GlobalTxnId, SemanticMode>,
    policy: ConflictPolicy,
    timeout: Duration,
    obs: ObsSink,
}

impl L1LockManager {
    /// New manager with the given conflict policy and acquisition timeout.
    pub fn new(policy: ConflictPolicy, timeout: Duration) -> Self {
        L1LockManager {
            inner: BlockingLockManager::new(Duration::from_millis(2)),
            policy,
            timeout,
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink; acquisitions emit lock wait/grant
    /// events attributed to the central system (L1 lives there).
    pub fn set_obs(&mut self, sink: ObsSink) {
        self.obs = sink;
    }

    fn acquire_observed(
        &self,
        gtx: GlobalTxnId,
        obj: ObjectId,
        mode: SemanticMode,
    ) -> AcquireResult {
        if self.obs.is_enabled() {
            self.obs
                .emit(Some(gtx), SiteId::new(0), EventKind::LockWait { obj });
        }
        let result = self.inner.acquire(gtx, obj, mode, self.timeout);
        if self.obs.is_enabled() {
            self.obs.emit(
                Some(gtx),
                SiteId::new(0),
                EventKind::LockGrant {
                    obj,
                    granted: result == AcquireResult::Granted,
                },
            );
        }
        result
    }

    /// The active policy.
    pub fn policy(&self) -> ConflictPolicy {
        self.policy
    }

    /// Acquire the L1 lock `op` needs for `gtx`. Blocks; returns the raw
    /// acquire result so callers can map deadlock/timeout to a global
    /// abort.
    pub fn acquire_for(&self, gtx: GlobalTxnId, op: &Operation) -> AcquireResult {
        self.acquire_observed(gtx, op.object(), self.policy.mode_for(op))
    }

    /// Acquire an explicit mode on an object. Callers that know a
    /// transaction's whole access set fold the per-operation modes with
    /// [`amc_lock::LockMode::combine`] and acquire each object **once** at
    /// its strongest mode — upgrades (and the classic upgrade deadlock)
    /// then cannot occur at L1.
    pub fn acquire_mode(
        &self,
        gtx: GlobalTxnId,
        obj: ObjectId,
        mode: SemanticMode,
    ) -> AcquireResult {
        self.acquire_observed(gtx, obj, mode)
    }

    /// Release every L1 lock of `gtx` — only at global end (strict 2PL at
    /// L1).
    pub fn release_all(&self, gtx: GlobalTxnId) {
        self.inner.release_txn(gtx);
    }

    /// Locks currently granted (metrics).
    pub fn granted_count(&self) -> usize {
        self.inner.granted_count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LockStats {
        self.inner.stats()
    }

    /// Invariant pass-through for property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Value;
    use std::sync::Arc;
    use std::time::Duration;

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }
    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    fn incr(o: u64) -> Operation {
        Operation::Increment {
            obj: obj(o),
            delta: 1,
        }
    }
    fn write(o: u64) -> Operation {
        Operation::Write {
            obj: obj(o),
            value: Value::ZERO,
        }
    }

    #[test]
    fn fig8_increments_interleave_under_semantic_policy() {
        let m = L1LockManager::new(ConflictPolicy::Semantic, Duration::from_millis(50));
        assert_eq!(m.acquire_for(gtx(1), &incr(1)), AcquireResult::Granted);
        assert_eq!(m.acquire_for(gtx(2), &incr(1)), AcquireResult::Granted);
        assert_eq!(
            m.granted_count(),
            2,
            "both transactions hold the increment lock"
        );
        m.release_all(gtx(1));
        m.release_all(gtx(2));
    }

    #[test]
    fn rw_only_policy_blocks_concurrent_increments() {
        let m = Arc::new(L1LockManager::new(
            ConflictPolicy::ReadWriteOnly,
            Duration::from_millis(30),
        ));
        assert_eq!(m.acquire_for(gtx(1), &incr(1)), AcquireResult::Granted);
        // Under the ablation policy the second increment must wait (and here
        // time out, since nobody releases).
        assert_eq!(m.acquire_for(gtx(2), &incr(1)), AcquireResult::Timeout);
        m.release_all(gtx(1));
        m.release_all(gtx(2));
    }

    #[test]
    fn writers_block_under_both_policies() {
        for policy in [ConflictPolicy::Semantic, ConflictPolicy::ReadWriteOnly] {
            let m = L1LockManager::new(policy, Duration::from_millis(20));
            assert_eq!(m.acquire_for(gtx(1), &write(1)), AcquireResult::Granted);
            assert_eq!(m.acquire_for(gtx(2), &write(1)), AcquireResult::Timeout);
            m.release_all(gtx(1));
            m.release_all(gtx(2));
        }
    }

    #[test]
    fn different_objects_never_conflict() {
        let m = L1LockManager::new(ConflictPolicy::ReadWriteOnly, Duration::from_millis(20));
        assert_eq!(m.acquire_for(gtx(1), &write(1)), AcquireResult::Granted);
        assert_eq!(m.acquire_for(gtx(2), &write(2)), AcquireResult::Granted);
        m.release_all(gtx(1));
        m.release_all(gtx(2));
    }

    #[test]
    fn lock_events_flow_to_attached_sink() {
        let sink = ObsSink::enabled(16);
        let mut m = L1LockManager::new(ConflictPolicy::ReadWriteOnly, Duration::from_millis(10));
        m.set_obs(sink.clone());
        assert_eq!(m.acquire_for(gtx(1), &write(1)), AcquireResult::Granted);
        assert_eq!(m.acquire_for(gtx(2), &write(1)), AcquireResult::Timeout);
        m.release_all(gtx(1));
        let kinds: Vec<String> = sink
            .snapshot()
            .events()
            .map(|e| format!("{}:{}", e.txn.unwrap(), e.kind.label()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                "G1:lock-wait",
                "G1:lock-grant",
                "G2:lock-wait",
                "G2:lock-grant"
            ]
        );
        let rejected = sink
            .snapshot()
            .events()
            .any(|e| matches!(e.kind, EventKind::LockGrant { granted: false, .. }));
        assert!(rejected, "the timeout must surface as a rejected grant");
    }

    #[test]
    fn release_wakes_waiter() {
        let m = Arc::new(L1LockManager::new(
            ConflictPolicy::Semantic,
            Duration::from_secs(5),
        ));
        assert_eq!(m.acquire_for(gtx(1), &write(1)), AcquireResult::Granted);
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.acquire_for(gtx(2), &write(1)));
        std::thread::sleep(Duration::from_millis(20));
        m.release_all(gtx(1));
        assert_eq!(h.join().unwrap(), AcquireResult::Granted);
        m.release_all(gtx(2));
    }
}
