//! Inverse L1 actions.
//!
//! §4.1: "at each level Li an action is undone by executing the according
//! inverse Li action". The inverse of an increment is a decrement — and
//! needs **no** before image, which is exactly why commutative operations
//! are cheap to undo. State-overwriting actions (`Write`, `Delete`) need
//! the before image captured at execution time.

use amc_types::{Operation, Value};

/// Whether computing the inverse of `op` requires the value observed
/// *before* the operation executed.
///
/// The commit-before communication manager uses this to decide when it must
/// issue a capture read in front of an update — the per-operation cost that
/// the E7 ablation charges against non-commutative workloads.
pub fn needs_before_image(op: &Operation) -> bool {
    matches!(op, Operation::Write { .. } | Operation::Delete { .. })
}

/// The inverse of `op`, given the before image when one is needed.
///
/// Returns `None` for `Read` (nothing to undo).
///
/// # Panics
/// When `before` is `None` but [`needs_before_image`] is true — the caller
/// failed to capture undo information, which is a protocol bug, not a
/// runtime condition.
pub fn inverse_of(op: &Operation, before: Option<Value>) -> Option<Operation> {
    match *op {
        Operation::Read { .. } => None,
        Operation::Increment { obj, delta } => Some(Operation::Increment {
            obj,
            delta: delta.wrapping_neg(),
        }),
        // Escrow un-reserve: give the units back. Always applicable — the
        // inverse of a *successful* reserve can never underflow.
        Operation::Reserve { obj, amount } => Some(Operation::Increment {
            obj,
            delta: amount as i64,
        }),
        Operation::Insert { obj, .. } => Some(Operation::Delete { obj }),
        Operation::Write { obj, .. } => Some(Operation::Write {
            obj,
            value: before.expect("inverse of Write needs the before image"),
        }),
        Operation::Delete { obj } => Some(Operation::Insert {
            obj,
            value: before.expect("inverse of Delete needs the before image"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::ObjectId;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    /// A tiny reference interpreter for operations over a map state.
    fn apply(state: &mut BTreeMap<ObjectId, Value>, op: &Operation) -> Result<(), ()> {
        match *op {
            Operation::Read { obj } => state.get(&obj).map(|_| ()).ok_or(()),
            Operation::Write { obj, value } => {
                if let Some(slot) = state.get_mut(&obj) {
                    *slot = value;
                    Ok(())
                } else {
                    Err(())
                }
            }
            Operation::Increment { obj, delta } => {
                let v = state.get(&obj).copied().ok_or(())?;
                state.insert(obj, v.incremented(delta));
                Ok(())
            }
            Operation::Insert { obj, value } => match state.entry(obj) {
                std::collections::btree_map::Entry::Occupied(_) => Err(()),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(value);
                    Ok(())
                }
            },
            Operation::Delete { obj } => state.remove(&obj).map(|_| ()).ok_or(()),
            Operation::Reserve { obj, amount } => {
                let v = state.get(&obj).copied().ok_or(())?;
                if v.counter < amount as i64 {
                    return Err(());
                }
                state.insert(obj, v.incremented(-(amount as i64)));
                Ok(())
            }
        }
    }

    #[test]
    fn increment_inverse_needs_no_state() {
        assert!(!needs_before_image(&Operation::Increment {
            obj: obj(1),
            delta: 4
        }));
        let inv = inverse_of(
            &Operation::Increment {
                obj: obj(1),
                delta: 4,
            },
            None,
        )
        .unwrap();
        assert_eq!(
            inv,
            Operation::Increment {
                obj: obj(1),
                delta: -4
            }
        );
    }

    #[test]
    fn write_and_delete_need_before_images() {
        assert!(needs_before_image(&Operation::Write {
            obj: obj(1),
            value: Value::ZERO
        }));
        assert!(needs_before_image(&Operation::Delete { obj: obj(1) }));
        assert!(!needs_before_image(&Operation::Insert {
            obj: obj(1),
            value: Value::ZERO
        }));
        assert!(!needs_before_image(&Operation::Read { obj: obj(1) }));
    }

    #[test]
    fn read_has_no_inverse() {
        assert_eq!(inverse_of(&Operation::Read { obj: obj(1) }, None), None);
    }

    #[test]
    fn reserve_inverse_is_a_restock() {
        let r = Operation::Reserve {
            obj: obj(1),
            amount: 7,
        };
        assert!(!needs_before_image(&r), "escrow undo needs no before image");
        assert_eq!(
            inverse_of(&r, None),
            Some(Operation::Increment {
                obj: obj(1),
                delta: 7
            })
        );
    }

    proptest! {
        /// op ; inverse(op) is the identity on states where op applies —
        /// the algebraic core of §3.3's undo requirement.
        #[test]
        fn op_then_inverse_is_identity(
            kind in 0u8..5,
            key in 1u64..5,
            val in any::<i64>(),
            delta in any::<i64>(),
            initial in proptest::collection::btree_map(1u64..5, any::<i64>(), 0..5),
        ) {
            let mut state: BTreeMap<ObjectId, Value> = initial
                .into_iter()
                .map(|(k, v)| (obj(k), Value::counter(v)))
                .collect();
            let op = match kind {
                0 => Operation::Write { obj: obj(key), value: Value::counter(val) },
                1 => Operation::Increment { obj: obj(key), delta },
                2 => Operation::Insert { obj: obj(key), value: Value::counter(val) },
                3 => Operation::Reserve { obj: obj(key), amount: delta.unsigned_abs() % 64 + 1 },
                _ => Operation::Delete { obj: obj(key) },
            };
            let before = state.get(&obj(key)).copied();
            let snapshot = state.clone();
            if apply(&mut state, &op).is_ok() {
                let inv = inverse_of(&op, before).expect("updates have inverses");
                apply(&mut state, &inv).expect("inverse applies after op");
                prop_assert_eq!(state, snapshot);
            } else {
                // Failed ops must not change state either.
                prop_assert_eq!(state, snapshot);
            }
        }

        /// Undoing a whole program in reverse order restores the state —
        /// the multi-level rollback of §4.1.
        #[test]
        fn reverse_program_undo_restores_state(
            ops in proptest::collection::vec((0u8..5, 1u64..6, -50i64..50), 1..12),
        ) {
            let mut state: BTreeMap<ObjectId, Value> =
                (1..6).map(|k| (obj(k), Value::counter(100))).collect();
            let snapshot = state.clone();
            let mut undo: Vec<Operation> = Vec::new();
            for (kind, key, x) in ops {
                let op = match kind {
                    0 => Operation::Write { obj: obj(key), value: Value::counter(x) },
                    1 => Operation::Increment { obj: obj(key), delta: x },
                    2 => Operation::Insert { obj: obj(key), value: Value::counter(x) },
                    3 => Operation::Reserve { obj: obj(key), amount: x.unsigned_abs() % 20 + 1 },
                    _ => Operation::Delete { obj: obj(key) },
                };
                let before = state.get(&obj(key)).copied();
                if apply(&mut state, &op).is_ok() {
                    if let Some(inv) = inverse_of(&op, before) {
                        undo.push(inv);
                    }
                }
            }
            for inv in undo.iter().rev() {
                apply(&mut state, inv).expect("inverse program applies");
            }
            prop_assert_eq!(state, snapshot);
        }
    }
}
