//! # amc-mlt
//!
//! The multi-level (open nested) transaction model of §4, adapted to the
//! integrated database system:
//!
//! * level **L1** — global transactions over logical objects, with
//!   *semantic* conflicts: two L1 actions conflict iff they do not
//!   generally commute (§4.1). The increment/increment pair of Fig. 8
//!   commutes, so both transactions may hold increment locks on `x`
//!   simultaneously.
//! * level **L0** — local transactions executed by the unmodifiable
//!   engines, each ACID on its own (§4.2): "the existing transaction
//!   managers can be integrated as transaction managers for transactions at
//!   level L0".
//!
//! The crate provides the three mechanisms §4.3 says the commit-before
//! protocol *reuses* (which is why that protocol adds no overhead):
//!
//! * [`inverse`] — inverse L1 actions (`Incr⁻¹ = Decr`, `Ins⁻¹ = Del`, ...),
//!   the undo mechanism of multi-level recovery;
//! * [`locks`] — the L1 lock manager: a thin policy wrapper over
//!   [`amc_lock::BlockingLockManager`] with [`amc_lock::SemanticMode`]s,
//!   including the read/write-only degraded mode for the E7 ablation;
//! * [`undo_log`] — the central undo-log holding inverse actions per global
//!   transaction, replayed (in reverse) on a global abort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inverse;
pub mod locks;
pub mod undo_log;

pub use inverse::{inverse_of, needs_before_image};
pub use locks::{ConflictPolicy, L1LockManager};
pub use undo_log::CentralUndoLog;
